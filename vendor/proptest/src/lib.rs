//! Offline stand-in for `proptest`.
//!
//! Implements the API surface this workspace's property tests use:
//! the `proptest!` / `prop_assert*` / `prop_oneof!` macros, range and
//! tuple strategies, `Just`, `any::<T>()`, regex-like string patterns,
//! `prop_map`, `prop_recursive`, `prop::collection::vec`, and
//! `prop::option::of`. Cases are generated from a deterministic
//! per-(file, test, case) seed; there is no shrinking — a failing case
//! panics with the normal assertion message and is reproducible because
//! generation is deterministic.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// Runner configuration (`cases` is the only knob used).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic test-case RNG.
pub mod test_runner {
    use super::*;

    /// Wrapper around the vendored `SmallRng`.
    pub struct TestRng(pub(crate) SmallRng);

    impl TestRng {
        /// Seeds deterministically from file, test name, and case index.
        pub fn for_case(file: &str, test: &str, case: u64) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in file.bytes().chain(test.bytes()) {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(SmallRng::seed_from_u64(
                h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }
}

use test_runner::TestRng;

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Builds a recursive strategy: `self` is the leaf, and `branch`
    /// wraps an inner strategy into composite values, nesting at most
    /// `depth` levels. `desired_size`/`expected_branch_size` are
    /// accepted for API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let grown = branch(cur).boxed();
            cur = strategy::Union::new(vec![leaf.clone(), grown]).boxed();
        }
        cur
    }
}

/// A clonable type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty : $via:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.0.gen::<$via>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8: u64, u16: u64, u32: u64, u64: u64, usize: u64,
                    i8: u64, i16: u64, i32: u64, i64: u64, isize: u64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.gen::<bool>()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite floats spanning a wide magnitude range.
        let mag = rng.0.gen_range(-30.0f32..30.0);
        let sign = if rng.0.gen::<bool>() { 1.0 } else { -1.0 };
        sign * mag.exp2() * rng.0.gen::<f32>()
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

// --- ranges -----------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty : $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = rng.0.gen::<u64>() as u128;
                (self.start as i128 + (r.wrapping_mul(span) >> 64) as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.0.gen_range(self.clone())
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.0.gen_range(self.clone())
    }
}

// --- tuples -----------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// --- strategy building blocks ----------------------------------------

/// Additional strategy types used by the macros.
pub mod strategy {
    use super::*;

    /// Chooses uniformly among alternatives (the `prop_oneof!` backend).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over the given alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.0.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// Acceptable size specifications for [`vec()`].
    pub trait IntoSizeRange {
        /// Lower and inclusive upper bound.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    /// Strategy for `Vec`s of `elem` values with a length in `size`.
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    /// `prop::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { elem, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.gen_range(self.min..=self.max);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::*;

    /// Strategy yielding `None` or `Some(inner)`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `prop::option::of(inner)` — `Some` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.0.gen_range(0..4usize) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// --- regex-like string patterns ---------------------------------------

/// `&str` patterns act as strategies generating matching strings, as in
/// proptest. Supported syntax: literal characters, character classes
/// `[a-z0-9_;]` (ranges, `\n`/`\t`/`\\` escapes, literal `-` first or
/// last), `\PC` (any non-control character), and counted repetition
/// `{m,n}` / `{n}` on the preceding atom.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let reps =
            pattern::parse(self).unwrap_or_else(|e| panic!("bad string pattern {self:?}: {e}"));
        pattern::generate(&reps, rng)
    }
}

mod pattern {
    use super::TestRng;
    use rand::Rng;

    #[derive(Debug, Clone)]
    pub enum Atom {
        /// Inclusive character ranges (single chars are 1-char ranges).
        Class(Vec<(char, char)>),
        /// `\PC`: any non-control character.
        AnyNonControl,
    }

    #[derive(Debug, Clone)]
    pub struct Rep {
        pub atom: Atom,
        pub min: usize,
        pub max: usize,
    }

    pub fn parse(pat: &str) -> Result<Vec<Rep>, String> {
        let chars: Vec<char> = pat.chars().collect();
        let mut i = 0;
        let mut out: Vec<Rep> = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let c = match chars[i] {
                            '\\' => {
                                i += 1;
                                unescape(*chars.get(i).ok_or("dangling escape")?)?
                            }
                            c => c,
                        };
                        // Range `c-d` (a trailing `-` is literal).
                        if chars.get(i + 1) == Some(&'-')
                            && i + 2 < chars.len()
                            && chars[i + 2] != ']'
                        {
                            let d = match chars[i + 2] {
                                '\\' => {
                                    i += 1;
                                    unescape(*chars.get(i + 2).ok_or("dangling escape")?)?
                                }
                                d => d,
                            };
                            if d < c {
                                return Err(format!("inverted range {c}-{d}"));
                            }
                            ranges.push((c, d));
                            i += 3;
                        } else {
                            ranges.push((c, c));
                            i += 1;
                        }
                    }
                    if i >= chars.len() {
                        return Err("unterminated character class".into());
                    }
                    i += 1; // past ']'
                    Atom::Class(ranges)
                }
                '\\' => {
                    i += 1;
                    match chars.get(i) {
                        Some('P') if chars.get(i + 1) == Some(&'C') => {
                            i += 2;
                            Atom::AnyNonControl
                        }
                        Some(&e) => {
                            i += 1;
                            Atom::Class(vec![(unescape(e)?, unescape(e)?)])
                        }
                        None => return Err("dangling escape".into()),
                    }
                }
                c => {
                    i += 1;
                    Atom::Class(vec![(c, c)])
                }
            };
            // Optional counted repetition.
            let (min, max) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .ok_or("unterminated {..}")?
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().map_err(|_| format!("bad bound `{lo}`"))?,
                        hi.parse().map_err(|_| format!("bad bound `{hi}`"))?,
                    ),
                    None => {
                        let n = body.parse().map_err(|_| format!("bad count `{body}`"))?;
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            out.push(Rep { atom, min, max });
        }
        Ok(out)
    }

    fn unescape(c: char) -> Result<char, String> {
        Ok(match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            '\\' | '-' | ']' | '[' | '{' | '}' | '.' | '+' | '*' | '?' | '(' | ')' | '^' | '$'
            | '|' | '/' => c,
            other => return Err(format!("unsupported escape \\{other}")),
        })
    }

    /// A mixed pool for `\PC`: printable ASCII most of the time plus a
    /// sprinkle of multi-byte characters (never control characters).
    const UNICODE_POOL: &[char] = &[
        'é', 'ß', 'λ', '→', '€', '中', '文', 'Ω', 'ж', '🦀', '𝛼', '\u{00A0}',
    ];

    pub fn generate(reps: &[Rep], rng: &mut TestRng) -> String {
        let mut out = String::new();
        for rep in reps {
            let n = rng.0.gen_range(rep.min..=rep.max);
            for _ in 0..n {
                match &rep.atom {
                    Atom::AnyNonControl => {
                        if rng.0.gen_range(0..8usize) == 0 {
                            let idx = rng.0.gen_range(0..UNICODE_POOL.len());
                            out.push(UNICODE_POOL[idx]);
                        } else {
                            out.push(rng.0.gen_range(0x20u32..0x7F) as u8 as char);
                        }
                    }
                    Atom::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|&(a, b)| (b as u64) - (a as u64) + 1)
                            .sum();
                        let mut pick = rng.0.gen_range(0..total);
                        for &(a, b) in ranges {
                            let span = (b as u64) - (a as u64) + 1;
                            if pick < span {
                                out.push(
                                    char::from_u32(a as u32 + pick as u32)
                                        .expect("class range stays in char space"),
                                );
                                break;
                            }
                            pick -= span;
                        }
                    }
                }
            }
        }
        out
    }
}

/// The `prop::` namespace, mirroring proptest's prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

// --- macros -----------------------------------------------------------

/// Runs each contained `#[test] fn name(arg in strategy, ...) { .. }`
/// over `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::test_runner::TestRng::for_case(
                        file!(),
                        stringify!($name),
                        case as u64,
                    );
                    let ( $($arg,)+ ) = (
                        $( $crate::Strategy::generate(&($strat), &mut __proptest_rng), )+
                    );
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Chooses uniformly among the listed strategies (all must share a
/// value type). Weighted arms are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($item:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($item)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("f", "t", 0);
        for case in 0..200u64 {
            let mut rng2 = crate::test_runner::TestRng::for_case("f", "t", case);
            let v = (1u32..=8, 0usize..5, -2.0f32..2.0).generate(&mut rng2);
            assert!((1..=8).contains(&v.0));
            assert!(v.1 < 5);
            assert!((-2.0..2.0).contains(&v.2));
        }
        let s = prop::collection::vec(0u32..10, 2..6).generate(&mut rng);
        assert!((2..6).contains(&s.len()));
        assert!(s.iter().all(|&x| x < 10));
    }

    #[test]
    fn patterns_generate_matching_strings() {
        for case in 0..200u64 {
            let mut rng = crate::test_runner::TestRng::for_case("f", "p", case);
            let s = "[a-z][a-z0-9_]{0,6}".generate(&mut rng);
            assert!((1..=7).contains(&s.chars().count()), "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));

            let mut rng = crate::test_runner::TestRng::for_case("f", "q", case);
            let t = "[ -~\n\t]{0,20}".generate(&mut rng);
            assert!(t
                .chars()
                .all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'));

            let mut rng = crate::test_runner::TestRng::for_case("f", "r", case);
            let u = "\\PC{0,30}".generate(&mut rng);
            assert!(u.chars().all(|c| !c.is_control()), "{u:?}");
        }
    }

    #[test]
    fn oneof_and_recursive_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u32),
            Node(Vec<Tree>),
        }
        let leaf = (0u32..10).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 16, 4, |inner| {
            prop::collection::vec(inner, 1..4).prop_map(Tree::Node)
        });
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut saw_node = false;
        for case in 0..200u64 {
            let mut rng = crate::test_runner::TestRng::for_case("f", "rec", case);
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 3);
            saw_node |= matches!(t, Tree::Node(_));
        }
        assert!(saw_node, "recursion should fire sometimes");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_binds_arguments(x in 0u32..50, mut v in prop::collection::vec(0u8..4, 0..5)) {
            v.push(0);
            prop_assert!(x < 50);
            prop_assert_eq!(*v.last().unwrap(), 0u8, "pushed zero {v:?}");
        }
    }
}
