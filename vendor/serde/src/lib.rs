//! Offline stand-in for `serde`.
//!
//! Provides `Serialize`/`Deserialize` traits over a self-describing
//! [`Value`] tree plus derive macros (re-exported from the companion
//! `serde_derive` stand-in). The data model intentionally mirrors JSON:
//! maps, sequences, strings, numbers, booleans, and null — which is all
//! this workspace needs (the only consumer is the vendored
//! `serde_json`).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / `None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (used for negative values).
    Int(i64),
    /// Unsigned integer (used for non-negative values).
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Key-value map in insertion order. Keys are usually `Str`, but
    /// arbitrary keys are allowed (serialized as pair sequences).
    Map(Vec<(Value, Value)>),
}

impl Value {
    /// Looks up a field in a `Map` by string key.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| matches!(k, Value::Str(s) if s == name))
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!(
                "expected map while reading field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements of a `Seq` of exactly `n` items.
    pub fn seq_items(&self, n: usize) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) if items.len() == n => Ok(items),
            Value::Seq(items) => Err(Error::new(format!(
                "expected sequence of {n} items, found {}",
                items.len()
            ))),
            other => Err(Error::new(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }

    /// Short description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::UInt(_) => "uint",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --- primitive impls --------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => return Err(Error::new(format!(
                        "expected unsigned integer, found {}", other.kind()
                    ))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::new(format!("{u} out of range for i64")))?,
                    other => return Err(Error::new(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(Error::new(format!(
                        "expected number, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::new("expected single-char string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::new(format!("expected string, found {}", v.kind())))
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // A stand-in for serde's borrowed-str deserialization: static
        // strings deserialized from owned data must be leaked. Only used
        // by artifact structs with `&'static str` method names.
        v.as_str()
            .map(|s| &*Box::leak(s.to_string().into_boxed_str()))
            .ok_or_else(|| Error::new(format!("expected string, found {}", v.kind())))
    }
}

// --- containers -------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            Value::Seq(items) => Err(Error::new(format!(
                "expected sequence of length {N}, found length {}",
                items.len()
            ))),
            other => Err(Error::new(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // String-keyed maps become objects; other key types fall back to
        // a sequence of `[key, value]` pairs, which stays valid JSON.
        let entries: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        if entries.iter().all(|(k, _)| matches!(k, Value::Str(_))) {
            Value::Map(entries)
        } else {
            Value::Seq(
                entries
                    .into_iter()
                    .map(|(k, v)| Value::Seq(vec![k, v]))
                    .collect(),
            )
        }
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((K::from_value(k)?, V::from_value(val)?)))
                .collect(),
            Value::Seq(items) => items
                .iter()
                .map(|pair| {
                    let kv = pair.seq_items(2)?;
                    Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                })
                .collect(),
            other => Err(Error::new(format!("expected map, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T, S> Deserialize for std::collections::HashSet<T, S>
where
    T: Deserialize + Eq + Hash,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let entries: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        if entries.iter().all(|(k, _)| matches!(k, Value::Str(_))) {
            Value::Map(entries)
        } else {
            Value::Seq(
                entries
                    .into_iter()
                    .map(|(k, v)| Value::Seq(vec![k, v]))
                    .collect(),
            )
        }
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((K::from_value(k)?, V::from_value(val)?)))
                .collect(),
            Value::Seq(items) => items
                .iter()
                .map(|pair| {
                    let kv = pair.seq_items(2)?;
                    Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                })
                .collect(),
            other => Err(Error::new(format!("expected map, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const N: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = v.seq_items(N)?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u8>::from_value(&None::<u8>.to_value()).unwrap(),
            None
        );
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(
            <(u32, bool)>::from_value(&(9u32, true).to_value()).unwrap(),
            (9, true)
        );
    }

    #[test]
    fn non_string_keyed_maps_round_trip() {
        let mut m: HashMap<Vec<u32>, u32> = HashMap::new();
        m.insert(vec![1, 2], 10);
        m.insert(vec![3], 20);
        let v = m.to_value();
        assert!(matches!(v, Value::Seq(_)));
        let back: HashMap<Vec<u32>, u32> = HashMap::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn string_keyed_maps_become_objects() {
        let mut m: HashMap<String, u32> = HashMap::new();
        m.insert("a".into(), 1);
        let v = m.to_value();
        assert!(matches!(v, Value::Map(_)));
        assert_eq!(u32::from_value(v.field("a").unwrap()).unwrap(), 1);
    }
}
