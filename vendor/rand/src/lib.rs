//! Offline stand-in for the `rand` crate.
//!
//! Implements the small API surface this workspace uses: a seedable
//! small PRNG (`rngs::SmallRng`), the `Rng` extension methods `gen`,
//! `gen_range`, and `gen_bool`, `SeedableRng::seed_from_u64`, and
//! `seq::SliceRandom::shuffle`. The generator is xoshiro256++ seeded via
//! splitmix64 — high-quality, deterministic, and dependency-free.

use std::ops::{Range, RangeInclusive};

/// A random number generator core: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random mantissa bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift rejection-free mapping; bias is
                // negligible for the span sizes used here.
                let r = rng.next_u64() as u128;
                (self.start as u128 + (r * span >> 64)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let r = rng.next_u64() as u128;
                (start as u128 + (r * span >> 64)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded through splitmix64.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Subset of rand's `SliceRandom`: in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1u32..=64);
            assert!((1..=64).contains(&y));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6500..7500).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
