//! Offline stand-in for `serde_json` over the vendored `serde` stand-in's
//! [`serde::Value`] data model.
//!
//! Provides `to_string`, `to_string_pretty`, `to_vec`, `from_str`, and
//! `from_slice`. Maps with non-string keys are written as arrays of
//! `[key, value]` pairs (still valid JSON) and accepted back in either
//! form.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Serializes a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?;
    from_str(s)
}

// --- writer -----------------------------------------------------------

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            // `{}` on f64 prints the shortest representation that parses
            // back to the same bits, so round-trips are exact.
            let s = f.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Seq(items) => {
            write_bracketed(out, '[', ']', items.len(), indent, depth, |out, i, d| {
                write_value(&items[i], out, indent, d)
            })?;
        }
        Value::Map(entries) => {
            if entries.iter().all(|(k, _)| matches!(k, Value::Str(_))) {
                write_bracketed(out, '{', '}', entries.len(), indent, depth, |out, i, d| {
                    let (k, val) = &entries[i];
                    write_value(k, out, indent, d)?;
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(val, out, indent, d)
                })?;
            } else {
                // Non-string keys: array-of-pairs encoding.
                write_bracketed(out, '[', ']', entries.len(), indent, depth, |out, i, d| {
                    let (k, val) = &entries[i];
                    out.push('[');
                    write_value(k, out, indent, d)?;
                    out.push(',');
                    write_value(val, out, indent, d)?;
                    out.push(']');
                    Ok(())
                })?;
            }
        }
    }
    Ok(())
}

fn write_bracketed(
    out: &mut String,
    open: char,
    close: char,
    n: usize,
    indent: Option<usize>,
    depth: usize,
    mut item: impl FnMut(&mut String, usize, usize) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(open);
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i, depth + 1)?;
    }
    if n > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * depth));
        }
    }
    out.push(close);
    Ok(())
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser -----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((Value::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|e| Error::new(e.to_string()))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|e| Error::new(e.to_string()))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(from_str::<u32>(&to_string(&7u32).unwrap()).unwrap(), 7);
        assert_eq!(from_str::<i64>(&to_string(&-3i64).unwrap()).unwrap(), -3);
        assert!(from_str::<bool>("true").unwrap());
        let f: f32 = 0.1234567;
        assert_eq!(from_str::<f32>(&to_string(&f).unwrap()).unwrap(), f);
    }

    #[test]
    fn float_precision_survives() {
        for &f in &[1.0e-20f32, 3.4e38, std::f32::consts::PI, -0.0, 123456.78] {
            let s = to_string(&f).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} via {s}");
        }
    }

    #[test]
    fn strings_escape_round_trip() {
        for s in [
            "",
            "plain",
            "with \"quotes\"",
            "tab\tnl\nback\\slash",
            "unicodé λ 中",
        ] {
            let json = to_string(&s.to_string()).unwrap();
            assert_eq!(from_str::<String>(&json).unwrap(), s);
        }
        assert_eq!(from_str::<String>("\"\\u00e9\\u20ac\"").unwrap(), "é€");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![vec![1u32, 2], vec![], vec![3]];
        assert_eq!(
            from_str::<Vec<Vec<u32>>>(&to_string(&v).unwrap()).unwrap(),
            v
        );
        let mut m: HashMap<String, Vec<f32>> = HashMap::new();
        m.insert("weights".into(), vec![0.5, -1.25]);
        assert_eq!(
            from_str::<HashMap<String, Vec<f32>>>(&to_string(&m).unwrap()).unwrap(),
            m
        );
        let mut nk: HashMap<Vec<u32>, u32> = HashMap::new();
        nk.insert(vec![1, 2], 3);
        assert_eq!(
            from_str::<HashMap<Vec<u32>, u32>>(&to_string(&nk).unwrap()).unwrap(),
            nk
        );
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let v = vec![(1u32, 2u32), (3, 4)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<(u32, u32)>>(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u32>("7 x").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
    }
}
