//! Offline stand-in for `serde_derive`.
//!
//! Hand-written derive macros (no `syn`/`quote`) generating impls of
//! the vendored `serde` stand-in's `Serialize`/`Deserialize` traits.
//! Supports non-generic named-field structs and enums with unit, tuple,
//! and struct variants, plus the `#[serde(skip)]` field attribute.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct FieldDef {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<FieldDef>),
}

#[derive(Debug)]
struct VariantDef {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum ItemDef {
    Struct {
        name: String,
        fields: Vec<FieldDef>,
    },
    Enum {
        name: String,
        variants: Vec<VariantDef>,
    },
}

/// Derives the stand-in `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the stand-in `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error parses")
}

/// Skips leading attributes, returning whether any was `#[serde(skip)]`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while *i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[*i] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[*i + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
            (inner.first(), inner.get(1))
        {
            if id.to_string() == "serde"
                && args
                    .stream()
                    .into_iter()
                    .any(|t| matches!(&t, TokenTree::Ident(w) if w.to_string() == "skip"))
            {
                skip = true;
            }
        }
        *i += 2;
    }
    skip
}

/// Skips `pub` / `pub(...)` visibility.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if matches!(&tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

fn parse_item(input: TokenStream) -> Result<ItemDef, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "derive stand-in does not support generics (type {name})"
        ));
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            return Err(format!(
                "derive stand-in does not support tuple structs ({name})"
            ))
        }
        other => return Err(format!("expected {{...}} body for {name}, found {other:?}")),
    };
    match keyword.as_str() {
        "struct" => Ok(ItemDef::Struct {
            name,
            fields: parse_named_fields(body)?,
        }),
        "enum" => Ok(ItemDef::Enum {
            name,
            variants: parse_variants(body)?,
        }),
        other => Err(format!("expected struct/enum, found `{other}`")),
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<FieldDef>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skip = skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match &tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(FieldDef { name, skip });
    }
    Ok(fields)
}

/// Counts tuple-variant fields: top-level commas + 1, ignoring a
/// trailing comma.
fn tuple_arity(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle_depth = 0i32;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p)
                if p.as_char() == ',' && angle_depth == 0 && idx + 1 < tokens.len() =>
            {
                arity += 1;
            }
            _ => {}
        }
    }
    arity
}

fn parse_variants(body: TokenStream) -> Result<Vec<VariantDef>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(tuple_arity(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant, then the separating comma.
        while i < tokens.len() && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        i += 1;
        variants.push(VariantDef { name, kind });
    }
    Ok(variants)
}

// --- code generation --------------------------------------------------

fn str_key(name: &str) -> String {
    format!("::serde::Value::Str(::std::string::String::from({name:?}))")
}

fn gen_serialize(item: &ItemDef) -> String {
    match item {
        ItemDef::Struct { name, fields } => {
            let mut entries = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                entries.push_str(&format!(
                    "({}, ::serde::Serialize::to_value(&self.{})),",
                    str_key(&f.name),
                    f.name
                ));
            }
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        ItemDef::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                let key = str_key(vn);
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::Str(\
                             ::std::string::String::from({vn:?})),"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        arms.push_str(&format!(
                            "{name}::{vn}(f0) => ::serde::Value::Map(::std::vec![({key}, \
                             ::serde::Serialize::to_value(f0))]),"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![({key}, \
                             ::serde::Value::Seq(::std::vec![{}]))]),",
                            binds.join(","),
                            items.join(",")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: _", f.name)
                                } else {
                                    f.name.clone()
                                }
                            })
                            .collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "({}, ::serde::Serialize::to_value({}))",
                                    str_key(&f.name),
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(::std::vec![({key}, \
                             ::serde::Value::Map(::std::vec![{}]))]),",
                            binds.join(","),
                            entries.join(",")
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &ItemDef) -> String {
    match item {
        ItemDef::Struct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!("{}: ::core::default::Default::default(),", f.name));
                } else {
                    inits.push_str(&format!(
                        "{}: ::serde::Deserialize::from_value(v.field({:?})?)?,",
                        f.name, f.name
                    ));
                }
            }
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::core::result::Result<Self, ::serde::Error> {{\n\
                         ::core::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        ItemDef::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "{vn:?} => ::core::result::Result::Ok({name}::{vn}),"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        payload_arms.push_str(&format!(
                            "{vn:?} => ::core::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(payload)?)),"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "{vn:?} => {{ let items = payload.seq_items({n})?; \
                             ::core::result::Result::Ok({name}::{vn}({})) }},",
                            items.join(",")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: ::core::default::Default::default()", f.name)
                                } else {
                                    format!(
                                        "{}: ::serde::Deserialize::from_value(\
                                         payload.field({:?})?)?",
                                        f.name, f.name
                                    )
                                }
                            })
                            .collect();
                        payload_arms.push_str(&format!(
                            "{vn:?} => ::core::result::Result::Ok({name}::{vn} {{ {} }}),",
                            inits.join(",")
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::core::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::core::result::Result::Err(::serde::Error::new(\
                                     format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                                 let (k, payload) = &entries[0];\n\
                                 let _ = payload;\n\
                                 match k.as_str().unwrap_or(\"\") {{\n\
                                     {payload_arms}\n\
                                     other => ::core::result::Result::Err(::serde::Error::new(\
                                         format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                                 }}\n\
                             }},\n\
                             other => ::core::result::Result::Err(::serde::Error::new(\
                                 format!(\"cannot deserialize {name} from {{}}\", \
                                 other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
