//! Offline stand-in for `criterion`.
//!
//! Implements the API surface this workspace's benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, `black_box` — with simple wall-clock
//! timing: each benchmark runs a short warm-up followed by `sample_size`
//! timed iterations, reporting mean time per iteration.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean seconds per iteration of the most recent `iter` call.
    last_mean: f64,
}

impl Bencher {
    /// Times `routine`, storing the mean time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up round (also primes lazy statics inside the routine).
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.last_mean = start.elapsed().as_secs_f64() / self.samples as f64;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput (reported alongside time).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            last_mean: 0.0,
        };
        f(&mut b);
        self.report(&id.to_string(), b.last_mean);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            last_mean: 0.0,
        };
        f(&mut b, input);
        self.report(&id.to_string(), b.last_mean);
        self
    }

    fn report(&mut self, id: &str, mean_secs: f64) {
        let full = format!("{}/{}", self.name, id);
        let extra = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.0} elem/s)", n as f64 / mean_secs.max(1e-12))
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  ({:.1} MiB/s)",
                    n as f64 / mean_secs.max(1e-12) / (1 << 20) as f64
                )
            }
            None => String::new(),
        };
        println!("{full:<50} {}{extra}", format_duration(mean_secs));
        self.criterion.results.push(BenchResult {
            id: full,
            mean_secs,
        });
    }

    /// Finishes the group (no-op; results are reported eagerly).
    pub fn finish(&mut self) {}
}

fn format_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:>10.3} s ")
    } else if secs >= 1e-3 {
        format!("{:>10.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:>10.3} µs", secs * 1e6)
    } else {
        format!("{:>10.3} ns", secs * 1e9)
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/benchmark` identifier.
    pub id: String,
    /// Mean seconds per iteration.
    pub mean_secs: f64,
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    /// All measurements recorded so far (inspectable by custom mains).
    pub results: Vec<BenchResult>,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group `{name}`");
        BenchmarkGroup {
            name,
            criterion: self,
            sample_size: 20,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.benchmark_group(id.clone()).bench_function("", f);
        self
    }

    /// Elapsed-time helper used by custom measurement loops.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }
}

/// Declares a group-runner function invoking each benchmark fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo passes harness flags (e.g. `--bench`); ignore them.
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(5);
        g.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        assert_eq!(c.results.len(), 2);
        assert!(c.results.iter().all(|r| r.mean_secs >= 0.0));
    }
}
