//! Property tests for the LM substrate: softmax/log-softmax identities,
//! n-gram probability laws, sampler distribution sanity, and MLP
//! serialization fidelity.

use proptest::prelude::*;
use verispec_lm::matrix::{entropy, log_softmax, softmax};
use verispec_lm::{MlpLm, MlpLmConfig, NgramLm, Sampler, Sampling};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn softmax_is_a_distribution(logits in prop::collection::vec(-30.0f32..30.0, 1..64)) {
        let p = softmax(&logits);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn log_softmax_matches_softmax(logits in prop::collection::vec(-20.0f32..20.0, 2..32)) {
        let p = softmax(&logits);
        let lp = log_softmax(&logits);
        for (a, b) in p.iter().zip(&lp) {
            if *a > 1e-6 {
                prop_assert!((a.ln() - b).abs() < 1e-3, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn softmax_invariant_under_shift(
        logits in prop::collection::vec(-10.0f32..10.0, 2..16),
        shift in -50.0f32..50.0,
    ) {
        let p1 = softmax(&logits);
        let shifted: Vec<f32> = logits.iter().map(|l| l + shift).collect();
        let p2 = softmax(&shifted);
        for (a, b) in p1.iter().zip(&p2) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn entropy_bounds(logits in prop::collection::vec(-10.0f32..10.0, 2..64)) {
        let p = softmax(&logits);
        let h = entropy(&p);
        prop_assert!(h >= -1e-6);
        prop_assert!(h <= (p.len() as f32).ln() + 1e-4);
    }

    #[test]
    fn ngram_distributions_sum_to_one(
        seq in prop::collection::vec(0u32..12, 2..120),
        order in 1usize..4,
        prefix in prop::collection::vec(0u32..12, 0..5),
    ) {
        let mut lm = NgramLm::new(order, 12);
        lm.train_sequence(&seq);
        let d = lm.distribution(&prefix);
        let sum: f32 = d.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-3, "sum {sum}");
        prop_assert!(d.iter().all(|&p| p > 0.0), "smoothing keeps support full");
    }

    #[test]
    fn sampler_respects_top1(
        seed in any::<u64>(),
        mut logits in prop::collection::vec(-5.0f32..5.0, 2..24),
        winner in 0usize..24,
    ) {
        // temperature -> 0 behaves like argmax, given a clear winner
        // (exact ties are legitimately sampler-dependent).
        let w = winner % logits.len();
        let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        logits[w] = max + 3.0;
        let mut s = Sampler::new(seed);
        let t = s.sample(&logits, Sampling::Temperature { temperature: 0.01, top_k: 0 });
        prop_assert_eq!(t as usize, w);
    }

    #[test]
    fn mlp_serde_round_trip(seed in any::<u64>()) {
        let cfg = MlpLmConfig { vocab: 10, d_emb: 4, d_hidden: 6, context: 3, n_heads: 2, seed };
        let model = MlpLm::new(cfg);
        let json = serde_json::to_string(&model).expect("serialize");
        let back: MlpLm = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(model.logits(&[1, 2, 3]), back.logits(&[1, 2, 3]));
        prop_assert_eq!(model.multi_logits(&[4]), back.multi_logits(&[4]));
    }
}

/// Empirical sampling frequencies track softmax probabilities.
#[test]
fn sampler_frequencies_match_distribution() {
    let logits = vec![0.0f32, 1.0, 2.0];
    let probs = softmax(&logits);
    let mut s = Sampler::new(42);
    let n = 30_000;
    let mut counts = [0usize; 3];
    for _ in 0..n {
        counts[s.sample(&logits, Sampling::temperature(1.0)) as usize] += 1;
    }
    for (c, p) in counts.iter().zip(&probs) {
        let freq = *c as f32 / n as f32;
        assert!((freq - p).abs() < 0.02, "freq {freq} vs p {p}");
    }
}
