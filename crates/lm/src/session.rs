//! Stateful decode sessions: the KV-cache analogue for VeriSpec's
//! laptop-scale models.
//!
//! The speculative-decoding engines in `verispec-core` drive a
//! [`DecodeSession`] instead of calling the stateless
//! `LanguageModel::logits(&prefix)` per position. A session owns the
//! growing token context and supports the full speculative lifecycle:
//!
//! * [`DecodeSession::append`] — extend the context with committed (or
//!   tentatively speculated) tokens;
//! * [`DecodeSession::truncate`] — roll back after rejected speculation
//!   (the KV-cache trim);
//! * [`DecodeSession::logits`] / [`DecodeSession::multi_logits`] —
//!   next-token logits served from cached state where the model allows;
//! * [`DecodeSession::verify_batch`] — score *every* candidate-tree path
//!   in one call with shared-prefix reuse, the draft-then-verify
//!   formulation where K speculated positions are verified together
//!   instead of one forward per candidate path.
//!
//! Three implementations live here:
//!
//! * [`MlpSession`] — caches the trunk activation of the current window
//!   and answers `verify_batch` with *batched* trunk/head matmuls
//!   ([`crate::matrix::Matrix::matvec_batch`]): each weight row is
//!   streamed once across all candidate windows, which is where the
//!   real-hardware "one forward verifies the whole tree" speedup comes
//!   from. All outputs are bit-identical to the stateless path.
//! * [`NgramSession`] — keeps the context and caches the count-lookup
//!   distribution of the current position.
//! * [`StatelessSession`] — the migration shim: a fresh-compute session
//!   over any [`LanguageModel`], used as the default
//!   `LanguageModel::session()` so external model implementations keep
//!   working unchanged (and as the baseline in the `session_reuse`
//!   bench).

use crate::mlp::{MlpLm, TokenId};
use crate::ngram::NgramLm;
use crate::LanguageModel;

/// A fusable verification plan extracted from a model-aware session
/// (see [`DecodeSession::verify_plan`]): the deduplicated candidate-tree
/// nodes' window embeddings plus the mapping from requested result rows
/// back to nodes. Executing the plan against the owning model
/// ([`verify_many`]) reproduces [`DecodeSession::verify_batch`]
/// bit-identically — which is what lets a serving engine concatenate
/// many sessions' plans into **one** fused trunk/head pass.
pub struct VerifyPlan {
    /// Embedding concat per unique trie node (root first, parent-first
    /// order).
    xs: Vec<Vec<f32>>,
    /// `result[i][j]` reads the logits of node `node_of[i][j]`.
    node_of: Vec<Vec<usize>>,
}

impl VerifyPlan {
    /// Number of unique nodes (= forwards) this plan needs.
    pub fn n_nodes(&self) -> usize {
        self.xs.len()
    }

    /// Number of scored result rows the plan will deliver (`Σ` rows per
    /// path) — the verify-cost a speculation policy budgets per step,
    /// before deduplication; `n_nodes() <= n_rows()` always.
    pub fn n_rows(&self) -> usize {
        self.node_of.iter().map(Vec::len).sum()
    }

    /// Assembles this plan's `verify_batch`-shaped result from the fused
    /// logits buffer, whose rows `offset..offset + n_nodes` belong to
    /// this plan.
    fn scatter(&self, logits: &[Vec<f32>], offset: usize) -> Vec<Vec<Vec<f32>>> {
        self.node_of
            .iter()
            .map(|ids| ids.iter().map(|&id| logits[offset + id].clone()).collect())
            .collect()
    }
}

/// Executes many sessions' [`VerifyPlan`]s against one shared model in a
/// single fused pass: every node of every plan goes through **one**
/// batched trunk projection and **one** batched base-head projection
/// ([`crate::matrix::Matrix::matvec_batch`], which also shards across
/// threads above its work threshold). `result[p]` is bit-identical to
/// what the `p`-th session's own `verify_batch` call would have
/// returned — the batched kernel guarantees per-input bit-identity
/// regardless of batch composition.
///
/// This is the continuous-batching primitive: concurrent generations
/// share trunk/head matmuls instead of issuing one small batch each.
pub fn verify_many(model: &MlpLm, plans: &[VerifyPlan]) -> Vec<Vec<Vec<Vec<f32>>>> {
    let x_refs: Vec<&[f32]> = plans
        .iter()
        .flat_map(|p| p.xs.iter().map(Vec::as_slice))
        .collect();
    let logits = if x_refs.is_empty() {
        Vec::new()
    } else {
        let hs = model.trunk_hidden_batch(&x_refs);
        let h_refs: Vec<&[f32]> = hs.iter().map(Vec::as_slice).collect();
        model.head_logits_from_hidden_batch(&h_refs, 0)
    };
    let mut out = Vec::with_capacity(plans.len());
    let mut offset = 0usize;
    for plan in plans {
        out.push(plan.scatter(&logits, offset));
        offset += plan.n_nodes();
    }
    out
}

/// Fused multi-head logits for many positions (one embedding concat
/// each, typically from [`DecodeSession::embed_plan`] across many
/// sessions): one batched trunk pass plus one batched projection per
/// head. `result[k][h]` is bit-identical to what session `k`'s
/// `multi_logits()[h]` would return at that position.
pub fn multi_logits_many(model: &MlpLm, xs: &[Vec<f32>]) -> Vec<Vec<Vec<f32>>> {
    if xs.is_empty() {
        return Vec::new();
    }
    let x_refs: Vec<&[f32]> = xs.iter().map(Vec::as_slice).collect();
    let hs = model.trunk_hidden_batch(&x_refs);
    let h_refs: Vec<&[f32]> = hs.iter().map(Vec::as_slice).collect();
    let mut per_head: Vec<Vec<Vec<f32>>> = (0..=model.n_heads())
        .map(|i| model.head_logits_from_hidden_batch(&h_refs, i))
        .collect();
    (0..xs.len())
        .map(|k| {
            per_head
                .iter_mut()
                .map(|h| std::mem::take(&mut h[k]))
                .collect()
        })
        .collect()
}

/// Guards the mutually-recursive `LanguageModel` defaults
/// (`logits`/`multi_logits` ⇄ `session`): a type overriding neither
/// would otherwise recurse until the stack overflows. The threshold is
/// generous so legitimate nesting (a model whose `logits` internally
/// queries another model's shim) never trips it.
pub(crate) fn shim_recursion_guard<T>(f: impl FnOnce() -> T) -> T {
    use std::cell::Cell;
    thread_local! {
        static DEPTH: Cell<u32> = const { Cell::new(0) };
    }
    DEPTH.with(|depth| {
        assert!(
            depth.get() < 64,
            "LanguageModel default-impl cycle: implement at least one of \
             `session()` or `logits()` (see the LanguageModel trait docs)"
        );
        depth.set(depth.get() + 1);
        struct Restore<'a>(&'a Cell<u32>);
        impl Drop for Restore<'_> {
            fn drop(&mut self) {
                self.0.set(self.0.get() - 1);
            }
        }
        let _restore = Restore(depth);
        f()
    })
}

/// A stateful, rollback-capable decoding context over one model.
///
/// Implementations must keep [`DecodeSession::logits`] equal to the
/// stateless `LanguageModel::logits(tokens())` at every point — sessions
/// are a performance mechanism, never a semantic one. Engines rely on
/// that equivalence for lossless speculation.
pub trait DecodeSession {
    /// Number of tokens currently in the context.
    fn len(&self) -> usize;

    /// Whether the context is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current context tokens.
    fn tokens(&self) -> &[TokenId];

    /// Appends tokens to the context.
    fn append(&mut self, tokens: &[TokenId]);

    /// Rolls the context back to `len` tokens (no-op if already
    /// shorter). This is the KV-cache trim after rejected speculation.
    fn truncate(&mut self, len: usize);

    /// Base-head logits for the next token after the current context.
    fn logits(&mut self) -> Vec<f32>;

    /// Logits for the base head and every extra (Medusa) head.
    fn multi_logits(&mut self) -> Vec<Vec<f32>>;

    /// Scores every candidate path in one call.
    ///
    /// `result[i][j]` is the base-head logits after appending
    /// `paths[i][..j]` to the current context. With `include_bonus`
    /// set, `j` runs over `0..=paths[i].len()` — the K speculated
    /// positions *plus* the bonus position after a fully accepted path
    /// (the draft-verify formulation needs the extra row to sample its
    /// bonus token); without it, `j` runs over `0..paths[i].len()`,
    /// which is all MEDUSA acceptance reads — pure-leaf forwards are
    /// skipped entirely. Shared path prefixes are evaluated once. The
    /// session context is unchanged when the call returns.
    ///
    /// The default implementation walks a prefix trie with
    /// `append`/`truncate` rollback and one `logits` call per unique
    /// node; model-aware sessions override it with batched forwards.
    fn verify_batch(&mut self, paths: &[&[TokenId]], include_bonus: bool) -> Vec<Vec<Vec<f32>>> {
        let base_len = self.len();
        struct Node {
            token: TokenId,
            children: Vec<usize>,
            logits: Option<Vec<f32>>,
        }
        let mut nodes = vec![Node {
            token: 0,
            children: Vec::new(),
            logits: None,
        }];
        // Session tokens appended beyond `base_len` right now.
        let mut cur: Vec<TokenId> = Vec::new();
        let mut results = Vec::with_capacity(paths.len());
        for &path in paths {
            let rows_wanted = path.len() + usize::from(include_bonus);
            let mut rows = Vec::with_capacity(rows_wanted);
            let mut node = 0usize;
            for j in 0..rows_wanted {
                if nodes[node].logits.is_none() {
                    // Re-sync the session to this prefix, reusing the
                    // longest common prefix with its current state.
                    let prefix = &path[..j];
                    let common = cur
                        .iter()
                        .zip(prefix.iter())
                        .take_while(|(a, b)| a == b)
                        .count();
                    if common < cur.len() {
                        self.truncate(base_len + common);
                        cur.truncate(common);
                    }
                    if common < prefix.len() {
                        self.append(&prefix[common..]);
                        cur.extend_from_slice(&prefix[common..]);
                    }
                    nodes[node].logits = Some(self.logits());
                }
                rows.push(nodes[node].logits.clone().expect("computed above"));
                if j < path.len() {
                    let tok = path[j];
                    let found = nodes[node]
                        .children
                        .iter()
                        .copied()
                        .find(|&c| nodes[c].token == tok);
                    node = match found {
                        Some(c) => c,
                        None => {
                            nodes.push(Node {
                                token: tok,
                                children: Vec::new(),
                                logits: None,
                            });
                            let id = nodes.len() - 1;
                            nodes[node].children.push(id);
                            id
                        }
                    };
                }
            }
            results.push(rows);
        }
        self.truncate(base_len);
        results
    }

    /// Extracts a fusable [`VerifyPlan`] for the same scoring that
    /// [`DecodeSession::verify_batch`] would perform, so a serving
    /// engine can execute many sessions' verification in one fused pass
    /// ([`verify_many`]). Returns `None` when the session has no
    /// fusable representation (the default); callers must then fall
    /// back to per-session `verify_batch`. Like `verify_batch`, the
    /// session context is unchanged when the call returns.
    fn verify_plan(&mut self, paths: &[&[TokenId]], include_bonus: bool) -> Option<VerifyPlan> {
        let _ = (paths, include_bonus);
        None
    }

    /// The model input representing the session's **current position**
    /// (for [`MlpSession`]: the cached window-embedding concat), so a
    /// serving engine can fuse many sessions' next-position forwards
    /// into one batched pass ([`multi_logits_many`]). `None` when the
    /// session has no fusable representation (the default).
    fn embed_plan(&mut self) -> Option<Vec<f32>> {
        None
    }

    /// Forks the session: an independent session over the same model
    /// with the same context, from which both copies may diverge. This
    /// is the prefix-sharing primitive — ingest a common prompt prefix
    /// once, then fork per request. `None` when the session cannot be
    /// forked (the default).
    fn fork(&self) -> Option<Box<dyn DecodeSession + '_>> {
        None
    }
}

/// A [`DecodeSession`] whose forks outlive the borrow they were forked
/// through: `'m` is the **model** borrow, so a fork taken through any
/// short `&self` still lives for the full model lifetime.
///
/// This is the storable prefix-sharing surface. [`DecodeSession::fork`]
/// ties its child to `&self` — fine for forking straight off a local
/// prefix session, useless for a cache that *owns* boxed snapshots and
/// must hand out forks that outlive the lookup borrow. A radix-tree
/// prefix cache (`verispec-serve`) stores
/// `Box<dyn SnapshotSession<'m> + 'm>` per trie node and forks
/// full-lifetime sessions from the deepest matching node.
///
/// Obtained from [`LanguageModel::snapshot_session`]; copy-on-write is
/// inherited from the underlying sessions (forking clones the cached
/// state, after which parent and child diverge independently).
pub trait SnapshotSession<'m>: DecodeSession {
    /// Forks an independent session with the same context whose
    /// lifetime is the model borrow `'m`, not the `&self` borrow.
    fn fork_snapshot(&self) -> Box<dyn SnapshotSession<'m> + 'm>;
}

// ---------------------------------------------------------------------
// Stateless shim
// ---------------------------------------------------------------------

/// The migration shim: a session over any [`LanguageModel`] that
/// recomputes from the full context on every query.
///
/// This is the default [`LanguageModel::session`] implementation, so
/// model types that only provide the stateless `logits` keep working
/// with the session-driven engines. It is deliberately cache-free: the
/// `session_reuse` bench uses it (via [`Stateless`]) as the
/// "fresh forward per query" baseline.
pub struct StatelessSession<'a, M: LanguageModel + ?Sized> {
    model: &'a M,
    tokens: Vec<TokenId>,
}

impl<'a, M: LanguageModel + ?Sized> StatelessSession<'a, M> {
    /// Opens an empty stateless session over `model`.
    pub fn new(model: &'a M) -> Self {
        StatelessSession {
            model,
            tokens: Vec::new(),
        }
    }
}

impl<M: LanguageModel + ?Sized> DecodeSession for StatelessSession<'_, M> {
    fn len(&self) -> usize {
        self.tokens.len()
    }

    fn tokens(&self) -> &[TokenId] {
        &self.tokens
    }

    fn append(&mut self, tokens: &[TokenId]) {
        self.tokens.extend_from_slice(tokens);
    }

    fn truncate(&mut self, len: usize) {
        self.tokens.truncate(len);
    }

    fn logits(&mut self) -> Vec<f32> {
        self.model.logits(&self.tokens)
    }

    fn multi_logits(&mut self) -> Vec<Vec<f32>> {
        self.model.multi_logits(&self.tokens)
    }

    fn fork(&self) -> Option<Box<dyn DecodeSession + '_>> {
        Some(Box::new(StatelessSession {
            model: self.model,
            tokens: self.tokens.clone(),
        }))
    }
}

impl<'m, M: LanguageModel + ?Sized> SnapshotSession<'m> for StatelessSession<'m, M> {
    fn fork_snapshot(&self) -> Box<dyn SnapshotSession<'m> + 'm> {
        Box::new(StatelessSession {
            model: self.model,
            tokens: self.tokens.clone(),
        })
    }
}

/// Wrapper that forces the stateless default session on a model that
/// has a native one — the baseline side of cached-vs-stateless
/// comparisons (`session_reuse` bench, parity property tests).
pub struct Stateless<M>(pub M);

impl<M: LanguageModel> LanguageModel for Stateless<M> {
    fn vocab_size(&self) -> usize {
        self.0.vocab_size()
    }

    fn n_extra_heads(&self) -> usize {
        self.0.n_extra_heads()
    }

    fn logits(&self, prefix: &[TokenId]) -> Vec<f32> {
        self.0.logits(prefix)
    }

    fn multi_logits(&self, prefix: &[TokenId]) -> Vec<Vec<f32>> {
        self.0.multi_logits(prefix)
    }
    // `session()` intentionally not overridden: the default
    // StatelessSession shim is the point of this wrapper.
}

// ---------------------------------------------------------------------
// MLP session
// ---------------------------------------------------------------------

/// Cached session over an [`MlpLm`].
///
/// The cached state is exactly what the architecture allows reusing:
/// the **context-window embedding** `x` (appending a token shifts the
/// window by one embedding block and writes only the new tail — the
/// rest is reused) and the **trunk hidden state** of the current
/// position (so `logits` and `multi_logits` at one position share one
/// trunk forward). [`DecodeSession::verify_batch`] is overridden with
/// fused batched matmuls over the unique candidate-tree nodes: node
/// embeddings are derived from their parent's cached embedding, and the
/// trunk + base-head projections run one vectorized pass across the
/// whole tree instead of one scalar forward per candidate.
#[derive(Clone)]
pub struct MlpSession<'a> {
    model: &'a MlpLm,
    tokens: Vec<TokenId>,
    /// Embedding concat of the current window, shifted incrementally.
    x: Option<Vec<f32>>,
    /// Trunk hidden state at the current position.
    hidden: Option<Vec<f32>>,
}

impl<'a> MlpSession<'a> {
    /// Opens an empty session over `model`.
    pub fn new(model: &'a MlpLm) -> Self {
        MlpSession {
            model,
            tokens: Vec::new(),
            x: None,
            hidden: None,
        }
    }

    fn d_emb(&self) -> usize {
        self.model.config().d_emb
    }

    fn ensure_x(&mut self) -> &Vec<f32> {
        if self.x.is_none() {
            self.x = Some(self.model.embed_window(&self.model.window(&self.tokens)));
        }
        self.x.as_ref().expect("ensured above")
    }

    fn ensure_hidden(&mut self) {
        if self.hidden.is_none() {
            self.ensure_x();
            let x = self.x.as_ref().expect("ensured above");
            self.hidden = Some(self.model.trunk_hidden(x));
        }
    }
}

impl DecodeSession for MlpSession<'_> {
    fn len(&self) -> usize {
        self.tokens.len()
    }

    fn tokens(&self) -> &[TokenId] {
        &self.tokens
    }

    fn append(&mut self, tokens: &[TokenId]) {
        if tokens.is_empty() {
            return;
        }
        self.tokens.extend_from_slice(tokens);
        self.hidden = None;
        // Recompute only the window tail that changed: each appended
        // token shifts the embedding concat one block left and fills the
        // last block; the prior blocks carry over.
        if let Some(x) = &mut self.x {
            let d = self.model.config().d_emb;
            for &tok in tokens {
                x.copy_within(d.., 0);
                let n = x.len();
                x[n - d..].copy_from_slice(self.model.embed_token(tok));
            }
        }
    }

    fn truncate(&mut self, len: usize) {
        if len >= self.tokens.len() {
            return;
        }
        self.tokens.truncate(len);
        // Rollback re-exposes tokens left of the window; rebuild lazily.
        self.x = None;
        self.hidden = None;
    }

    fn logits(&mut self) -> Vec<f32> {
        self.ensure_hidden();
        self.model
            .head_logits_from_hidden(self.hidden.as_ref().expect("ensured above"), 0)
    }

    fn multi_logits(&mut self) -> Vec<Vec<f32>> {
        self.ensure_hidden();
        let h = self.hidden.as_ref().expect("ensured above");
        (0..=self.model.n_heads())
            .map(|i| self.model.head_logits_from_hidden(h, i))
            .collect()
    }

    fn verify_batch(&mut self, paths: &[&[TokenId]], include_bonus: bool) -> Vec<Vec<Vec<f32>>> {
        let plan = self.build_verify_plan(paths, include_bonus);
        verify_many(self.model, std::slice::from_ref(&plan))
            .pop()
            .expect("one plan executed")
    }

    fn verify_plan(&mut self, paths: &[&[TokenId]], include_bonus: bool) -> Option<VerifyPlan> {
        Some(self.build_verify_plan(paths, include_bonus))
    }

    fn embed_plan(&mut self) -> Option<Vec<f32>> {
        Some(self.ensure_x().clone())
    }

    fn fork(&self) -> Option<Box<dyn DecodeSession + '_>> {
        Some(Box::new(self.clone()))
    }
}

impl<'m> SnapshotSession<'m> for MlpSession<'m> {
    fn fork_snapshot(&self) -> Box<dyn SnapshotSession<'m> + 'm> {
        Box::new(self.clone())
    }
}

impl MlpSession<'_> {
    /// Builds the verification trie and per-node window embeddings that
    /// both [`DecodeSession::verify_batch`] (single session) and
    /// [`verify_many`] (fused across sessions) execute.
    fn build_verify_plan(&mut self, paths: &[&[TokenId]], include_bonus: bool) -> VerifyPlan {
        // 1. Deduplicate the *scored* path prefixes into a trie. Node 0
        //    is the root (the current context); children extend by one
        //    token. Without the bonus row the full-path leaves are never
        //    read, so they get no node and no forward.
        struct Node {
            token: TokenId,
            parent: usize,
            children: Vec<usize>,
        }
        // Size the trie up front from the plan's row count: every
        // non-root scored row creates at most one node (dedup only
        // shrinks that), so per-step shape changes from the speculation
        // policy never reallocate mid-build.
        let max_nodes: usize = 1 + paths
            .iter()
            .map(|p| (p.len() + usize::from(include_bonus)).saturating_sub(1))
            .sum::<usize>();
        let mut nodes = Vec::with_capacity(max_nodes);
        nodes.push(Node {
            token: 0,
            parent: usize::MAX,
            children: Vec::new(),
        });
        // result[i][j] reads from node_of[i][j].
        let mut node_of: Vec<Vec<usize>> = Vec::with_capacity(paths.len());
        for &path in paths {
            let rows_wanted = path.len() + usize::from(include_bonus);
            let mut ids = Vec::with_capacity(rows_wanted);
            let mut node = 0usize;
            if rows_wanted > 0 {
                ids.push(node);
            }
            for &tok in &path[..rows_wanted.saturating_sub(1)] {
                let found = nodes[node]
                    .children
                    .iter()
                    .copied()
                    .find(|&c| nodes[c].token == tok);
                node = match found {
                    Some(c) => c,
                    None => {
                        nodes.push(Node {
                            token: tok,
                            parent: node,
                            children: Vec::new(),
                        });
                        let id = nodes.len() - 1;
                        nodes[node].children.push(id);
                        id
                    }
                };
                ids.push(node);
            }
            node_of.push(ids);
        }

        // 2. One embedding concat per unique node, derived from the
        //    parent's by a one-block shift (nodes are created
        //    parent-first, so xs[parent] always exists). The batched
        //    forward itself (trunk + base head, one fused vectorized
        //    pass across the whole tree) runs at plan execution time —
        //    [`verify_many`] — so it can span many sessions.
        debug_assert!(nodes.len() <= max_nodes, "trie exceeded its row bound");
        let d = self.d_emb();
        let root_x = self.ensure_x().clone();
        let mut xs: Vec<Vec<f32>> = Vec::with_capacity(nodes.len());
        xs.push(root_x);
        for node in &nodes[1..] {
            let parent = &xs[node.parent];
            let mut x = Vec::with_capacity(parent.len());
            x.extend_from_slice(&parent[d..]);
            x.extend_from_slice(self.model.embed_token(node.token));
            xs.push(x);
        }

        VerifyPlan { xs, node_of }
    }
}

// ---------------------------------------------------------------------
// N-gram session
// ---------------------------------------------------------------------

/// Cached session over an [`NgramLm`].
///
/// The n-gram model only inspects the last `order − 1` tokens, so the
/// session state is the token ring plus the memoized count-lookup
/// distribution of the current position (invalidated on append/rollback).
#[derive(Clone)]
pub struct NgramSession<'a> {
    model: &'a NgramLm,
    tokens: Vec<TokenId>,
    logits_cache: Option<Vec<f32>>,
}

impl<'a> NgramSession<'a> {
    /// Opens an empty session over `model`.
    pub fn new(model: &'a NgramLm) -> Self {
        NgramSession {
            model,
            tokens: Vec::new(),
            logits_cache: None,
        }
    }
}

impl DecodeSession for NgramSession<'_> {
    fn len(&self) -> usize {
        self.tokens.len()
    }

    fn tokens(&self) -> &[TokenId] {
        &self.tokens
    }

    fn append(&mut self, tokens: &[TokenId]) {
        if tokens.is_empty() {
            return;
        }
        self.tokens.extend_from_slice(tokens);
        self.logits_cache = None;
    }

    fn truncate(&mut self, len: usize) {
        if len >= self.tokens.len() {
            return;
        }
        self.tokens.truncate(len);
        self.logits_cache = None;
    }

    fn logits(&mut self) -> Vec<f32> {
        if let Some(cached) = &self.logits_cache {
            return cached.clone();
        }
        let logits = self.model.logits(&self.tokens);
        self.logits_cache = Some(logits.clone());
        logits
    }

    fn multi_logits(&mut self) -> Vec<Vec<f32>> {
        vec![self.logits()]
    }

    fn fork(&self) -> Option<Box<dyn DecodeSession + '_>> {
        Some(Box::new(self.clone()))
    }
}

impl<'m> SnapshotSession<'m> for NgramSession<'m> {
    fn fork_snapshot(&self) -> Box<dyn SnapshotSession<'m> + 'm> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::MlpLmConfig;

    fn tiny_mlp() -> MlpLm {
        MlpLm::new(MlpLmConfig::tiny(12))
    }

    fn trained_ngram() -> NgramLm {
        let mut ng = NgramLm::new(3, 12);
        let seq: Vec<TokenId> = (0..90).map(|i| 5 + (i % 4) as TokenId).collect();
        ng.train_sequence(&seq);
        ng
    }

    #[test]
    fn mlp_session_matches_stateless_logits() {
        let model = tiny_mlp();
        let mut s = model.session();
        let prefix = [1u32, 2, 3, 4, 5];
        for i in 0..prefix.len() {
            s.append(&prefix[i..=i]);
            assert_eq!(s.logits(), model.logits(&prefix[..=i]), "position {i}");
            assert_eq!(s.multi_logits(), model.multi_logits(&prefix[..=i]));
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.tokens(), &prefix);
    }

    #[test]
    fn truncate_rolls_back_exactly() {
        let model = tiny_mlp();
        let mut s = model.session();
        s.append(&[1, 2, 3]);
        let at3 = s.logits();
        s.append(&[7, 8]);
        assert_ne!(s.logits(), at3, "context change must change logits");
        s.truncate(3);
        assert_eq!(s.logits(), at3, "rollback must restore position state");
        s.truncate(10); // beyond current length: no-op
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn verify_batch_matches_stateless_forwards_bitwise() {
        let model = tiny_mlp();
        let mut s = model.session();
        let prefix = [2u32, 4, 6];
        s.append(&prefix);
        let paths: Vec<Vec<TokenId>> = vec![vec![1, 2, 3], vec![1, 2, 7], vec![5], vec![1, 9]];
        let path_refs: Vec<&[TokenId]> = paths.iter().map(Vec::as_slice).collect();
        let scored = s.verify_batch(&path_refs, true);
        assert_eq!(scored.len(), paths.len());
        for (path, rows) in paths.iter().zip(&scored) {
            assert_eq!(rows.len(), path.len() + 1);
            for (j, row) in rows.iter().enumerate() {
                let mut ctx = prefix.to_vec();
                ctx.extend_from_slice(&path[..j]);
                let expect = model.logits(&ctx);
                assert!(
                    row.iter()
                        .zip(&expect)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "path {path:?} pos {j}"
                );
            }
        }
        // Without the bonus row, each path gets exactly len rows and the
        // shared rows are identical.
        let trimmed = s.verify_batch(&path_refs, false);
        for ((path, with_bonus), without) in paths.iter().zip(&scored).zip(&trimmed) {
            assert_eq!(without.len(), path.len());
            assert_eq!(&with_bonus[..path.len()], &without[..]);
        }
        // The session context is unchanged.
        assert_eq!(s.tokens(), &prefix);
        assert_eq!(s.logits(), model.logits(&prefix));
    }

    #[test]
    fn default_verify_batch_agrees_with_batched_override() {
        let model = tiny_mlp();
        let paths: Vec<Vec<TokenId>> = vec![vec![3, 1], vec![3, 2], vec![8]];
        let path_refs: Vec<&[TokenId]> = paths.iter().map(Vec::as_slice).collect();

        for include_bonus in [true, false] {
            let mut native = model.session();
            native.append(&[1, 2]);
            let a = native.verify_batch(&path_refs, include_bonus);

            let shim = Stateless(&model);
            let mut stateless = shim.session();
            stateless.append(&[1, 2]);
            let b = stateless.verify_batch(&path_refs, include_bonus);

            assert_eq!(a, b, "shim and batched session must agree exactly");
        }
    }

    #[test]
    fn verify_many_fuses_sessions_bit_identically() {
        // Three sessions at different contexts, different candidate
        // trees, mixed bonus settings: the fused cross-session pass
        // must reproduce each session's own verify_batch exactly.
        let model = tiny_mlp();
        let contexts: [&[TokenId]; 3] = [&[1, 2, 3], &[4, 5], &[9]];
        let trees: [Vec<Vec<TokenId>>; 3] = [
            vec![vec![1, 2], vec![1, 3]],
            vec![vec![7]],
            vec![vec![2, 2, 2], vec![3], vec![2, 4]],
        ];
        let bonus = [true, false, true];
        let mut plans = Vec::new();
        for ((ctx, tree), &b) in contexts.iter().zip(&trees).zip(&bonus) {
            let mut s = model.session();
            s.append(ctx);
            let refs: Vec<&[TokenId]> = tree.iter().map(Vec::as_slice).collect();
            plans.push(s.verify_plan(&refs, b).expect("mlp sessions fuse"));
        }
        for (plan, (tree, &b)) in plans.iter().zip(trees.iter().zip(&bonus)) {
            let rows: usize = tree.iter().map(|p| p.len() + usize::from(b)).sum();
            assert_eq!(plan.n_rows(), rows, "plan row count");
            assert!(plan.n_nodes() <= plan.n_rows().max(1), "dedup only shrinks");
        }
        let fused = verify_many(&model, &plans);
        for (i, ((ctx, tree), &b)) in contexts.iter().zip(&trees).zip(&bonus).enumerate() {
            let mut s = model.session();
            s.append(ctx);
            let refs: Vec<&[TokenId]> = tree.iter().map(Vec::as_slice).collect();
            let own = s.verify_batch(&refs, b);
            assert_eq!(fused[i], own, "session {i} diverged under fusion");
        }
        assert!(verify_many(&model, &[]).is_empty());
    }

    #[test]
    fn multi_logits_many_matches_per_session_calls() {
        let model = tiny_mlp();
        let contexts: [&[TokenId]; 3] = [&[1, 2, 3, 4, 5], &[2], &[7, 7]];
        let mut xs = Vec::new();
        for ctx in &contexts {
            let mut s = model.session();
            s.append(ctx);
            xs.push(s.embed_plan().expect("mlp sessions expose x"));
        }
        let fused = multi_logits_many(&model, &xs);
        for (i, ctx) in contexts.iter().enumerate() {
            let mut s = model.session();
            s.append(ctx);
            assert_eq!(fused[i], s.multi_logits(), "position {i} diverged");
        }
        assert!(multi_logits_many(&model, &[]).is_empty());
    }

    #[test]
    fn forked_sessions_diverge_independently() {
        let model = tiny_mlp();
        let mut prefix = model.session();
        prefix.append(&[1, 2, 3]);
        let mut a = prefix.fork().expect("mlp fork");
        let mut b = prefix.fork().expect("mlp fork");
        a.append(&[4]);
        b.append(&[5, 6]);
        assert_eq!(a.logits(), model.logits(&[1, 2, 3, 4]));
        assert_eq!(b.logits(), model.logits(&[1, 2, 3, 5, 6]));
        // The parent is untouched.
        assert_eq!(prefix.tokens(), &[1, 2, 3]);

        // Ngram and stateless sessions fork too.
        let ng = trained_ngram();
        let mut s = ng.session();
        s.append(&[5, 6]);
        let mut f = s.fork().expect("ngram fork");
        f.append(&[7]);
        assert_eq!(f.logits(), LanguageModel::logits(&ng, &[5, 6, 7]));
        let shim = Stateless(&model);
        let mut ss = shim.session();
        ss.append(&[2, 4]);
        let mut sf = ss.fork().expect("stateless fork");
        sf.append(&[6]);
        assert_eq!(sf.logits(), model.logits(&[2, 4, 6]));
    }

    #[test]
    fn snapshot_forks_outlive_the_lookup_borrow() {
        // The storable-fork surface: a container owns boxed snapshots,
        // and a fork taken through a short borrow of one entry must
        // live beyond that borrow (the prefix-cache access pattern).
        let model = tiny_mlp();
        let mut store: Vec<Box<dyn SnapshotSession<'_> + '_>> = Vec::new();
        let mut snap = model.snapshot_session().expect("mlp snapshots");
        snap.append(&[1, 2, 3]);
        store.push(snap);
        let mut fork = {
            let entry = &store[0]; // short borrow
            entry.fork_snapshot()
        };
        fork.append(&[4]);
        assert_eq!(fork.logits(), model.logits(&[1, 2, 3, 4]));
        // The stored parent is untouched (copy-on-write).
        assert_eq!(store[0].tokens(), &[1, 2, 3]);
        // Upcasting to the plain session trait hands the fork to an
        // engine stepper.
        let mut plain: Box<dyn DecodeSession + '_> = fork;
        plain.append(&[5]);
        assert_eq!(plain.logits(), model.logits(&[1, 2, 3, 4, 5]));

        // Ngram models snapshot too; the `&M` forwarder passes through.
        let ng = trained_ngram();
        assert!(ng.snapshot_session().is_some());
        assert!((&ng as &dyn LanguageModel).snapshot_session().is_some());
        // Plain-logits models fall back to `None`.
        assert!(Stateless(&model).snapshot_session().is_none());
    }

    #[test]
    fn default_impl_cycle_panics_instead_of_overflowing() {
        // A broken implementor that overrides neither `session` nor
        // `logits`: the depth guard must turn the infinite recursion
        // into a catchable panic with a pointer to the fix.
        struct Neither;
        impl LanguageModel for Neither {
            fn vocab_size(&self) -> usize {
                4
            }
        }
        let err = std::panic::catch_unwind(|| Neither.logits(&[1]))
            .expect_err("must panic, not overflow");
        let msg = err
            .downcast_ref::<&'static str>()
            .map(|s| s.to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("implement at least one"), "got: {msg}");
    }

    #[test]
    fn ngram_session_matches_stateless() {
        let ng = trained_ngram();
        let mut s = ng.session();
        let prefix = [5u32, 6, 7, 8, 5, 6];
        for i in 0..prefix.len() {
            s.append(&prefix[i..=i]);
            assert_eq!(s.logits(), LanguageModel::logits(&ng, &prefix[..=i]));
        }
        s.truncate(2);
        assert_eq!(s.logits(), LanguageModel::logits(&ng, &prefix[..2]));
    }

    #[test]
    fn stateless_wrapper_forwards_model_behavior() {
        let model = tiny_mlp();
        let shim = Stateless(&model);
        assert_eq!(shim.vocab_size(), model.vocab_size());
        assert_eq!(shim.n_extra_heads(), model.n_extra_heads());
        assert_eq!(shim.logits(&[1, 2]), model.logits(&[1, 2]));
        let mut s = shim.session();
        s.append(&[1, 2]);
        assert_eq!(s.logits(), model.logits(&[1, 2]));
    }
}
