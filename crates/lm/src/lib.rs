//! Language-model substrate for VeriSpec.
//!
//! The paper fine-tunes CodeLlama-7b and CodeT5p-220m on GPUs; this crate
//! provides the laptop-scale substitute (see DESIGN.md §2): tiny neural
//! language models that are actually *trained* in Rust, so the paper's
//! quality and speed effects emerge from learning rather than being
//! hard-coded.
//!
//! * [`mlp`] — an MLP language model with MEDUSA-style decoding heads and
//!   hand-written backprop (the "base model + heads" of paper §III-B).
//! * [`ngram`] — an interpolated n-gram model used as the classical
//!   speculative-decoding draft model and in tests.
//! * [`session`] — stateful [`DecodeSession`]s (the KV-cache analogue):
//!   incremental append/rollback contexts with cached activations and
//!   batched candidate-tree verification.
//! * [`sampler`] — greedy / temperature / top-k sampling.
//! * [`cost`] — the deterministic GPU latency model that converts decode
//!   steps into simulated tokens/second (Table II's measurement).
//! * [`matrix`] — the minimal dense linear algebra underneath.
//!
//! # Sessions vs. stateless calls
//!
//! The decoding engines in `verispec-core` open one [`DecodeSession`]
//! per generation and drive it incrementally:
//!
//! ```
//! use verispec_lm::{LanguageModel, MlpLm, MlpLmConfig};
//!
//! let model = MlpLm::new(MlpLmConfig::tiny(16));
//! let mut session = model.session();
//! session.append(&[1, 2, 3]);
//! let next = session.logits();               // cached trunk activation
//! let paths: Vec<&[u32]> = vec![&[4, 5], &[4, 6]];
//! let scored = session.verify_batch(&paths, true); // one batched forward
//! assert_eq!(scored[0].len(), 3);            // K positions + bonus row
//! session.truncate(3);                       // rollback after rejection
//! assert_eq!(next, model.logits(&[1, 2, 3])); // sessions never drift
//! ```
//!
//! The stateless `logits(&prefix)` / `multi_logits(&prefix)` methods
//! remain available as a shim over a fresh session, so existing
//! [`LanguageModel`] implementations and callers migrate gradually.
//!
//! # Examples
//!
//! Train a tiny model on a repetitive sequence and query all heads:
//!
//! ```
//! use verispec_lm::mlp::{MlpLm, MlpLmConfig};
//!
//! let mut model = MlpLm::new(MlpLmConfig::tiny(16));
//! let mut opt = model.optimizer();
//! let mut grads = model.zero_grads();
//! let seq: Vec<u32> = (0..40).map(|i| 1 + (i % 3)).collect();
//! for _ in 0..5 {
//!     grads.reset();
//!     for pos in 0..seq.len() - 1 {
//!         let w = model.window(&seq[..=pos]);
//!         model.accumulate_position(&mut grads, &w, &[(0, seq[pos + 1], 1.0)]);
//!     }
//!     model.adam_step(&mut opt, &grads, 1e-2, 4.0);
//! }
//! let per_head_logits = model.multi_logits(&seq[..4]);
//! assert_eq!(per_head_logits.len(), 1 + model.n_heads());
//! ```

#![deny(missing_docs)]

pub mod cost;
pub mod matrix;
pub mod mlp;
pub mod ngram;
pub mod sampler;
pub mod session;

pub use cost::{DecodeClock, GpuCostModel};
pub use mlp::{HeadTarget, MlpLm, MlpLmConfig, PositionLoss, TokenId, PAD_ID};
pub use ngram::NgramLm;
pub use sampler::{argmax, top_k_indices, Sampler, Sampling};
pub use session::{
    multi_logits_many, verify_many, DecodeSession, MlpSession, NgramSession, SnapshotSession,
    Stateless, StatelessSession, VerifyPlan,
};

/// A language model that exposes base-head logits over a prefix, and
/// optionally extra Medusa heads predicting further-ahead tokens.
///
/// Implemented by [`MlpLm`] (trainable, with heads) and [`NgramLm`]
/// (count-based, base head only). The speculative decoding engines in
/// `verispec-core` are generic over this trait and drive it through
/// [`LanguageModel::session`].
///
/// Implementations must provide **at least one** of
/// [`LanguageModel::session`] or [`LanguageModel::logits`] — each has a
/// default written in terms of the other (stateless calls open a fresh
/// session; the default session recomputes statelessly). A type
/// overriding neither panics with a descriptive message on first use
/// (a depth guard in the defaults turns the would-be infinite
/// recursion into a diagnosable error).
pub trait LanguageModel {
    /// Vocabulary size (length of each logit vector).
    fn vocab_size(&self) -> usize;

    /// Number of extra Medusa heads (0 for plain LMs).
    fn n_extra_heads(&self) -> usize {
        0
    }

    /// Opens an empty [`DecodeSession`] over this model.
    ///
    /// The default is the [`StatelessSession`] shim (full recompute per
    /// query); models with cacheable state override this with an
    /// incremental session ([`MlpSession`], [`NgramSession`]).
    fn session(&self) -> Box<dyn DecodeSession + '_> {
        Box::new(StatelessSession::new(self))
    }

    /// Opens an empty **storable-fork** session over this model
    /// ([`SnapshotSession`]): forks taken through any short borrow live
    /// for the full model lifetime, which is what lets an owner (e.g. a
    /// prefix cache) keep boxed snapshots and fork from them later.
    ///
    /// `None` (the default) means callers must fall back to
    /// [`LanguageModel::session`] and re-ingest prompts from scratch;
    /// [`MlpLm`] and [`NgramLm`] override it.
    fn snapshot_session(&self) -> Option<Box<dyn SnapshotSession<'_> + '_>> {
        None
    }

    /// Base-head logits for the next token after `prefix`.
    ///
    /// Default: a shim over a fresh [`LanguageModel::session`], kept so
    /// external callers of the stateless API migrate gradually.
    fn logits(&self, prefix: &[TokenId]) -> Vec<f32> {
        session::shim_recursion_guard(|| {
            let mut session = self.session();
            session.append(prefix);
            session.logits()
        })
    }

    /// Logits for the base head and every extra head.
    ///
    /// Default: a shim over a fresh [`LanguageModel::session`].
    fn multi_logits(&self, prefix: &[TokenId]) -> Vec<Vec<f32>> {
        session::shim_recursion_guard(|| {
            let mut session = self.session();
            session.append(prefix);
            session.multi_logits()
        })
    }
}

impl<M: LanguageModel + ?Sized> LanguageModel for &M {
    fn vocab_size(&self) -> usize {
        (**self).vocab_size()
    }

    fn n_extra_heads(&self) -> usize {
        (**self).n_extra_heads()
    }

    fn session(&self) -> Box<dyn DecodeSession + '_> {
        (**self).session()
    }

    fn snapshot_session(&self) -> Option<Box<dyn SnapshotSession<'_> + '_>> {
        (**self).snapshot_session()
    }

    fn logits(&self, prefix: &[TokenId]) -> Vec<f32> {
        (**self).logits(prefix)
    }

    fn multi_logits(&self, prefix: &[TokenId]) -> Vec<Vec<f32>> {
        (**self).multi_logits(prefix)
    }
}

impl LanguageModel for MlpLm {
    fn vocab_size(&self) -> usize {
        self.config().vocab
    }

    fn n_extra_heads(&self) -> usize {
        self.n_heads()
    }

    fn session(&self) -> Box<dyn DecodeSession + '_> {
        Box::new(MlpSession::new(self))
    }

    fn snapshot_session(&self) -> Option<Box<dyn SnapshotSession<'_> + '_>> {
        Some(Box::new(MlpSession::new(self)))
    }

    fn logits(&self, prefix: &[TokenId]) -> Vec<f32> {
        MlpLm::logits(self, prefix)
    }

    fn multi_logits(&self, prefix: &[TokenId]) -> Vec<Vec<f32>> {
        MlpLm::multi_logits(self, prefix)
    }
}

impl LanguageModel for NgramLm {
    fn vocab_size(&self) -> usize {
        NgramLm::vocab_size(self)
    }

    fn session(&self) -> Box<dyn DecodeSession + '_> {
        Box::new(NgramSession::new(self))
    }

    fn snapshot_session(&self) -> Option<Box<dyn SnapshotSession<'_> + '_>> {
        Some(Box::new(NgramSession::new(self)))
    }

    fn logits(&self, prefix: &[TokenId]) -> Vec<f32> {
        NgramLm::logits(self, prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_objects_work_for_both_models() {
        let mlp = MlpLm::new(MlpLmConfig::tiny(8));
        let mut ng = NgramLm::new(2, 8);
        ng.train_sequence(&[1, 2, 3, 1, 2, 3]);
        let models: Vec<&dyn LanguageModel> = vec![&mlp, &ng];
        for m in models {
            assert_eq!(m.logits(&[1, 2]).len(), 8);
            assert!(!m.multi_logits(&[1]).is_empty());
        }
        assert_eq!(mlp.n_extra_heads(), 3);
        assert_eq!(ng.n_extra_heads(), 0);
    }

    #[test]
    fn ngram_logits_softmax_to_distribution() {
        let mut ng = NgramLm::new(2, 6);
        ng.train_sequence(&[1, 2, 1, 2, 1, 2]);
        let logits = LanguageModel::logits(&ng, &[1]);
        let probs = matrix::softmax(&logits);
        let direct = ng.distribution(&[1]);
        for (a, b) in probs.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }
}
