//! Minimal dense `f32` linear algebra for the tiny language models.
//!
//! Row-major matrices with exactly the operations the MLP LM's forward
//! and hand-written backward passes need. No BLAS, no SIMD intrinsics —
//! the models are small enough that scalar loops in release mode suffice
//! for the single-vector paths. The batched kernel additionally shards
//! its rows across threads once the work size crosses a
//! [`MATVEC_PAR_THRESHOLD`] grain (large fused candidate trees,
//! cross-request serving batches), sizing the fan-out from the work
//! itself up to the machine's [`pool_parallelism`] ceiling
//! (`available_parallelism`, overridable with `VERISPEC_THREADS`) —
//! with bit-identical results: rows are independent, so splitting them
//! never changes any accumulation order.

use serde::{Deserialize, Serialize};
use std::ops::Range;

/// The lane width [`Matrix::matvec_batch`] selects for a given batch
/// size: the inner loop runs over a `[f32; LANES]` accumulator, which
/// the compiler unrolls and vectorizes, and the batch is zero-padded up
/// to a lane multiple — so the width is a padding/ILP trade-off. Small
/// batches take the 4-lane kernel (padding a 2-batch to 4 lanes wastes
/// 2 slots instead of 6, which is what lets cross-request propose
/// fusion pay in the 2–8 batch range), mid-size batches the 8-lane
/// kernel, and larger ones the 16-lane kernel, whose wider accumulator
/// block amortizes each streamed weight row better once the batch can
/// fill it.
///
/// Bit-identity holds for **any** lane width: lanes only regroup
/// *independent* accumulators, so every output element still sums its
/// columns in exactly [`Matrix::matvec`]'s order (the tests pin this
/// across 4/8/16).
pub fn lanes_for(batch: usize) -> usize {
    if batch <= 4 {
        4
    } else if batch <= 8 {
        8
    } else {
        16
    }
}

/// The per-thread work grain (`rows × cols × padded batch`) of the
/// batched kernel: below one grain of total work,
/// [`Matrix::matvec_batch`] stays single-threaded (thread spawn/join
/// overhead outweighs the parallel compute — the typical
/// single-request candidate tree lands here), and above it the kernel
/// asks for roughly one thread per grain, capped by
/// [`pool_parallelism`] and the row count. The grain is a *sizing*
/// unit, not a dormancy switch: how many threads actually pay off is
/// always derived from the work, while the pool ceiling tracks the
/// machine (or the `VERISPEC_THREADS` override).
pub const MATVEC_PAR_THRESHOLD: usize = 1 << 22;

/// The thread-pool ceiling for the batched kernel: the
/// `VERISPEC_THREADS` environment variable when set to a positive
/// integer, otherwise `std::thread::available_parallelism()`. Read
/// once and cached for the process (thread sizing must not flap
/// mid-run if the environment mutates). The override serves two
/// masters: pinning CI to a reproducible width on arbitrary runners,
/// and deliberately oversubscribing a small machine (e.g.
/// `VERISPEC_THREADS=4` on one core) to flush out schedule-dependent
/// bugs — bit-identity across thread counts makes both safe.
pub fn pool_parallelism() -> usize {
    use std::sync::OnceLock;
    static POOL: OnceLock<usize> = OnceLock::new();
    *POOL.get_or_init(|| {
        std::env::var("VERISPEC_THREADS")
            .ok()
            .and_then(|v| parse_thread_override(&v))
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// Parses a `VERISPEC_THREADS` value: a positive integer pool ceiling.
/// Anything else (empty, zero, garbage) is ignored in favor of the
/// detected parallelism.
fn parse_thread_override(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// Threads the batched kernel should use for a given work size: one
/// below a [`MATVEC_PAR_THRESHOLD`] grain of work, then roughly one
/// per grain, capped by [`pool_parallelism`] and the row count (each
/// thread needs at least one row).
pub fn matvec_batch_threads(rows: usize, cols: usize, batch: usize) -> usize {
    threads_for(rows, cols, batch, lanes_for(batch))
}

/// [`matvec_batch_threads`] for an explicit lane width, so the padded
/// work estimate matches the kernel that actually runs.
fn threads_for(rows: usize, cols: usize, batch: usize, lanes: usize) -> usize {
    threads_for_pool(rows, cols, batch, lanes, pool_parallelism())
}

/// The sizing core behind [`matvec_batch_threads`], with the pool
/// ceiling passed explicitly (deterministically testable regardless of
/// the process environment): single-threaded below one work grain or
/// with fewer than 2 rows, else `min(pool, work / grain + 1, rows)`.
pub fn threads_for_pool(
    rows: usize,
    cols: usize,
    batch: usize,
    lanes: usize,
    pool: usize,
) -> usize {
    let work = rows * cols * batch.div_ceil(lanes) * lanes;
    if work < MATVEC_PAR_THRESHOLD || rows < 2 {
        return 1;
    }
    pool.max(1).min(work / MATVEC_PAR_THRESHOLD + 1).min(rows)
}

/// A row-major dense matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A matrix filled from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat parameter slice (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The flat mutable parameter slice (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `y = A x` (length `rows`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0f32; self.rows];
        for (r, out) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0f32;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *out = acc;
        }
        y
    }

    /// `y_k = A x_k` for every input in `xs`, in one fused pass.
    ///
    /// This is where batched session verification beats per-candidate
    /// forwards on real hardware: a single [`Matrix::matvec`] is a chain
    /// of dependent scalar adds (FP reassociation is not allowed, so it
    /// cannot vectorize), but across a batch the accumulators are
    /// independent. The inputs are transposed into column-major form and
    /// the inner loop runs over the batch lane `k`, which auto-vectorizes
    /// while every individual output still accumulates its columns in
    /// exactly [`Matrix::matvec`]'s order — results are bit-identical,
    /// only the instruction-level parallelism changes.
    ///
    /// Above [`MATVEC_PAR_THRESHOLD`] of work the rows are additionally
    /// sharded across threads (see [`Matrix::matvec_batch_threaded`]);
    /// rows are independent, so the results stay bit-identical. The
    /// accumulator lane width is chosen per batch size ([`lanes_for`]),
    /// also without affecting any output bit.
    ///
    /// # Panics
    ///
    /// Panics if any `x.len() != cols`.
    pub fn matvec_batch(&self, xs: &[&[f32]]) -> Vec<Vec<f32>> {
        self.matvec_batch_threaded(xs, matvec_batch_threads(self.rows, self.cols, xs.len()))
    }

    /// [`Matrix::matvec_batch`] with an explicit thread count: rows are
    /// split into contiguous shards, one `std::thread::scope` worker per
    /// shard. Every output element is accumulated by exactly the same
    /// lane kernel regardless of `threads`, so results are bit-identical
    /// for any thread count (the tests pin this).
    ///
    /// # Panics
    ///
    /// Panics if any `x.len() != cols`.
    pub fn matvec_batch_threaded(&self, xs: &[&[f32]], threads: usize) -> Vec<Vec<f32>> {
        self.matvec_batch_impl(xs, lanes_for(xs.len()), threads)
    }

    /// [`Matrix::matvec_batch`] with an explicit accumulator lane width
    /// (4, 8, or 16), overriding the per-batch [`lanes_for`] selection.
    /// Results are bit-identical for every supported width — lanes only
    /// regroup independent accumulators (the tests pin this); the width
    /// is purely a throughput knob.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not 4, 8, or 16, or any `x.len() != cols`.
    pub fn matvec_batch_with_lanes(&self, xs: &[&[f32]], lanes: usize) -> Vec<Vec<f32>> {
        self.matvec_batch_impl(
            xs,
            lanes,
            threads_for(self.rows, self.cols, xs.len(), lanes),
        )
    }

    fn matvec_batch_impl(&self, xs: &[&[f32]], lanes: usize, threads: usize) -> Vec<Vec<f32>> {
        let kernel: fn(&Matrix, &[f32], usize, Range<usize>, &mut [f32]) = match lanes {
            4 => Matrix::batch_rows_into::<4>,
            8 => Matrix::batch_rows_into::<8>,
            16 => Matrix::batch_rows_into::<16>,
            other => panic!("unsupported matvec_batch lane width {other} (use 4, 8, or 16)"),
        };
        let n = xs.len();
        if n == 0 {
            return Vec::new();
        }
        for x in xs {
            assert_eq!(x.len(), self.cols, "matvec_batch dimension mismatch");
        }
        let stride = n.div_ceil(lanes) * lanes;
        // Transpose to padded column-major: xt[c * stride + k] = xs[k][c].
        let mut xt = vec![0.0f32; self.cols * stride];
        for (k, x) in xs.iter().enumerate() {
            for (c, &v) in x.iter().enumerate() {
                xt[c * stride + k] = v;
            }
        }
        // Row-major padded result buffer: flat[r * stride + k] = y_k[r].
        let mut flat = vec![0.0f32; self.rows * stride];
        let threads = threads.clamp(1, self.rows.max(1));
        if threads <= 1 {
            kernel(self, &xt, stride, 0..self.rows, &mut flat);
        } else {
            let per = self.rows.div_ceil(threads);
            let xt = &xt;
            std::thread::scope(|s| {
                for (t, shard) in flat.chunks_mut(per * stride).enumerate() {
                    let r0 = t * per;
                    let rows = r0..r0 + shard.len() / stride;
                    s.spawn(move || kernel(self, xt, stride, rows, shard));
                }
            });
        }
        let mut ys = vec![vec![0.0f32; self.rows]; n];
        for r in 0..self.rows {
            let row = &flat[r * stride..r * stride + n];
            for (y, &v) in ys.iter_mut().zip(row) {
                y[r] = v;
            }
        }
        ys
    }

    /// The batched-kernel inner loop over a contiguous row range,
    /// writing into `out` (layout `out[(r - rows.start) * stride + k]`).
    fn batch_rows_into<const L: usize>(
        &self,
        xt: &[f32],
        stride: usize,
        rows: Range<usize>,
        out: &mut [f32],
    ) {
        let chunks = stride / L;
        for (ri, r) in rows.enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for chunk in 0..chunks {
                let mut acc = [0.0f32; L];
                let offset = chunk * L;
                for (c, &rv) in row.iter().enumerate() {
                    let base = c * stride + offset;
                    let lane: &[f32; L] = xt[base..base + L].try_into().expect("fixed lane width");
                    for l in 0..L {
                        acc[l] += rv * lane[l];
                    }
                }
                out[ri * stride + offset..ri * stride + offset + L].copy_from_slice(&acc);
            }
        }
    }

    /// `y = Aᵀ x` (length `cols`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0f32; self.cols];
        for (r, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (yc, a) in y.iter_mut().zip(row) {
                *yc += xv * a;
            }
        }
        y
    }

    /// Rank-1 update `A += dy xᵀ` (gradient accumulation for `y = A x`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add_outer(&mut self, dy: &[f32], x: &[f32]) {
        assert_eq!(dy.len(), self.rows, "add_outer rows mismatch");
        assert_eq!(x.len(), self.cols, "add_outer cols mismatch");
        for (r, &g) in dy.iter().enumerate() {
            if g == 0.0 {
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (a, xv) in row.iter_mut().zip(x) {
                *a += g * xv;
            }
        }
    }

    /// Sets every entry to zero (reused gradient buffers).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut out: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f32 = out.iter().sum();
    if sum > 0.0 {
        out.iter_mut().for_each(|v| *v /= sum);
    }
    out
}

/// Numerically stable log-softmax.
pub fn log_softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = logits.iter().map(|&l| (l - max).exp()).sum::<f32>().ln() + max;
    logits.iter().map(|&l| l - log_sum).collect()
}

/// Shannon entropy (nats) of a probability distribution.
pub fn entropy(probs: &[f32]) -> f32 {
    probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum()
}

/// SiLU activation `x * sigmoid(x)`.
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Derivative of SiLU: `σ(x)·(1 + x·(1 − σ(x)))`.
pub fn silu_prime(x: f32) -> f32 {
    let s = 1.0 / (1.0 + (-x).exp());
    s * (1.0 + x * (1.0 - s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_matches_manual() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32); // [[0,1,2],[3,4,5]]
        let y = a.matvec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![8.0, 26.0]);
    }

    #[test]
    fn matvec_batch_matches_matvec_bitwise() {
        let a = Matrix::from_fn(5, 7, |r, c| ((r * 31 + c * 17) as f32).sin());
        let xs: Vec<Vec<f32>> = (0..4)
            .map(|k| (0..7).map(|c| ((k * 13 + c) as f32).cos()).collect())
            .collect();
        let refs: Vec<&[f32]> = xs.iter().map(Vec::as_slice).collect();
        let batched = a.matvec_batch(&refs);
        for (x, y) in xs.iter().zip(&batched) {
            let single = a.matvec(x);
            assert!(single
                .iter()
                .zip(y)
                .all(|(p, q)| p.to_bits() == q.to_bits()));
        }
        assert!(a.matvec_batch(&[]).is_empty());
    }

    #[test]
    fn matvec_batch_threaded_is_bit_identical_for_any_thread_count() {
        // 13 rows so shards are uneven; 19 inputs so the last lane chunk
        // is partially padded.
        let a = Matrix::from_fn(13, 11, |r, c| ((r * 7 + c * 3) as f32).sin());
        let xs: Vec<Vec<f32>> = (0..19)
            .map(|k| (0..11).map(|c| ((k * 5 + c) as f32).cos()).collect())
            .collect();
        let refs: Vec<&[f32]> = xs.iter().map(Vec::as_slice).collect();
        let serial = a.matvec_batch_threaded(&refs, 1);
        for threads in [2, 3, 8, 64] {
            let sharded = a.matvec_batch_threaded(&refs, threads);
            assert_eq!(serial.len(), sharded.len());
            for (p, q) in serial.iter().zip(&sharded) {
                assert!(
                    p.iter().zip(q).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "threads={threads} diverged"
                );
            }
        }
        // And both agree bitwise with the scalar matvec.
        for (x, y) in xs.iter().zip(&serial) {
            let single = a.matvec(x);
            assert!(single
                .iter()
                .zip(y)
                .all(|(p, q)| p.to_bits() == q.to_bits()));
        }
    }

    #[test]
    fn matvec_batch_lane_widths_are_bit_identical() {
        // 13 rows, 11 cols; batch sizes straddling every lane-selection
        // boundary (and padding every width partially).
        let a = Matrix::from_fn(13, 11, |r, c| ((r * 19 + c * 5) as f32).sin());
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 17, 33] {
            let xs: Vec<Vec<f32>> = (0..n)
                .map(|k| (0..11).map(|c| ((k * 3 + c) as f32).cos()).collect())
                .collect();
            let refs: Vec<&[f32]> = xs.iter().map(Vec::as_slice).collect();
            let auto = a.matvec_batch(&refs);
            for lanes in [4usize, 8, 16] {
                let forced = a.matvec_batch_with_lanes(&refs, lanes);
                for (p, q) in auto.iter().zip(&forced) {
                    assert!(
                        p.iter().zip(q).all(|(x, y)| x.to_bits() == y.to_bits()),
                        "lanes={lanes} n={n} diverged from auto selection"
                    );
                }
            }
            // And all agree bitwise with the scalar matvec.
            for (x, y) in xs.iter().zip(&auto) {
                let single = a.matvec(x);
                assert!(
                    single
                        .iter()
                        .zip(y)
                        .all(|(p, q)| p.to_bits() == q.to_bits()),
                    "n={n} diverged from matvec"
                );
            }
        }
    }

    #[test]
    fn lane_selection_covers_the_batch_spectrum() {
        assert_eq!(lanes_for(1), 4);
        assert_eq!(lanes_for(4), 4);
        assert_eq!(lanes_for(5), 8);
        assert_eq!(lanes_for(8), 8);
        assert_eq!(lanes_for(9), 16);
        assert_eq!(lanes_for(4096), 16);
    }

    #[test]
    fn matvec_batch_thread_policy_respects_threshold() {
        // Tiny work: always single-threaded.
        assert_eq!(matvec_batch_threads(16, 32, 4), 1);
        // One row can never shard.
        assert_eq!(matvec_batch_threads(1, 1 << 24, 8), 1);
        // Huge work: more than one thread (machine permitting) but never
        // more than the row count.
        let big = matvec_batch_threads(64, 1024, 4096);
        assert!((1..=64).contains(&big));
        // The derived count never exceeds the process pool ceiling.
        assert!(big <= pool_parallelism().max(1));
    }

    #[test]
    fn pool_sizing_is_grain_pool_and_row_capped() {
        // Below one work grain: single-threaded at any pool width.
        assert_eq!(threads_for_pool(16, 32, 4, 4, 64), 1);
        // Fewer than 2 rows can never shard, whatever the work.
        assert_eq!(threads_for_pool(1, 1 << 24, 8, 8, 64), 1);
        // 64 × 1024 × 4096 (16 lanes) = 2^38 = 2^16 grains of work:
        // the pool ceiling is the binding cap...
        assert_eq!(threads_for_pool(64, 1024, 4096, 16, 8), 8);
        assert_eq!(threads_for_pool(64, 1024, 4096, 16, 1), 1);
        // ...until the row count binds first (each thread needs a row).
        assert_eq!(threads_for_pool(2, 1 << 15, 4096, 16, 8), 2);
        // Work-derived sizing binds when the pool is wide: 3 grains of
        // padded work asks for work/grain + 1 = 4 threads of 64.
        let grain_rows = MATVEC_PAR_THRESHOLD / (1024 * 16);
        assert_eq!(threads_for_pool(3 * grain_rows, 1024, 16, 16, 64), 4);
        // A zero pool (defensive) degrades to single-threaded.
        assert_eq!(threads_for_pool(64, 1024, 4096, 16, 0), 1);
    }

    #[test]
    fn thread_override_parses_only_positive_integers() {
        assert_eq!(parse_thread_override("4"), Some(4));
        assert_eq!(parse_thread_override(" 2 "), Some(2));
        assert_eq!(parse_thread_override("0"), None);
        assert_eq!(parse_thread_override(""), None);
        assert_eq!(parse_thread_override("-1"), None);
        assert_eq!(parse_thread_override("two"), None);
        // The cached process-wide ceiling is always usable.
        assert!(pool_parallelism() >= 1);
    }

    #[test]
    fn matvec_t_matches_manual() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        let y = a.matvec_t(&[1.0, 2.0]);
        assert_eq!(y, vec![6.0, 9.0, 12.0]);
    }

    #[test]
    fn add_outer_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        a.add_outer(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(a.row(0), &[3.0, 4.0]);
        assert_eq!(a.row(1), &[6.0, 8.0]);
        a.add_outer(&[1.0, 0.0], &[1.0, 1.0]);
        assert_eq!(a.row(0), &[4.0, 5.0]);
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_handles_large_logits() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let logits = [0.5f32, -1.0, 2.0, 0.0];
        let p = softmax(&logits);
        let lp = log_softmax(&logits);
        for (a, b) in p.iter().zip(&lp) {
            assert!((a.ln() - b).abs() < 1e-5);
        }
    }

    #[test]
    fn entropy_of_uniform_is_log_n() {
        let p = vec![0.25f32; 4];
        assert!((entropy(&p) - (4.0f32).ln()).abs() < 1e-6);
        assert_eq!(entropy(&[1.0, 0.0]), 0.0);
    }

    #[test]
    fn silu_prime_matches_finite_difference() {
        for &x in &[-3.0f32, -1.0, -0.1, 0.0, 0.1, 1.0, 3.0] {
            let eps = 1e-3;
            let fd = (silu(x + eps) - silu(x - eps)) / (2.0 * eps);
            let an = silu_prime(x);
            assert!((fd - an).abs() < 1e-2, "x={x}: fd={fd} an={an}");
        }
    }
}
