//! Minimal dense `f32` linear algebra for the tiny language models.
//!
//! Row-major matrices with exactly the operations the MLP LM's forward
//! and hand-written backward passes need. No BLAS, no SIMD intrinsics —
//! the models are small enough that scalar loops in release mode suffice.

use serde::{Deserialize, Serialize};

/// A row-major dense matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A matrix filled from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat parameter slice (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The flat mutable parameter slice (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `y = A x` (length `rows`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0f32; self.rows];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0f32;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            y[r] = acc;
        }
        y
    }

    /// `y = Aᵀ x` (length `cols`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            let xv = x[r];
            if xv == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (yc, a) in y.iter_mut().zip(row) {
                *yc += xv * a;
            }
        }
        y
    }

    /// Rank-1 update `A += dy xᵀ` (gradient accumulation for `y = A x`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add_outer(&mut self, dy: &[f32], x: &[f32]) {
        assert_eq!(dy.len(), self.rows, "add_outer rows mismatch");
        assert_eq!(x.len(), self.cols, "add_outer cols mismatch");
        for r in 0..self.rows {
            let g = dy[r];
            if g == 0.0 {
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (a, xv) in row.iter_mut().zip(x) {
                *a += g * xv;
            }
        }
    }

    /// Sets every entry to zero (reused gradient buffers).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut out: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f32 = out.iter().sum();
    if sum > 0.0 {
        out.iter_mut().for_each(|v| *v /= sum);
    }
    out
}

/// Numerically stable log-softmax.
pub fn log_softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = logits.iter().map(|&l| (l - max).exp()).sum::<f32>().ln() + max;
    logits.iter().map(|&l| l - log_sum).collect()
}

/// Shannon entropy (nats) of a probability distribution.
pub fn entropy(probs: &[f32]) -> f32 {
    probs.iter().filter(|&&p| p > 0.0).map(|&p| -p * p.ln()).sum()
}

/// SiLU activation `x * sigmoid(x)`.
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Derivative of SiLU: `σ(x)·(1 + x·(1 − σ(x)))`.
pub fn silu_prime(x: f32) -> f32 {
    let s = 1.0 / (1.0 + (-x).exp());
    s * (1.0 + x * (1.0 - s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_matches_manual() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32); // [[0,1,2],[3,4,5]]
        let y = a.matvec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![8.0, 26.0]);
    }

    #[test]
    fn matvec_t_matches_manual() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        let y = a.matvec_t(&[1.0, 2.0]);
        assert_eq!(y, vec![6.0, 9.0, 12.0]);
    }

    #[test]
    fn add_outer_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        a.add_outer(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(a.row(0), &[3.0, 4.0]);
        assert_eq!(a.row(1), &[6.0, 8.0]);
        a.add_outer(&[1.0, 0.0], &[1.0, 1.0]);
        assert_eq!(a.row(0), &[4.0, 5.0]);
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_handles_large_logits() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let logits = [0.5f32, -1.0, 2.0, 0.0];
        let p = softmax(&logits);
        let lp = log_softmax(&logits);
        for (a, b) in p.iter().zip(&lp) {
            assert!((a.ln() - b).abs() < 1e-5);
        }
    }

    #[test]
    fn entropy_of_uniform_is_log_n() {
        let p = vec![0.25f32; 4];
        assert!((entropy(&p) - (4.0f32).ln()).abs() < 1e-6);
        assert_eq!(entropy(&[1.0, 0.0]), 0.0);
    }

    #[test]
    fn silu_prime_matches_finite_difference() {
        for &x in &[-3.0f32, -1.0, -0.1, 0.0, 0.1, 1.0, 3.0] {
            let eps = 1e-3;
            let fd = (silu(x + eps) - silu(x - eps)) / (2.0 * eps);
            let an = silu_prime(x);
            assert!((fd - an).abs() < 1e-2, "x={x}: fd={fd} an={an}");
        }
    }
}
