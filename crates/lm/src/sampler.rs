//! Token sampling strategies: greedy and temperature sampling with
//! optional top-k truncation (the paper evaluates greedy decoding and
//! sampling at temperatures 0.2–0.8, §IV-A3).

use crate::matrix::softmax;
use crate::mlp::TokenId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How the next token is chosen from a logit vector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Sampling {
    /// Always pick the arg-max token.
    Greedy,
    /// Softmax sampling at `temperature`, optionally truncated to the
    /// `top_k` most likely tokens (`0` disables truncation).
    Temperature {
        /// Softmax temperature (> 0).
        temperature: f32,
        /// Keep only this many candidates; `0` keeps all.
        top_k: usize,
    },
}

impl Sampling {
    /// Convenience constructor for plain temperature sampling.
    pub fn temperature(t: f32) -> Self {
        Sampling::Temperature {
            temperature: t,
            top_k: 0,
        }
    }
}

/// A seeded sampler. Deterministic given seed and call sequence.
#[derive(Debug, Clone)]
pub struct Sampler {
    rng: SmallRng,
}

impl Sampler {
    /// Creates a sampler with a fixed seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Picks a token from `logits` using `strategy`.
    ///
    /// # Panics
    ///
    /// Panics if `logits` is empty or the temperature is not positive.
    pub fn sample(&mut self, logits: &[f32], strategy: Sampling) -> TokenId {
        assert!(!logits.is_empty(), "cannot sample from empty logits");
        match strategy {
            Sampling::Greedy => argmax(logits),
            Sampling::Temperature { temperature, top_k } => {
                assert!(temperature > 0.0, "temperature must be positive");
                let scaled: Vec<f32> = logits.iter().map(|&l| l / temperature).collect();
                let mut probs = softmax(&scaled);
                if top_k > 0 && top_k < probs.len() {
                    let mut idx: Vec<usize> = (0..probs.len()).collect();
                    idx.sort_unstable_by(|&a, &b| {
                        probs[b].partial_cmp(&probs[a]).expect("finite probs")
                    });
                    for &i in &idx[top_k..] {
                        probs[i] = 0.0;
                    }
                    let sum: f32 = probs.iter().sum();
                    probs.iter_mut().for_each(|p| *p /= sum);
                }
                self.sample_from_probs(&probs)
            }
        }
    }

    /// Samples an index from an explicit probability vector.
    pub fn sample_from_probs(&mut self, probs: &[f32]) -> TokenId {
        let r: f32 = self.rng.gen();
        let mut acc = 0.0f32;
        for (i, &p) in probs.iter().enumerate() {
            acc += p;
            if r < acc {
                return i as TokenId;
            }
        }
        // Floating-point slack: fall back to the last nonzero entry.
        probs
            .iter()
            .rposition(|&p| p > 0.0)
            .map(|i| i as TokenId)
            .unwrap_or(0)
    }

    /// Uniformly random integer in `[0, n)` (corpus shuffling helper).
    pub fn gen_range(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }
}

/// Index of the maximum logit (first one on ties).
pub fn argmax(logits: &[f32]) -> TokenId {
    let mut best = 0usize;
    for (i, &l) in logits.iter().enumerate() {
        if l > logits[best] {
            best = i;
        }
    }
    best as TokenId
}

/// The indices of the `k` largest logits, in descending logit order.
pub fn top_k_indices(logits: &[f32], k: usize) -> Vec<TokenId> {
    let mut idx: Vec<usize> = (0..logits.len()).collect();
    idx.sort_unstable_by(|&a, &b| logits[b].partial_cmp(&logits[a]).expect("finite logits"));
    idx.truncate(k);
    idx.into_iter().map(|i| i as TokenId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_is_argmax() {
        let mut s = Sampler::new(0);
        assert_eq!(s.sample(&[0.1, 2.0, 0.5], Sampling::Greedy), 1);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 1.0, 0.0]), 0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let logits = vec![0.0f32, 1.0, 2.0, 0.5];
        let a: Vec<TokenId> = {
            let mut s = Sampler::new(42);
            (0..20)
                .map(|_| s.sample(&logits, Sampling::temperature(0.8)))
                .collect()
        };
        let b: Vec<TokenId> = {
            let mut s = Sampler::new(42);
            (0..20)
                .map(|_| s.sample(&logits, Sampling::temperature(0.8)))
                .collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn low_temperature_concentrates() {
        let logits = vec![0.0f32, 5.0, 0.0];
        let mut s = Sampler::new(7);
        let picks: Vec<TokenId> = (0..50)
            .map(|_| s.sample(&logits, Sampling::temperature(0.1)))
            .collect();
        assert!(picks.iter().all(|&t| t == 1));
    }

    #[test]
    fn high_temperature_spreads() {
        let logits = vec![0.0f32, 1.0, 0.0];
        let mut s = Sampler::new(7);
        let picks: Vec<TokenId> = (0..200)
            .map(|_| s.sample(&logits, Sampling::temperature(5.0)))
            .collect();
        let distinct: std::collections::HashSet<_> = picks.into_iter().collect();
        assert!(
            distinct.len() >= 2,
            "high temperature should sample multiple tokens"
        );
    }

    #[test]
    fn top_k_restricts_support() {
        let logits = vec![0.0f32, 10.0, 9.0, -5.0];
        let mut s = Sampler::new(3);
        for _ in 0..100 {
            let t = s.sample(
                &logits,
                Sampling::Temperature {
                    temperature: 2.0,
                    top_k: 2,
                },
            );
            assert!(t == 1 || t == 2, "got {t}");
        }
    }

    #[test]
    fn top_k_indices_ordered() {
        assert_eq!(top_k_indices(&[0.1, 5.0, 3.0, 4.0], 3), vec![1, 3, 2]);
        assert_eq!(top_k_indices(&[1.0], 5), vec![0]);
    }

    #[test]
    fn sample_from_probs_respects_zero_mass() {
        let mut s = Sampler::new(1);
        for _ in 0..50 {
            let t = s.sample_from_probs(&[0.0, 1.0, 0.0]);
            assert_eq!(t, 1);
        }
    }
}
