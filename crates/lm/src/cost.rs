//! Simulated GPU inference latency (DESIGN.md substitution #2).
//!
//! The paper measures tokens/second on A800 GPUs, where the cost of one
//! decoding step is dominated by a single forward pass of the base model;
//! the Medusa heads and tree-attention candidate verification add only a
//! marginal per-token overhead. This module reproduces that cost
//! structure deterministically so speedups *emerge* from the measured
//! number of decoding steps rather than from the wall-clock of our tiny
//! CPU models.
//!
//! Calibration: `t_forward` is set so the conventional NTP baseline lands
//! near the paper's Table-II NTP speeds (83.13 tok/s for the
//! CodeLlama-scale model, 91.65 tok/s for the CodeT5p-scale model).

use serde::{Deserialize, Serialize};

/// Deterministic per-step latency model for a GPU-resident LLM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuCostModel {
    /// Seconds for one forward pass of the base model (one decode step).
    pub t_forward: f64,
    /// Fractional extra cost per speculated candidate token evaluated in
    /// the same step (tree-attention overhead).
    pub alpha: f64,
    /// Fixed per-step scheduling overhead in seconds.
    pub overhead: f64,
}

impl GpuCostModel {
    /// Cost model for the CodeLlama-7b-scale ("Large") configuration.
    ///
    /// `1 / 0.012028 ≈ 83.1` tokens/s at one token per step, matching the
    /// paper's NTP baseline for CodeLlama.
    pub fn codellama_like() -> Self {
        Self {
            t_forward: 0.012_028,
            alpha: 0.012,
            overhead: 0.000_2,
        }
    }

    /// Cost model for the CodeT5p-220m-scale ("Small") configuration.
    ///
    /// `1 / 0.010_911 ≈ 91.7` tokens/s at one token per step, matching the
    /// paper's NTP baseline for CodeT5p. The relative overheads are larger
    /// than for the big model: a small model's forward pass is cheap, so
    /// speculation bookkeeping eats a bigger share (this is why the paper
    /// sees a smaller Medusa speedup on CodeT5p — 1.16× vs 3.55×).
    pub fn codet5p_like() -> Self {
        Self {
            t_forward: 0.010_911,
            alpha: 0.045,
            overhead: 0.000_4,
        }
    }

    /// Seconds consumed by one decoding step that additionally evaluates
    /// `candidate_tokens` speculated tokens.
    pub fn step_cost(&self, candidate_tokens: usize) -> f64 {
        self.overhead + self.t_forward * (1.0 + self.alpha * candidate_tokens as f64)
    }

    /// Tokens/second implied by a decode run of `tokens` tokens over
    /// `total_seconds` of simulated time.
    pub fn speed(tokens: usize, total_seconds: f64) -> f64 {
        if total_seconds <= 0.0 {
            0.0
        } else {
            tokens as f64 / total_seconds
        }
    }
}

/// Accumulates simulated time across a decode run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DecodeClock {
    /// Total simulated seconds.
    pub seconds: f64,
    /// Number of decoding steps taken.
    pub steps: usize,
    /// Number of tokens committed.
    pub tokens: usize,
}

impl DecodeClock {
    /// A fresh clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one decoding step that committed `accepted` tokens while
    /// evaluating `candidate_tokens` speculated tokens.
    pub fn record_step(&mut self, cost: &GpuCostModel, candidate_tokens: usize, accepted: usize) {
        self.seconds += cost.step_cost(candidate_tokens);
        self.steps += 1;
        self.tokens += accepted;
    }

    /// Simulated tokens/second so far.
    pub fn tokens_per_second(&self) -> f64 {
        GpuCostModel::speed(self.tokens, self.seconds)
    }

    /// Mean tokens committed per decoding step.
    pub fn tokens_per_step(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.tokens as f64 / self.steps as f64
        }
    }

    /// Merges another clock into this one (for averaging over prompts).
    pub fn merge(&mut self, other: &DecodeClock) {
        self.seconds += other.seconds;
        self.steps += other.steps;
        self.tokens += other.tokens;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ntp_calibration_matches_paper_baselines() {
        // One token per step, no speculation.
        let large = GpuCostModel::codellama_like();
        let speed = 1.0 / large.step_cost(0);
        assert!((speed - 83.13).abs() < 2.0, "large NTP speed {speed}");

        let small = GpuCostModel::codet5p_like();
        let speed = 1.0 / small.step_cost(0);
        assert!((speed - 91.65).abs() < 4.0, "small NTP speed {speed}");
    }

    #[test]
    fn speculation_overhead_grows_with_candidates() {
        let m = GpuCostModel::codellama_like();
        assert!(m.step_cost(10) > m.step_cost(0));
        assert!(m.step_cost(20) > m.step_cost(10));
    }

    #[test]
    fn accepting_more_tokens_per_step_raises_speed() {
        let m = GpuCostModel::codellama_like();
        let mut ntp = DecodeClock::new();
        for _ in 0..100 {
            ntp.record_step(&m, 0, 1);
        }
        let mut spec = DecodeClock::new();
        for _ in 0..25 {
            spec.record_step(&m, 12, 4); // 4 tokens/step with 12 candidates
        }
        assert_eq!(ntp.tokens, spec.tokens);
        assert!(spec.tokens_per_second() > 2.0 * ntp.tokens_per_second());
        assert_eq!(spec.tokens_per_step(), 4.0);
    }

    #[test]
    fn small_model_speculation_pays_more_overhead() {
        // The same candidate load costs relatively more on the small model.
        let large = GpuCostModel::codellama_like();
        let small = GpuCostModel::codet5p_like();
        let rel_large = large.step_cost(16) / large.step_cost(0);
        let rel_small = small.step_cost(16) / small.step_cost(0);
        assert!(rel_small > rel_large);
    }

    #[test]
    fn clock_merge_accumulates() {
        let m = GpuCostModel::codellama_like();
        let mut a = DecodeClock::new();
        a.record_step(&m, 0, 1);
        let mut b = DecodeClock::new();
        b.record_step(&m, 5, 3);
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.steps, 2);
        assert_eq!(merged.tokens, 4);
        assert!((merged.seconds - (a.seconds + b.seconds)).abs() < 1e-12);
    }

    #[test]
    fn speed_handles_zero_time() {
        assert_eq!(GpuCostModel::speed(10, 0.0), 0.0);
    }
}
