//! Interpolated back-off n-gram language model.
//!
//! Serves two roles in VeriSpec:
//!
//! * the **draft model** for classical (Leviathan-style) speculative
//!   decoding, where a cheap proposer generates tokens that the MLP LM
//!   verifies (paper §II-C background, reproduced as an ablation), and
//! * a fast deterministic stand-in LM for unit tests.
//!
//! Probabilities interpolate maximum-likelihood estimates of all orders
//! with Jelinek-Mercer smoothing:
//! `p(t|ctx) = Σ_k w_k · p_ML(t | last k tokens)`, backing off to a
//! uniform floor so every token has nonzero probability.

use crate::mlp::TokenId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Interpolated back-off n-gram model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NgramLm {
    order: usize,
    vocab: usize,
    /// `counts[k]` maps a length-`k` context to (next-token counts, total).
    counts: Vec<HashMap<Vec<TokenId>, ContextCounts>>,
    /// Interpolation weight per order (higher order first).
    lambda: f32,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct ContextCounts {
    next: HashMap<TokenId, u32>,
    total: u32,
}

impl NgramLm {
    /// Creates an untrained model of the given order (max context length).
    ///
    /// # Panics
    ///
    /// Panics if `order == 0` or `vocab < 2`.
    pub fn new(order: usize, vocab: usize) -> Self {
        assert!(order >= 1, "order must be at least 1");
        assert!(vocab >= 2, "vocab must be at least 2");
        Self {
            order,
            vocab,
            counts: (0..order).map(|_| HashMap::new()).collect(),
            lambda: 0.7,
        }
    }

    /// Sets the interpolation weight given to the longest matching order
    /// at each back-off level (default 0.7).
    pub fn with_lambda(mut self, lambda: f32) -> Self {
        assert!((0.0..1.0).contains(&lambda), "lambda must be in [0,1)");
        self.lambda = lambda;
        self
    }

    /// Maximum context length used.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab
    }

    /// Accumulates counts from one token sequence.
    pub fn train_sequence(&mut self, tokens: &[TokenId]) {
        for pos in 0..tokens.len().saturating_sub(1) {
            let next = tokens[pos + 1];
            for k in 0..self.order {
                if pos + 1 < k {
                    break;
                }
                let ctx: Vec<TokenId> = tokens[pos + 1 - k..=pos].to_vec();
                let e = self.counts[k].entry(ctx).or_default();
                *e.next.entry(next).or_insert(0) += 1;
                e.total += 1;
            }
        }
    }

    /// Trains on a corpus of sequences.
    pub fn train<'a>(&mut self, corpus: impl IntoIterator<Item = &'a [TokenId]>) {
        for seq in corpus {
            self.train_sequence(seq);
        }
    }

    /// Full next-token distribution for a prefix.
    pub fn distribution(&self, prefix: &[TokenId]) -> Vec<f32> {
        // Start from the uniform floor, then blend in each order from
        // shortest to longest with weight `lambda` for the longer order.
        let mut probs = vec![1.0f32 / self.vocab as f32; self.vocab];
        for k in 0..self.order {
            if prefix.len() < k {
                break;
            }
            let ctx = &prefix[prefix.len() - k..];
            let Some(cc) = self.counts[k].get(ctx) else {
                continue;
            };
            if cc.total == 0 {
                continue;
            }
            let lam = self.lambda;
            probs.iter_mut().for_each(|p| *p *= 1.0 - lam);
            for (&tok, &cnt) in &cc.next {
                probs[tok as usize] += lam * cnt as f32 / cc.total as f32;
            }
        }
        probs
    }

    /// Base-head logits for a prefix: elementwise log of
    /// [`NgramLm::distribution`] (softmax recovers the distribution).
    pub fn logits(&self, prefix: &[TokenId]) -> Vec<f32> {
        self.distribution(prefix)
            .into_iter()
            .map(|p| p.max(f32::MIN_POSITIVE).ln())
            .collect()
    }

    /// Probability of `token` following `prefix`.
    pub fn prob(&self, prefix: &[TokenId], token: TokenId) -> f32 {
        self.distribution(prefix)[token as usize]
    }

    /// Natural-log probability of `token` following `prefix`.
    pub fn log_prob(&self, prefix: &[TokenId], token: TokenId) -> f32 {
        self.prob(prefix, token).max(f32::MIN_POSITIVE).ln()
    }

    /// Average negative log-likelihood (nats/token) over a sequence.
    pub fn nll(&self, tokens: &[TokenId]) -> f32 {
        if tokens.len() < 2 {
            return 0.0;
        }
        let mut total = 0.0;
        for pos in 0..tokens.len() - 1 {
            total -= self.log_prob(&tokens[..=pos], tokens[pos + 1]);
        }
        total / (tokens.len() - 1) as f32
    }

    /// Number of distinct contexts stored at order `k`.
    pub fn context_count(&self, k: usize) -> usize {
        self.counts.get(k).map_or(0, HashMap::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cyclic(vocab: usize, len: usize) -> Vec<TokenId> {
        (0..len).map(|i| (i % (vocab - 1) + 1) as TokenId).collect()
    }

    #[test]
    fn distribution_sums_to_one() {
        let mut lm = NgramLm::new(3, 10);
        lm.train_sequence(&cyclic(10, 50));
        for prefix in [vec![], vec![1], vec![1, 2], vec![9, 9, 9]] {
            let d = lm.distribution(&prefix);
            let sum: f32 = d.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "prefix {prefix:?} sums to {sum}");
        }
    }

    #[test]
    fn learns_deterministic_cycle() {
        let mut lm = NgramLm::new(3, 6);
        lm.train_sequence(&cyclic(6, 100));
        // After [1,2] the cycle continues with 3.
        assert!(lm.prob(&[1, 2], 3) > 0.9);
        assert!(lm.prob(&[1, 2], 4) < 0.05);
    }

    #[test]
    fn unseen_context_backs_off_to_uniformish() {
        let mut lm = NgramLm::new(3, 8);
        lm.train_sequence(&cyclic(8, 60));
        let d = lm.distribution(&[7, 7]); // unseen bigram context
                                          // Unigram statistics still apply, but nothing should be zero.
        assert!(d.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn untrained_model_is_uniform() {
        let lm = NgramLm::new(2, 4);
        let d = lm.distribution(&[1]);
        for p in d {
            assert!((p - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn higher_order_beats_lower_on_structured_data() {
        let seq = cyclic(6, 200);
        let mut uni = NgramLm::new(1, 6);
        uni.train_sequence(&seq);
        let mut tri = NgramLm::new(3, 6);
        tri.train_sequence(&seq);
        assert!(tri.nll(&seq) < uni.nll(&seq));
    }

    #[test]
    fn context_counts_grow_with_order() {
        let mut lm = NgramLm::new(3, 6);
        lm.train_sequence(&cyclic(6, 100));
        assert_eq!(
            lm.context_count(0),
            1,
            "order 0 has the single empty context"
        );
        assert!(lm.context_count(1) >= 5);
        assert!(lm.context_count(2) >= 5);
    }

    #[test]
    fn nll_decreases_with_training_data() {
        let seq = cyclic(6, 30);
        let mut a = NgramLm::new(2, 6);
        a.train_sequence(&seq[..10]);
        let mut b = NgramLm::new(2, 6);
        b.train_sequence(&seq);
        assert!(b.nll(&seq) <= a.nll(&seq) + 1e-3);
    }

    #[test]
    #[should_panic(expected = "order must be at least 1")]
    fn zero_order_panics() {
        let _ = NgramLm::new(0, 4);
    }
}
