//! A tiny trainable neural language model with Medusa decoding heads.
//!
//! Architecture (the laptop-scale stand-in for CodeLlama/CodeT5p, see
//! DESIGN.md §2): a Bengio-style MLP over a fixed context window —
//! token embeddings are concatenated and passed through one SiLU trunk —
//! with a base LM head plus `n` *Medusa heads* attached to the last
//! hidden state, exactly the paper's §III-B architecture. Head `i`
//! predicts the token at offset `i + 1` from the current position.
//!
//! Each Medusa head follows the MEDUSA residual-block design:
//! `logits_i = U_i (h + silu(P_i h)) + c_i`, while the base head is the
//! plain LM head `logits_0 = U_0 h + c_0`.
//!
//! Training uses hand-derived backpropagation (verified against finite
//! differences in the tests) and the Adam optimizer with a separate
//! learning-rate multiplier for the heads (the paper trains heads at 4×
//! the base learning rate).

use crate::matrix::{log_softmax, silu, silu_prime, softmax, Matrix};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Token id type shared with the tokenizer crate.
pub type TokenId = u32;

/// Padding id used to left-fill short contexts (tokenizer's `[PAD]`).
pub const PAD_ID: TokenId = 0;

/// Configuration of an [`MlpLm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MlpLmConfig {
    /// Vocabulary size (logits dimension).
    pub vocab: usize,
    /// Embedding width per token.
    pub d_emb: usize,
    /// Hidden (trunk) width — the "last hidden state" heads attach to.
    pub d_hidden: usize,
    /// Context window length in tokens.
    pub context: usize,
    /// Number of Medusa heads in addition to the base head.
    pub n_heads: usize,
    /// RNG seed for parameter initialization.
    pub seed: u64,
}

impl MlpLmConfig {
    /// A deliberately tiny configuration for unit tests.
    pub fn tiny(vocab: usize) -> Self {
        Self {
            vocab,
            d_emb: 8,
            d_hidden: 16,
            context: 4,
            n_heads: 3,
            seed: 7,
        }
    }
}

/// One output head: the base LM head (`p == None`) or a Medusa head with
/// its residual block.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Head {
    /// Residual block weight (`d_hidden × d_hidden`), absent for base.
    p: Option<Matrix>,
    /// Output projection (`vocab × d_hidden`).
    u: Matrix,
    /// Output bias (`vocab`).
    c: Vec<f32>,
}

/// The MLP language model with Medusa heads.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlpLm {
    cfg: MlpLmConfig,
    /// Token embeddings (`vocab × d_emb`).
    emb: Matrix,
    /// Trunk weight (`d_hidden × context·d_emb`).
    w1: Matrix,
    /// Trunk bias (`d_hidden`).
    b1: Vec<f32>,
    /// Base head followed by the Medusa heads.
    heads: Vec<Head>,
}

/// Forward-pass intermediates for one position, reused by the backward
/// pass.
#[derive(Debug, Clone)]
pub struct Activations {
    /// Concatenated input embeddings.
    x: Vec<f32>,
    /// Trunk pre-activation.
    a: Vec<f32>,
    /// Trunk hidden state (`silu(a)`).
    h: Vec<f32>,
}

/// Per-head supervision for one position: `(head index, target token,
/// loss weight)`. Head index 0 is the base head. Positions a label grid
/// marks `[IGNORE]` are simply not listed.
pub type HeadTarget = (usize, TokenId, f32);

/// Loss breakdown returned by [`MlpLm::accumulate_position`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PositionLoss {
    /// Weighted base-head cross-entropy.
    pub base: f32,
    /// Weighted sum of head cross-entropies.
    pub heads: f32,
}

impl PositionLoss {
    /// Total weighted loss at this position.
    pub fn total(&self) -> f32 {
        self.base + self.heads
    }
}

impl MlpLm {
    /// Initializes a model with small random weights.
    pub fn new(cfg: MlpLmConfig) -> Self {
        assert!(cfg.vocab > 1 && cfg.d_emb > 0 && cfg.d_hidden > 0 && cfg.context > 0);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut init = |rows: usize, cols: usize| {
            let scale = (2.0 / (rows + cols) as f32).sqrt();
            Matrix::from_fn(rows, cols, |_, _| (rng.gen::<f32>() * 2.0 - 1.0) * scale)
        };
        let emb = init(cfg.vocab, cfg.d_emb);
        let w1 = init(cfg.d_hidden, cfg.context * cfg.d_emb);
        let mut heads = Vec::with_capacity(cfg.n_heads + 1);
        heads.push(Head {
            p: None,
            u: init(cfg.vocab, cfg.d_hidden),
            c: vec![0.0; cfg.vocab],
        });
        for _ in 0..cfg.n_heads {
            heads.push(Head {
                p: Some(init(cfg.d_hidden, cfg.d_hidden)),
                u: init(cfg.vocab, cfg.d_hidden),
                c: vec![0.0; cfg.vocab],
            });
        }
        Self {
            cfg,
            emb,
            w1,
            b1: vec![0.0; cfg.d_hidden],
            heads,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &MlpLmConfig {
        &self.cfg
    }

    /// Number of Medusa heads (excluding the base head).
    pub fn n_heads(&self) -> usize {
        self.cfg.n_heads
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        let mut n = self.emb.as_slice().len() + self.w1.as_slice().len() + self.b1.len();
        for h in &self.heads {
            n += h.p.as_ref().map_or(0, |p| p.as_slice().len());
            n += h.u.as_slice().len() + h.c.len();
        }
        n
    }

    /// Builds the fixed-size context window for a prefix: the last
    /// `context` tokens, left-padded with [`PAD_ID`].
    pub fn window(&self, prefix: &[TokenId]) -> Vec<TokenId> {
        let w = self.cfg.context;
        let mut win = vec![PAD_ID; w];
        let take = prefix.len().min(w);
        win[w - take..].copy_from_slice(&prefix[prefix.len() - take..]);
        win
    }

    /// Runs the trunk for a context window.
    ///
    /// # Panics
    ///
    /// Panics if `window.len() != context` or a token id is out of range.
    pub fn forward_trunk(&self, window: &[TokenId]) -> Activations {
        let x = self.embed_window(window);
        let mut a = self.w1.matvec(&x);
        for (av, bv) in a.iter_mut().zip(&self.b1) {
            *av += bv;
        }
        let h = a.iter().map(|&v| silu(v)).collect();
        Activations { x, a, h }
    }

    /// Embedding row of one token (sessions use this to update only the
    /// window tail that changed).
    ///
    /// # Panics
    ///
    /// Panics if `tok` is out of the vocabulary.
    pub fn embed_token(&self, tok: TokenId) -> &[f32] {
        self.emb.row(tok as usize)
    }

    /// Concatenated embeddings of a context window — the `x` the trunk
    /// consumes, and the state a [`crate::session::MlpSession`] caches
    /// and shifts incrementally.
    ///
    /// # Panics
    ///
    /// Panics if `window.len() != context` or a token id is out of range.
    pub fn embed_window(&self, window: &[TokenId]) -> Vec<f32> {
        assert_eq!(window.len(), self.cfg.context, "window length mismatch");
        let d = self.cfg.d_emb;
        let mut x = vec![0.0f32; self.cfg.context * d];
        for (j, &t) in window.iter().enumerate() {
            x[j * d..(j + 1) * d].copy_from_slice(self.emb.row(t as usize));
        }
        x
    }

    /// Trunk hidden state from a prebuilt embedding concat.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != context * d_emb`.
    pub fn trunk_hidden(&self, x: &[f32]) -> Vec<f32> {
        let mut a = self.w1.matvec(x);
        for (av, bv) in a.iter_mut().zip(&self.b1) {
            *av += bv;
        }
        a.iter().map(|&v| silu(v)).collect()
    }

    /// Batched trunk hidden states for many embedding concats in one
    /// fused pass (see [`crate::matrix::Matrix::matvec_batch`]); each
    /// result is bit-identical to the corresponding
    /// [`MlpLm::trunk_hidden`] call.
    pub fn trunk_hidden_batch(&self, xs: &[&[f32]]) -> Vec<Vec<f32>> {
        let mut pre = self.w1.matvec_batch(xs);
        for a in &mut pre {
            for (av, bv) in a.iter_mut().zip(&self.b1) {
                *av += bv;
            }
            a.iter_mut().for_each(|v| *v = silu(*v));
        }
        pre
    }

    /// Logits of one head from a trunk hidden state.
    ///
    /// # Panics
    ///
    /// Panics if `head_idx > n_heads`.
    pub fn head_logits_from_hidden(&self, h: &[f32], head_idx: usize) -> Vec<f32> {
        let head = &self.heads[head_idx];
        let z = self.head_z(head, h);
        let mut logits = head.u.matvec(&z);
        for (l, c) in logits.iter_mut().zip(&head.c) {
            *l += c;
        }
        logits
    }

    /// Batched logits of one head over many hidden states, with the
    /// output projection running one fused vectorized pass. Bit-identical
    /// to per-state [`MlpLm::head_logits_from_hidden`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `head_idx > n_heads`.
    pub fn head_logits_from_hidden_batch(&self, hs: &[&[f32]], head_idx: usize) -> Vec<Vec<f32>> {
        let head = &self.heads[head_idx];
        let mut logits = match &head.p {
            // Base head: z == h, project the hidden states directly.
            None => head.u.matvec_batch(hs),
            Some(_) => {
                let zs: Vec<Vec<f32>> = hs.iter().map(|h| self.head_z(head, h)).collect();
                let z_refs: Vec<&[f32]> = zs.iter().map(Vec::as_slice).collect();
                head.u.matvec_batch(&z_refs)
            }
        };
        for l in &mut logits {
            for (lv, c) in l.iter_mut().zip(&head.c) {
                *lv += c;
            }
        }
        logits
    }

    /// Logits of one head given trunk activations.
    ///
    /// # Panics
    ///
    /// Panics if `head_idx > n_heads`.
    pub fn head_logits(&self, acts: &Activations, head_idx: usize) -> Vec<f32> {
        self.head_logits_from_hidden(&acts.h, head_idx)
    }

    fn head_z(&self, head: &Head, h: &[f32]) -> Vec<f32> {
        match &head.p {
            None => h.to_vec(),
            Some(p) => {
                let u = p.matvec(h);
                h.iter().zip(&u).map(|(&hv, &uv)| hv + silu(uv)).collect()
            }
        }
    }

    /// Base-head logits for a prefix (convenience wrapper).
    pub fn logits(&self, prefix: &[TokenId]) -> Vec<f32> {
        let acts = self.forward_trunk(&self.window(prefix));
        self.head_logits(&acts, 0)
    }

    /// Logits of the base head and every Medusa head for a prefix.
    pub fn multi_logits(&self, prefix: &[TokenId]) -> Vec<Vec<f32>> {
        let acts = self.forward_trunk(&self.window(prefix));
        (0..=self.cfg.n_heads)
            .map(|i| self.head_logits(&acts, i))
            .collect()
    }

    /// Average base-head negative log-likelihood (nats/token) of `tokens`.
    pub fn nll(&self, tokens: &[TokenId]) -> f32 {
        if tokens.len() < 2 {
            return 0.0;
        }
        let mut total = 0.0f32;
        for pos in 0..tokens.len() - 1 {
            let logits = self.logits(&tokens[..=pos]);
            let lp = log_softmax(&logits);
            total -= lp[tokens[pos + 1] as usize];
        }
        total / (tokens.len() - 1) as f32
    }

    /// Accumulates gradients for one position into `grads`.
    ///
    /// `window` is the fixed-size context (see [`MlpLm::window`]);
    /// `targets` lists the supervised heads with their loss weights
    /// (the Eq.-2 `λ·γ^i` factors, with masked positions omitted).
    ///
    /// Returns the weighted loss breakdown.
    pub fn accumulate_position(
        &self,
        grads: &mut MlpGrads,
        window: &[TokenId],
        targets: &[HeadTarget],
    ) -> PositionLoss {
        let acts = self.forward_trunk(window);
        let dh = &mut vec![0.0f32; self.cfg.d_hidden];
        let mut loss = PositionLoss::default();

        for &(head_idx, target, weight) in targets {
            if weight == 0.0 {
                continue;
            }
            let head = &self.heads[head_idx];
            let ghead = &mut grads.heads[head_idx];
            let z = self.head_z(head, &acts.h);
            let mut logits = head.u.matvec(&z);
            for (l, c) in logits.iter_mut().zip(&head.c) {
                *l += c;
            }
            let lp = log_softmax(&logits);
            let l = -weight * lp[target as usize];
            if head_idx == 0 {
                loss.base += l;
            } else {
                loss.heads += l;
            }
            // dL/dlogits = weight * (softmax - onehot)
            let mut dlogits = softmax(&logits);
            dlogits[target as usize] -= 1.0;
            dlogits.iter_mut().for_each(|v| *v *= weight);

            ghead.u.add_outer(&dlogits, &z);
            for (gc, dl) in ghead.c.iter_mut().zip(&dlogits) {
                *gc += dl;
            }
            let dz = head.u.matvec_t(&dlogits);
            match (&head.p, &mut ghead.p) {
                (None, _) => {
                    for (d, v) in dh.iter_mut().zip(&dz) {
                        *d += v;
                    }
                }
                (Some(p), Some(gp)) => {
                    // z = h + silu(u), u = P h
                    let u = p.matvec(&acts.h);
                    let du: Vec<f32> = dz
                        .iter()
                        .zip(&u)
                        .map(|(&d, &uv)| d * silu_prime(uv))
                        .collect();
                    gp.add_outer(&du, &acts.h);
                    let dh_p = p.matvec_t(&du);
                    for ((d, r), v) in dh.iter_mut().zip(&dz).zip(&dh_p) {
                        *d += r + v;
                    }
                }
                (Some(_), None) => unreachable!("grads built from same config"),
            }
        }

        // Trunk backward.
        let da: Vec<f32> = dh
            .iter()
            .zip(&acts.a)
            .map(|(&d, &av)| d * silu_prime(av))
            .collect();
        grads.w1.add_outer(&da, &acts.x);
        for (g, d) in grads.b1.iter_mut().zip(&da) {
            *g += d;
        }
        let dx = self.w1.matvec_t(&da);
        let d = self.cfg.d_emb;
        for (j, &t) in window.iter().enumerate() {
            let gr = grads.emb.row_mut(t as usize);
            for (g, v) in gr.iter_mut().zip(&dx[j * d..(j + 1) * d]) {
                *g += v;
            }
        }
        grads.positions += 1;
        loss
    }

    /// Applies one Adam update from accumulated gradients, averaging over
    /// the positions recorded in `grads`.
    ///
    /// `lr` is the base learning rate; head parameters (Medusa heads only,
    /// not the base head) use `lr × head_lr_mult`, the paper's 4× rule.
    pub fn adam_step(&mut self, opt: &mut AdamOpt, grads: &MlpGrads, lr: f32, head_lr_mult: f32) {
        self.adam_step_rates(opt, grads, lr, lr * head_lr_mult);
    }

    /// Adam update with independent base and head learning rates.
    ///
    /// `base_lr = 0` freezes the backbone (embeddings, trunk, base head)
    /// while the Medusa heads train — MEDUSA-1's frozen-LLM regime, which
    /// guarantees lossless acceleration (paper §II-C).
    pub fn adam_step_rates(
        &mut self,
        opt: &mut AdamOpt,
        grads: &MlpGrads,
        base_lr: f32,
        head_lr: f32,
    ) {
        let scale = 1.0 / grads.positions.max(1) as f32;
        opt.t += 1;
        let t = opt.t;
        if base_lr != 0.0 {
            adam_update(
                self.emb.as_mut_slice(),
                grads.emb.as_slice(),
                &mut opt.emb,
                base_lr,
                scale,
                t,
            );
            adam_update(
                self.w1.as_mut_slice(),
                grads.w1.as_slice(),
                &mut opt.w1,
                base_lr,
                scale,
                t,
            );
            adam_update(&mut self.b1, &grads.b1, &mut opt.b1, base_lr, scale, t);
        }
        for ((head, ghead), ohead) in self.heads.iter_mut().zip(&grads.heads).zip(&mut opt.heads) {
            let lr = if head.p.is_some() { head_lr } else { base_lr };
            if lr == 0.0 {
                continue;
            }
            if let (Some(p), Some(gp), Some(op)) = (&mut head.p, &ghead.p, &mut ohead.p) {
                adam_update(p.as_mut_slice(), gp.as_slice(), op, lr, scale, t);
            }
            adam_update(
                head.u.as_mut_slice(),
                ghead.u.as_slice(),
                &mut ohead.u,
                lr,
                scale,
                t,
            );
            adam_update(&mut head.c, &ghead.c, &mut ohead.c, lr, scale, t);
        }
    }

    /// Creates a zeroed gradient buffer matching this model.
    pub fn zero_grads(&self) -> MlpGrads {
        MlpGrads {
            emb: Matrix::zeros(self.emb.rows(), self.emb.cols()),
            w1: Matrix::zeros(self.w1.rows(), self.w1.cols()),
            b1: vec![0.0; self.b1.len()],
            heads: self
                .heads
                .iter()
                .map(|h| HeadGrads {
                    p: h.p.as_ref().map(|p| Matrix::zeros(p.rows(), p.cols())),
                    u: Matrix::zeros(h.u.rows(), h.u.cols()),
                    c: vec![0.0; h.c.len()],
                })
                .collect(),
            positions: 0,
        }
    }

    /// Creates an Adam optimizer state matching this model.
    pub fn optimizer(&self) -> AdamOpt {
        AdamOpt {
            t: 0,
            emb: AdamBuf::new(self.emb.as_slice().len()),
            w1: AdamBuf::new(self.w1.as_slice().len()),
            b1: AdamBuf::new(self.b1.len()),
            heads: self
                .heads
                .iter()
                .map(|h| HeadOpt {
                    p: h.p.as_ref().map(|p| AdamBuf::new(p.as_slice().len())),
                    u: AdamBuf::new(h.u.as_slice().len()),
                    c: AdamBuf::new(h.c.len()),
                })
                .collect(),
        }
    }
}

/// Gradient accumulation buffers mirroring [`MlpLm`]'s parameters.
#[derive(Debug, Clone)]
pub struct MlpGrads {
    emb: Matrix,
    w1: Matrix,
    b1: Vec<f32>,
    heads: Vec<HeadGrads>,
    /// Number of positions accumulated since the last reset.
    pub positions: usize,
}

#[derive(Debug, Clone)]
struct HeadGrads {
    p: Option<Matrix>,
    u: Matrix,
    c: Vec<f32>,
}

impl MlpGrads {
    /// Clears the buffers for the next micro-batch.
    pub fn reset(&mut self) {
        self.emb.fill_zero();
        self.w1.fill_zero();
        self.b1.iter_mut().for_each(|v| *v = 0.0);
        for h in &mut self.heads {
            if let Some(p) = &mut h.p {
                p.fill_zero();
            }
            h.u.fill_zero();
            h.c.iter_mut().for_each(|v| *v = 0.0);
        }
        self.positions = 0;
    }
}

/// Adam moment buffers for one tensor.
#[derive(Debug, Clone)]
struct AdamBuf {
    m: Vec<f32>,
    v: Vec<f32>,
}

impl AdamBuf {
    fn new(n: usize) -> Self {
        Self {
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }
}

#[derive(Debug, Clone)]
struct HeadOpt {
    p: Option<AdamBuf>,
    u: AdamBuf,
    c: AdamBuf,
}

/// Adam optimizer state for an [`MlpLm`]; create via [`MlpLm::optimizer`].
#[derive(Debug, Clone)]
pub struct AdamOpt {
    t: u64,
    emb: AdamBuf,
    w1: AdamBuf,
    b1: AdamBuf,
    heads: Vec<HeadOpt>,
}

const ADAM_B1: f32 = 0.9;
const ADAM_B2: f32 = 0.999;
const ADAM_EPS: f32 = 1e-8;

fn adam_update(params: &mut [f32], grads: &[f32], buf: &mut AdamBuf, lr: f32, scale: f32, t: u64) {
    let bc1 = 1.0 - ADAM_B1.powi(t as i32);
    let bc2 = 1.0 - ADAM_B2.powi(t as i32);
    for i in 0..params.len() {
        let g = grads[i] * scale;
        buf.m[i] = ADAM_B1 * buf.m[i] + (1.0 - ADAM_B1) * g;
        buf.v[i] = ADAM_B2 * buf.v[i] + (1.0 - ADAM_B2) * g * g;
        let m_hat = buf.m[i] / bc1;
        let v_hat = buf.v[i] / bc2;
        params[i] -= lr * m_hat / (v_hat.sqrt() + ADAM_EPS);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MlpLm {
        MlpLm::new(MlpLmConfig::tiny(12))
    }

    #[test]
    fn window_pads_left() {
        let m = tiny();
        assert_eq!(m.window(&[]), vec![PAD_ID; 4]);
        assert_eq!(m.window(&[7]), vec![PAD_ID, PAD_ID, PAD_ID, 7]);
        assert_eq!(m.window(&[1, 2, 3, 4, 5]), vec![2, 3, 4, 5]);
    }

    #[test]
    fn logits_shapes() {
        let m = tiny();
        assert_eq!(m.logits(&[1, 2]).len(), 12);
        let all = m.multi_logits(&[1, 2]);
        assert_eq!(all.len(), 4); // base + 3 heads
        assert!(all.iter().all(|l| l.len() == 12));
    }

    #[test]
    fn deterministic_init() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.logits(&[3, 1]), b.logits(&[3, 1]));
    }

    /// Finite-difference gradient check on every parameter family.
    #[test]
    fn gradients_match_finite_differences() {
        let cfg = MlpLmConfig {
            vocab: 6,
            d_emb: 3,
            d_hidden: 4,
            context: 3,
            n_heads: 2,
            seed: 3,
        };
        let mut model = MlpLm::new(cfg);
        let window = vec![1u32, 2, 3];
        let targets: Vec<HeadTarget> = vec![(0, 4, 1.0), (1, 5, 0.5), (2, 1, 0.25)];

        let mut grads = model.zero_grads();
        model.accumulate_position(&mut grads, &window, &targets);

        let loss_at = |m: &MlpLm| {
            let mut g = m.zero_grads();
            m.accumulate_position(&mut g, &window, &targets).total()
        };

        let eps = 1e-3f32;
        // Check a sampling of coordinates in each tensor.
        #[allow(clippy::type_complexity)] // (name, accessor, analytic grads) triples
        let checks: Vec<(&str, Box<dyn Fn(&mut MlpLm) -> &mut [f32]>, Vec<f32>)> = vec![
            (
                "emb",
                Box::new(|m: &mut MlpLm| m.emb.as_mut_slice()),
                grads.emb.as_slice().to_vec(),
            ),
            (
                "w1",
                Box::new(|m: &mut MlpLm| m.w1.as_mut_slice()),
                grads.w1.as_slice().to_vec(),
            ),
            (
                "b1",
                Box::new(|m: &mut MlpLm| &mut m.b1[..]),
                grads.b1.clone(),
            ),
            (
                "head0.u",
                Box::new(|m: &mut MlpLm| m.heads[0].u.as_mut_slice()),
                grads.heads[0].u.as_slice().to_vec(),
            ),
            (
                "head1.p",
                Box::new(|m: &mut MlpLm| m.heads[1].p.as_mut().expect("p").as_mut_slice()),
                grads.heads[1].p.as_ref().expect("gp").as_slice().to_vec(),
            ),
            (
                "head2.u",
                Box::new(|m: &mut MlpLm| m.heads[2].u.as_mut_slice()),
                grads.heads[2].u.as_slice().to_vec(),
            ),
            (
                "head1.c",
                Box::new(|m: &mut MlpLm| &mut m.heads[1].c[..]),
                grads.heads[1].c.clone(),
            ),
        ];

        for (name, get, analytic) in checks {
            let n = analytic.len();
            let stride = (n / 7).max(1);
            for i in (0..n).step_by(stride) {
                let orig = get(&mut model)[i];
                get(&mut model)[i] = orig + eps;
                let lp = loss_at(&model);
                get(&mut model)[i] = orig - eps;
                let lm = loss_at(&model);
                get(&mut model)[i] = orig;
                let fd = (lp - lm) / (2.0 * eps);
                let an = analytic[i];
                assert!(
                    (fd - an).abs() < 2e-2 * (1.0 + fd.abs().max(an.abs())),
                    "{name}[{i}]: fd={fd} analytic={an}"
                );
            }
        }
    }

    #[test]
    fn training_reduces_loss_on_repetitive_sequence() {
        let cfg = MlpLmConfig {
            vocab: 8,
            d_emb: 6,
            d_hidden: 12,
            context: 3,
            n_heads: 2,
            seed: 1,
        };
        let mut model = MlpLm::new(cfg);
        let mut opt = model.optimizer();
        let mut grads = model.zero_grads();
        // Cyclic sequence 1,2,3,1,2,3,...
        let seq: Vec<TokenId> = (0..60).map(|i| 1 + (i % 3) as TokenId).collect();
        let initial_nll = model.nll(&seq);
        for _ in 0..60 {
            grads.reset();
            for pos in 0..seq.len() - 3 {
                let window = model.window(&seq[..=pos]);
                let targets: Vec<HeadTarget> = vec![
                    (0, seq[pos + 1], 1.0),
                    (1, seq[pos + 2], 0.16),
                    (2, seq[pos + 3], 0.128),
                ];
                model.accumulate_position(&mut grads, &window, &targets);
            }
            model.adam_step(&mut opt, &grads, 5e-3, 4.0);
        }
        let trained_nll = model.nll(&seq);
        assert!(
            trained_nll < initial_nll * 0.5,
            "loss should halve: {initial_nll} -> {trained_nll}"
        );
        // The model should now predict the cycle almost deterministically.
        let probs = softmax(&model.logits(&[1, 2, 3]));
        assert!(probs[1] > 0.8, "p(next=1)={}", probs[1]);
    }

    #[test]
    fn heads_learn_lookahead() {
        let cfg = MlpLmConfig {
            vocab: 8,
            d_emb: 6,
            d_hidden: 12,
            context: 3,
            n_heads: 2,
            seed: 2,
        };
        let mut model = MlpLm::new(cfg);
        let mut opt = model.optimizer();
        let mut grads = model.zero_grads();
        let seq: Vec<TokenId> = (0..80).map(|i| 1 + (i % 4) as TokenId).collect();
        for _ in 0..80 {
            grads.reset();
            for pos in 0..seq.len() - 3 {
                let window = model.window(&seq[..=pos]);
                let targets: Vec<HeadTarget> = vec![
                    (0, seq[pos + 1], 1.0),
                    (1, seq[pos + 2], 0.5),
                    (2, seq[pos + 3], 0.4),
                ];
                model.accumulate_position(&mut grads, &window, &targets);
            }
            model.adam_step(&mut opt, &grads, 5e-3, 4.0);
        }
        // After ...,1,2 head 1 should predict two-ahead (= 4), head 2 three-ahead (= 1).
        let all = model.multi_logits(&[1, 2]);
        let p1 = softmax(&all[1]);
        let p2 = softmax(&all[2]);
        assert!(p1[4] > 0.5, "head1 p(4)={}", p1[4]);
        assert!(p2[1] > 0.5, "head2 p(1)={}", p2[1]);
    }

    #[test]
    fn zero_weight_targets_are_skipped() {
        let model = tiny();
        let mut g1 = model.zero_grads();
        let mut g2 = model.zero_grads();
        let w = model.window(&[1, 2, 3]);
        let l1 = model.accumulate_position(&mut g1, &w, &[(0, 5, 1.0), (1, 6, 0.0)]);
        let l2 = model.accumulate_position(&mut g2, &w, &[(0, 5, 1.0)]);
        assert_eq!(l1, l2);
        assert_eq!(g1.heads[1].u.as_slice(), g2.heads[1].u.as_slice());
    }

    #[test]
    fn param_count_is_consistent() {
        let m = tiny();
        // emb 12*8 + w1 16*32 + b1 16 + base (12*16+12) + 3 heads (16*16 + 12*16 + 12)
        let expected = 12 * 8 + 16 * 32 + 16 + (12 * 16 + 12) + 3 * (16 * 16 + 12 * 16 + 12);
        assert_eq!(m.param_count(), expected);
    }

    #[test]
    fn nll_of_trivial_sequences() {
        let m = tiny();
        assert_eq!(m.nll(&[1]), 0.0);
        assert!(m.nll(&[1, 2, 3]) > 0.0);
    }
}
