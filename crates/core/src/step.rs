//! Step-granular decoding: the scheduler-facing decomposition of the
//! engines in [`crate::decode`] and [`crate::draft`].
//!
//! A [`Stepper`] owns one generation's sessions, sampler, and output,
//! and advances it **one decoding step at a time** through three
//! phases:
//!
//! 1. **propose** ([`Stepper::propose`]) — draw the base token and
//!    build the candidate paths (MEDUSA heads) or the draft block
//!    (draft-verify). Returns which [`Phase`] the step needs next.
//! 2. **verify** — score the pending candidate paths against the
//!    target model, either per-session ([`Stepper::verify_local`],
//!    what the serial engines do) or fused across many requests: a
//!    server extracts [`Stepper::verify_plan`]s from a batch of
//!    steppers and executes them in one [`verispec_lm::verify_many`]
//!    pass.
//! 3. **commit** ([`Stepper::commit`]) — run acceptance over the
//!    scores, apply the syntax-integrity truncation, advance the
//!    simulated clock, and extend the session with the committed span.
//!
//! The serial convenience [`Stepper::step`] chains the three phases,
//! and the public engines (`decode_ntp`, `decode_speculative`,
//! `decode_draft_speculative`) are thin loops over it — so the serial
//! path and a scheduler-driven path execute **the same code** and
//! produce bit-identical token streams (the sessions' batched kernels
//! guarantee bit-identical logits regardless of batch composition).
//!
//! Between steps a stepper is always at its *committed* context —
//! speculative appends have been rolled back — which is what makes
//! [`Stepper::park`]/[`Stepper::unpark`] (rollback-aware preemption)
//! safe: parking drops the sessions, and unparking rebuilds them by
//! replaying `prompt + generated tokens` into fresh sessions, an exact
//! reconstruction because sessions are pure functions of their token
//! context.
//!
//! **How much speculation each step buys** is decided by a
//! [`crate::policy::SpecPolicy`]: every propose asks the policy for
//! the step's [`crate::policy::SpecShape`] (tree widths/depth or draft
//! γ) given the generation's own [`crate::policy::AcceptHistory`],
//! which the stepper records at every commit and preserves across
//! park/unpark. The default static policy reproduces the configured
//! shape bit-identically; a serving engine may instead *pin* the shape
//! it budgeted for ([`Stepper::pin_shape`]) so per-tick capacity
//! accounting and the built candidate paths agree exactly.

use crate::decode::{
    build_candidate_paths, build_grammar_candidate_paths, constrain_base_token, DecodeConfig,
    DecodeOutput, StepTrace,
};
use crate::draft::{tempered, DraftConfig, DraftStats};
use crate::policy::{AcceptHistory, ShapeQuery, SpecPolicy, SpecShape, STATIC_POLICY};
use verispec_grammar::{syntax_keep_len, GrammarOracle, PruneRecord, ViabilityState};
use verispec_lm::matrix::softmax;
use verispec_lm::{
    argmax, DecodeClock, DecodeSession, GpuCostModel, LanguageModel, Sampler, Sampling, TokenId,
    VerifyPlan,
};
use verispec_tokenizer::special;

/// What a pending step needs next, as reported by [`Stepper::propose`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// The step has candidate paths that must be scored (with
    /// [`Stepper::verify_local`] or a fused [`Stepper::verify_plan`]
    /// execution) before [`Stepper::commit`].
    Verify {
        /// Whether the scoring must include the bonus row (the position
        /// after a fully accepted path).
        include_bonus: bool,
    },
    /// Nothing to verify this step; call [`Stepper::commit`] with empty
    /// scores.
    Commit,
    /// The generation has finished; the stepper will make no further
    /// progress.
    Done,
}

/// Engine-specific configuration and state.
enum EngineBody {
    /// Conventional next-token prediction.
    Ntp { cfg: DecodeConfig },
    /// MEDUSA-style self-speculation (chain, tree, or syntax-aligned,
    /// per the [`DecodeConfig`]).
    Spec { cfg: DecodeConfig, n_heads: usize },
    /// Classical draft-model speculation.
    Draft { cfg: DraftConfig, stats: DraftStats },
}

/// The in-flight state of one step between propose and commit.
enum Pending {
    /// NTP: the single base-logits row is pending.
    Ntp,
    /// Speculative: base token drawn, candidate paths built.
    Spec {
        step_start: usize,
        base_tok: TokenId,
        paths: Vec<Vec<TokenId>>,
        candidate_tokens: usize,
        verify_issued: bool,
    },
    /// Draft-verify: the draft block proposed, with per-position draft
    /// probabilities.
    Draft {
        step_start: usize,
        proposals: Vec<(TokenId, Vec<f32>)>,
    },
}

/// The grammar-constrained engine's per-generation oracle context: the
/// shared token-byte oracle plus this generation's incremental
/// viability state over `prompt + committed tokens`. The state is a
/// pure function of the committed byte stream, so it survives
/// park/unpark unchanged (sessions are rebuilt; the state is kept).
struct GrammarCtx<'m> {
    oracle: &'m GrammarOracle,
    state: ViabilityState,
}

/// One generation advanced step-by-step; see the module docs.
pub struct Stepper<'m> {
    target_model: &'m dyn LanguageModel,
    draft_model: Option<&'m dyn LanguageModel>,
    /// `None` only while parked.
    target: Option<Box<dyn DecodeSession + 'm>>,
    draft: Option<Box<dyn DecodeSession + 'm>>,
    prompt: Vec<TokenId>,
    sampler: Sampler,
    engine: EngineBody,
    out: DecodeOutput,
    pending: Option<Pending>,
    done: bool,
    /// Per-step speculation-shape decision procedure; the default
    /// [`crate::policy::StaticPolicy`] reproduces the configured shape
    /// bit-identically.
    policy: &'m dyn SpecPolicy,
    /// Shape pinned by a serving engine for the next propose (so the
    /// engine's per-tick budget accounting and the built paths agree).
    pinned: Option<SpecShape>,
    /// The configured shape, computed once at construction (`None` for
    /// NTP) — propose never rebuilds it on the hot path.
    base: Option<SpecShape>,
    /// The generation's own per-step acceptance history — the pure
    /// input adaptive policies decide from.
    history: AcceptHistory,
    /// The shape the most recent propose actually ran (policy-decided
    /// or pinned) — the per-step observability hook serving engines
    /// read when emitting trace events. `None` before the first
    /// propose, and always `None` for NTP steppers.
    last_shape: Option<SpecShape>,
    /// Grammar-constrained proposal context (`None` for every
    /// non-grammar engine): viability-filtered tree construction plus
    /// propose-time dead-tail pruning.
    grammar: Option<GrammarCtx<'m>>,
    /// The prune accounting of the most recent grammar propose —
    /// `None` before the first propose and for non-grammar steppers.
    last_prune: Option<PruneRecord>,
}

impl<'m> Stepper<'m> {
    fn new_output() -> DecodeOutput {
        DecodeOutput {
            tokens: Vec::new(),
            steps: 0,
            clock: DecodeClock::new(),
            trace: Vec::new(),
        }
    }

    fn build(
        target_model: &'m dyn LanguageModel,
        draft_model: Option<&'m dyn LanguageModel>,
        session: Option<Box<dyn DecodeSession + 'm>>,
        rest: &[TokenId],
        seed: u64,
        engine: EngineBody,
    ) -> Self {
        // The session's current context (a shared, already-ingested
        // prompt prefix when forked) plus `rest` forms the full prompt.
        let mut target = session.unwrap_or_else(|| target_model.session());
        let mut prompt = target.tokens().to_vec();
        prompt.extend_from_slice(rest);
        target.append(rest);
        let draft = draft_model.map(|d| {
            let mut s = d.session();
            s.append(&prompt);
            s
        });
        let base = match &engine {
            EngineBody::Ntp { .. } => None,
            EngineBody::Spec { cfg, n_heads } => Some(match &cfg.tree {
                None => SpecShape::Chain { depth: *n_heads },
                Some(widths) => SpecShape::Tree {
                    widths: widths.clone(),
                    depth: *n_heads,
                },
            }),
            EngineBody::Draft { cfg, .. } => Some(SpecShape::Draft { gamma: cfg.gamma }),
        };
        Stepper {
            target_model,
            draft_model,
            target: Some(target),
            draft,
            prompt,
            sampler: Sampler::new(seed),
            engine,
            out: Self::new_output(),
            pending: None,
            done: false,
            policy: &STATIC_POLICY,
            pinned: None,
            base,
            history: AcceptHistory::default(),
            last_shape: None,
            grammar: None,
            last_prune: None,
        }
    }

    /// Replaces the speculation policy (default:
    /// [`crate::policy::StaticPolicy`], the configured shape). The
    /// policy decides each step's candidate-tree widths/depth or draft
    /// block length from this generation's own acceptance history.
    pub fn with_policy(mut self, policy: &'m dyn SpecPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// A conventional next-token-prediction generation.
    pub fn ntp(model: &'m dyn LanguageModel, prompt: &[TokenId], cfg: DecodeConfig) -> Self {
        let seed = cfg.seed;
        Self::build(model, None, None, prompt, seed, EngineBody::Ntp { cfg })
    }

    /// Like [`Stepper::ntp`], continuing from an already-ingested
    /// session (prefix sharing): the session's current context is the
    /// shared prompt prefix and `rest` is appended to it.
    pub fn ntp_from_session(
        model: &'m dyn LanguageModel,
        session: Box<dyn DecodeSession + 'm>,
        rest: &[TokenId],
        cfg: DecodeConfig,
    ) -> Self {
        let seed = cfg.seed;
        Self::build(
            model,
            None,
            Some(session),
            rest,
            seed,
            EngineBody::Ntp { cfg },
        )
    }

    /// A MEDUSA-style speculative generation (chain, tree, or
    /// syntax-aligned, per the config).
    pub fn speculative(
        model: &'m dyn LanguageModel,
        prompt: &[TokenId],
        cfg: DecodeConfig,
    ) -> Self {
        let seed = cfg.seed;
        let body = EngineBody::Spec {
            cfg,
            n_heads: model.n_extra_heads(),
        };
        Self::build(model, None, None, prompt, seed, body)
    }

    /// Like [`Stepper::speculative`], continuing from an
    /// already-ingested session (prefix sharing).
    pub fn speculative_from_session(
        model: &'m dyn LanguageModel,
        session: Box<dyn DecodeSession + 'm>,
        rest: &[TokenId],
        cfg: DecodeConfig,
    ) -> Self {
        let seed = cfg.seed;
        let body = EngineBody::Spec {
            cfg,
            n_heads: model.n_extra_heads(),
        };
        Self::build(model, None, Some(session), rest, seed, body)
    }

    /// A grammar-constrained speculative generation: the syntax-aligned
    /// engine ([`Stepper::speculative`] with `cfg.syntax_aligned`,
    /// which this constructor forces on) plus an incremental
    /// [`GrammarOracle`] that filters candidate-tree construction to
    /// lexically-viable continuations and dead-tail prunes the built
    /// paths before verification (see
    /// [`crate::decode::decode_grammar_speculative`]).
    pub fn grammar_speculative(
        model: &'m dyn LanguageModel,
        oracle: &'m GrammarOracle,
        prompt: &[TokenId],
        cfg: DecodeConfig,
    ) -> Self {
        let cfg = DecodeConfig {
            syntax_aligned: true,
            ..cfg
        };
        let mut stepper = Self::speculative(model, prompt, cfg);
        stepper.attach_grammar(oracle);
        stepper
    }

    /// Like [`Stepper::grammar_speculative`], continuing from an
    /// already-ingested session (prefix sharing). The viability state
    /// is seeded from the **full** prompt — shared prefix plus `rest` —
    /// so forked sessions constrain against their complete context.
    pub fn grammar_speculative_from_session(
        model: &'m dyn LanguageModel,
        oracle: &'m GrammarOracle,
        session: Box<dyn DecodeSession + 'm>,
        rest: &[TokenId],
        cfg: DecodeConfig,
    ) -> Self {
        let cfg = DecodeConfig {
            syntax_aligned: true,
            ..cfg
        };
        let mut stepper = Self::speculative_from_session(model, session, rest, cfg);
        stepper.attach_grammar(oracle);
        stepper
    }

    fn attach_grammar(&mut self, oracle: &'m GrammarOracle) {
        // Death-recovering fold: prompts routinely wrap the Verilog
        // tail in instruction prose that no lexer survives; recovery
        // re-arms the machine at each non-Verilog boundary instead of
        // disabling the grammar layer for the whole request.
        let state = oracle.advance_recovering(ViabilityState::new(), &self.prompt);
        self.grammar = Some(GrammarCtx { oracle, state });
    }

    /// A classical draft-then-verify generation (draft model proposes a
    /// γ-token block, the target verifies all γ + 1 positions at once).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.gamma == 0`.
    pub fn draft_verify(
        target: &'m dyn LanguageModel,
        draft: &'m dyn LanguageModel,
        prompt: &[TokenId],
        cfg: DraftConfig,
    ) -> Self {
        Self::draft_verify_from_session(target, draft, target.session(), prompt, cfg)
    }

    /// Like [`Stepper::draft_verify`], continuing the **target** from an
    /// already-ingested session (the draft session is rebuilt fresh).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.gamma == 0`.
    pub fn draft_verify_from_session(
        target: &'m dyn LanguageModel,
        draft: &'m dyn LanguageModel,
        session: Box<dyn DecodeSession + 'm>,
        rest: &[TokenId],
        cfg: DraftConfig,
    ) -> Self {
        assert!(cfg.gamma >= 1, "gamma must be at least 1");
        let seed = cfg.seed;
        let body = EngineBody::Draft {
            cfg,
            stats: DraftStats::default(),
        };
        Self::build(target, Some(draft), Some(session), rest, seed, body)
    }

    /// Whether the generation has finished.
    pub fn done(&self) -> bool {
        self.done
    }

    /// The output accumulated so far.
    pub fn output(&self) -> &DecodeOutput {
        &self.out
    }

    /// Number of tokens generated so far (scheduler fairness input).
    pub fn generated(&self) -> usize {
        self.out.tokens.len()
    }

    /// Acceptance statistics, for draft-verify steppers.
    pub fn draft_stats(&self) -> Option<DraftStats> {
        match &self.engine {
            EngineBody::Draft { stats, .. } => Some(*stats),
            _ => None,
        }
    }

    /// This generation's per-step acceptance history (speculated vs.
    /// accepted candidate tokens) — the pure input speculation policies
    /// decide from. Survives preemption: `park`/`unpark` never touch it.
    pub fn history(&self) -> &AcceptHistory {
        &self.history
    }

    /// The request's *configured* speculation shape — what the policy
    /// adapts from. `None` for NTP steppers (nothing to speculate).
    pub fn base_shape(&self) -> Option<SpecShape> {
        self.base.clone()
    }

    /// The shape the most recent [`Stepper::propose`] actually ran
    /// (pinned or policy-decided), for observability: serving engines
    /// attach it to per-step trace events. `None` before the first
    /// propose and for NTP steppers.
    pub fn last_shape(&self) -> Option<&SpecShape> {
        self.last_shape.as_ref()
    }

    /// The grammar-prune accounting of the most recent
    /// [`Stepper::propose`] — candidate tokens considered, pruned as
    /// dead tails, and surviving to verification. `None` before the
    /// first propose and for non-grammar steppers; serving engines
    /// attach it to per-step trace events.
    pub fn last_prune(&self) -> Option<PruneRecord> {
        self.last_prune
    }

    /// Pins the shape of the **next** [`Stepper::propose`] (a serving
    /// engine pins the shape it budgeted for, so cost accounting and
    /// the built candidate paths agree). Without a pinned shape,
    /// propose asks this stepper's own policy — the serial path.
    pub fn pin_shape(&mut self, shape: SpecShape) {
        self.pinned = Some(shape);
    }

    /// The shape the next step will run: the pinned one if a serving
    /// engine set it, otherwise this stepper's policy decision over the
    /// current history.
    fn next_shape(&mut self) -> SpecShape {
        match self.pinned.take() {
            Some(shape) => shape,
            None => self.policy.shape(&ShapeQuery {
                base: self
                    .base
                    .as_ref()
                    .expect("only speculative engines take shapes"),
                history: &self.history,
                cap: None,
            }),
        }
    }

    /// Consumes the stepper, returning the final output.
    pub fn into_output(self) -> DecodeOutput {
        self.out
    }

    /// Whether the next [`Stepper::propose`] consumes the current
    /// position's multi-head logits — true for MEDUSA-style steppers,
    /// whose propose phase a server can fuse across requests by
    /// collecting [`Stepper::embed_plan`]s and running one
    /// [`verispec_lm::multi_logits_many`] pass.
    pub fn wants_multi_logits(&self) -> bool {
        match &self.engine {
            // Budget-exhausted steppers are excluded up front, so a
            // fused propose pass never computes logits that the next
            // `propose` would immediately discard as `Phase::Done`.
            EngineBody::Spec { cfg, .. } => !self.done && self.out.tokens.len() < cfg.max_tokens,
            _ => false,
        }
    }

    /// The target session's current-position model input for fused
    /// propose (see [`verispec_lm::DecodeSession::embed_plan`]).
    pub fn embed_plan(&mut self) -> Option<Vec<f32>> {
        self.target.as_mut().and_then(|s| s.embed_plan())
    }

    fn target_mut(&mut self) -> &mut dyn DecodeSession {
        self.target
            .as_mut()
            .expect("stepper is parked; unpark before stepping")
            .as_mut()
    }

    /// Phase 1: advance to the next step's verification point.
    ///
    /// `all_logits`, when given, must equal the target session's
    /// `multi_logits()` at the current position (a server computes it
    /// in a fused cross-request pass); `None` computes it locally.
    /// Engines that do not consume multi-head logits ignore it.
    ///
    /// # Panics
    ///
    /// Panics if a step is already pending (propose/commit must
    /// alternate) or the stepper is parked.
    pub fn propose(&mut self, all_logits: Option<Vec<Vec<f32>>>) -> Phase {
        assert!(self.pending.is_none(), "propose called with a step pending");
        if self.done {
            return Phase::Done;
        }
        match &self.engine {
            EngineBody::Ntp { cfg } => {
                if self.out.tokens.len() >= cfg.max_tokens {
                    self.done = true;
                    return Phase::Done;
                }
                self.pending = Some(Pending::Ntp);
                Phase::Verify {
                    include_bonus: true,
                }
            }
            EngineBody::Spec { cfg, n_heads } => {
                if self.out.tokens.len() >= cfg.max_tokens {
                    self.done = true;
                    return Phase::Done;
                }
                // Snapshot the Copy fields so the `self.engine`
                // borrow ends before the policy and session fields are
                // touched mutably.
                let n_heads = *n_heads;
                let (sampling, eos) = (cfg.sampling, cfg.eos);
                // This step's speculation shape: pinned by the serving
                // engine's budget pass, or this stepper's own policy
                // (the static default reproduces the configured shape
                // exactly).
                let shape = self.next_shape();
                self.last_shape = Some(shape.clone());
                let session = self
                    .target
                    .as_mut()
                    .expect("stepper is parked; unpark before stepping");
                let step_start = session.len();
                let all = all_logits.unwrap_or_else(|| session.multi_logits());
                // One RNG draw either way: the grammar engine
                // substitutes a non-viable draw deterministically from
                // the ranked base logits, so its sampled stream stays
                // seed-aligned with the unconstrained engine's.
                let mut base_tok = self.sampler.sample(&all[0], sampling);
                let paths = match &self.grammar {
                    Some(g) => {
                        base_tok = constrain_base_token(base_tok, &all[0], g.oracle, g.state, eos);
                        let after_base = g.oracle.advance(g.state, base_tok);
                        let (paths, record) = build_grammar_candidate_paths(
                            &all, n_heads, &shape, g.oracle, after_base, eos,
                        );
                        self.last_prune = Some(record);
                        paths
                    }
                    None => build_candidate_paths(&all, n_heads, &shape),
                };
                let candidate_tokens: usize = paths.iter().map(Vec::len).sum();
                let verify_issued = base_tok != eos && candidate_tokens > 0;
                if verify_issued {
                    session.append(&[base_tok]);
                }
                self.pending = Some(Pending::Spec {
                    step_start,
                    base_tok,
                    paths,
                    candidate_tokens,
                    verify_issued,
                });
                if verify_issued {
                    Phase::Verify {
                        include_bonus: false,
                    }
                } else {
                    Phase::Commit
                }
            }
            EngineBody::Draft { cfg, .. } => {
                if self.out.tokens.len() >= cfg.max_tokens {
                    self.done = true;
                    return Phase::Done;
                }
                let cfg = *cfg;
                // This step's draft block length: the policy's decision
                // (static default = the configured γ).
                let gamma = match self.next_shape() {
                    SpecShape::Draft { gamma } => gamma.max(1),
                    _ => cfg.gamma,
                };
                self.last_shape = Some(SpecShape::Draft { gamma });
                let draft = self
                    .draft
                    .as_mut()
                    .expect("draft stepper has a draft session")
                    .as_mut();
                let step_start = draft.len();
                // The draft proposes a block of gamma tokens with its
                // own probs, extending its session as it goes.
                let mut proposals: Vec<(TokenId, Vec<f32>)> = Vec::with_capacity(gamma);
                for _ in 0..gamma {
                    let mut q = softmax(&draft.logits());
                    tempered(&mut q, cfg.temperature);
                    let tok = self.sampler.sample_from_probs(&q);
                    proposals.push((tok, q));
                    draft.append(&[tok]);
                    if tok == cfg.eos {
                        break;
                    }
                }
                if let EngineBody::Draft { stats, .. } = &mut self.engine {
                    stats.proposed += proposals.len();
                }
                self.pending = Some(Pending::Draft {
                    step_start,
                    proposals,
                });
                Phase::Verify {
                    include_bonus: true,
                }
            }
        }
    }

    /// Phase 2 (fused): extracts the pending verification as a
    /// [`VerifyPlan`] for cross-request execution, or `None` when the
    /// target session is not fusable (fall back to
    /// [`Stepper::verify_local`]).
    ///
    /// # Panics
    ///
    /// Panics if no step is pending verification.
    pub fn verify_plan(&mut self) -> Option<VerifyPlan> {
        let session = self
            .target
            .as_mut()
            .expect("stepper is parked; unpark before stepping");
        match self.pending.as_ref().expect("a step is pending") {
            Pending::Ntp => session.verify_plan(&[&[]], true),
            Pending::Spec { paths, .. } => {
                let refs: Vec<&[TokenId]> = paths.iter().map(Vec::as_slice).collect();
                session.verify_plan(&refs, false)
            }
            Pending::Draft { proposals, .. } => {
                let path: Vec<TokenId> = proposals.iter().map(|(t, _)| *t).collect();
                session.verify_plan(&[&path], true)
            }
        }
    }

    /// Phase 2 (serial): scores the pending verification against this
    /// stepper's own target session — exactly what the serial engines
    /// do.
    ///
    /// # Panics
    ///
    /// Panics if no step is pending verification.
    pub fn verify_local(&mut self) -> Vec<Vec<Vec<f32>>> {
        let session = self
            .target
            .as_mut()
            .expect("stepper is parked; unpark before stepping");
        match self.pending.as_ref().expect("a step is pending") {
            // Fast path preserved from `decode_ntp`: the single row is
            // the session's (cached) current-position logits.
            Pending::Ntp => vec![vec![session.logits()]],
            Pending::Spec { paths, .. } => {
                let refs: Vec<&[TokenId]> = paths.iter().map(Vec::as_slice).collect();
                session.verify_batch(&refs, false)
            }
            Pending::Draft { proposals, .. } => {
                let path: Vec<TokenId> = proposals.iter().map(|(t, _)| *t).collect();
                session.verify_batch(&[&path], true)
            }
        }
    }

    /// Phase 3: accepts/commits the pending step from its verification
    /// scores (`scored` must come from [`Stepper::verify_local`] or a
    /// fused execution of [`Stepper::verify_plan`]; pass an empty vec
    /// when [`Stepper::propose`] returned [`Phase::Commit`]).
    ///
    /// # Panics
    ///
    /// Panics if no step is pending.
    pub fn commit(&mut self, scored: Vec<Vec<Vec<f32>>>, cost: &GpuCostModel) {
        let pending = self.pending.take().expect("a step is pending");
        match pending {
            Pending::Ntp => self.commit_ntp(&scored, cost),
            Pending::Spec {
                step_start,
                base_tok,
                paths,
                candidate_tokens,
                verify_issued,
            } => {
                self.commit_spec(
                    step_start,
                    base_tok,
                    &paths,
                    candidate_tokens,
                    verify_issued,
                    &scored,
                    cost,
                );
            }
            Pending::Draft {
                step_start,
                proposals,
            } => self.commit_draft(step_start, &proposals, &scored, cost),
        }
    }

    fn commit_ntp(&mut self, scored: &[Vec<Vec<f32>>], cost: &GpuCostModel) {
        let EngineBody::Ntp { cfg } = &self.engine else {
            unreachable!("pending/engine mismatch");
        };
        let (sampling, eos) = (cfg.sampling, cfg.eos);
        let tok = self.sampler.sample(&scored[0][0], sampling);
        self.out.clock.record_step(cost, 0, 1);
        self.out.steps += 1;
        self.target_mut().append(&[tok]);
        self.out.tokens.push(tok);
        self.out.trace.push(StepTrace {
            speculated: 0,
            accepted: 1,
            truncated: 0,
            committed: vec![tok],
            fragment_complete: tok == special::FRAG,
        });
        if tok == eos {
            self.done = true;
        }
    }

    #[allow(clippy::too_many_arguments)] // private phase glue, not API
    fn commit_spec(
        &mut self,
        step_start: usize,
        base_tok: TokenId,
        paths: &[Vec<TokenId>],
        candidate_tokens: usize,
        verify_issued: bool,
        scored: &[Vec<Vec<f32>>],
        cost: &GpuCostModel,
    ) {
        let EngineBody::Spec { cfg, .. } = &self.engine else {
            unreachable!("pending/engine mismatch");
        };
        // Everything acceptance needs from the config is Copy; snapshot
        // it so the hot loop never clones the config (or its tree Vec).
        let (sampling, acceptance, eos, syntax_aligned, max_tokens) = (
            cfg.sampling,
            cfg.acceptance,
            cfg.eos,
            cfg.syntax_aligned,
            cfg.max_tokens,
        );
        // Typical acceptance is evaluated on the *temperature-scaled*
        // base distribution so that speculative sampling matches the
        // baseline's sampling entropy.
        let to_probs = |logits: &[f32]| -> Vec<f32> {
            match sampling {
                Sampling::Temperature { temperature, .. } => {
                    let scaled: Vec<f32> = logits.iter().map(|&l| l / temperature).collect();
                    softmax(&scaled)
                }
                Sampling::Greedy => softmax(logits),
            }
        };

        let mut committed = vec![base_tok];
        if verify_issued {
            self.target_mut().truncate(step_start);
            let mut best: Vec<TokenId> = Vec::new();
            for (path, rows) in paths.iter().zip(scored) {
                let mut accepted = 0usize;
                for (pos, &tok) in path.iter().enumerate() {
                    let probs = to_probs(&rows[pos]);
                    let ok = match sampling {
                        Sampling::Greedy => tok == argmax(&probs),
                        Sampling::Temperature { .. } => acceptance.accepts(&probs, tok),
                    };
                    if !ok {
                        break;
                    }
                    accepted += 1;
                    if tok == eos {
                        break;
                    }
                }
                if accepted > best.len() {
                    best = path[..accepted].to_vec();
                }
                if best.last() == Some(&eos) {
                    break;
                }
            }
            committed.extend_from_slice(&best);
        }
        let accepted = committed.len();
        // Acceptance history: candidates offered vs. cashed (the base
        // token is always committed, so it is excluded from both).
        self.history.record(candidate_tokens, accepted - 1);

        // Syntax-integrity check (§III-B): the committed span must end
        // on a complete fragment.
        let mut truncated = 0usize;
        if syntax_aligned {
            let keep = syntax_keep_len(&committed, special::FRAG, eos);
            truncated = committed.len() - keep;
            committed.truncate(keep);
        }
        let fragment_complete = committed
            .last()
            .is_some_and(|&t| t == special::FRAG || t == eos);

        // Token-budget truncation (not counted as syntax truncation).
        let remaining = max_tokens - self.out.tokens.len();
        if committed.len() > remaining {
            committed.truncate(remaining);
        }

        self.out
            .clock
            .record_step(cost, candidate_tokens, committed.len());
        self.out.steps += 1;

        let hit_eos = committed.contains(&eos);
        // Advance the grammar viability state over the committed span
        // (death-recovering, matching the prompt seeding) — the state
        // stays a pure function of `prompt + out.tokens`, the invariant
        // park/unpark relies on.
        if let Some(g) = &mut self.grammar {
            g.state = g.oracle.advance_recovering(g.state, &committed);
        }
        self.target_mut().append(&committed);
        self.out.tokens.extend_from_slice(&committed);
        self.out.trace.push(StepTrace {
            speculated: candidate_tokens,
            accepted,
            truncated,
            committed,
            fragment_complete,
        });
        if hit_eos {
            self.done = true;
        }
    }

    fn commit_draft(
        &mut self,
        step_start: usize,
        proposals: &[(TokenId, Vec<f32>)],
        scored: &[Vec<Vec<f32>>],
        cost: &GpuCostModel,
    ) {
        let EngineBody::Draft { cfg, .. } = &self.engine else {
            unreachable!("pending/engine mismatch");
        };
        let cfg = *cfg;
        let target_probs: Vec<Vec<f32>> = scored[0]
            .iter()
            .map(|logits| {
                let mut p = softmax(logits);
                tempered(&mut p, cfg.temperature);
                p
            })
            .collect();

        // Exact rejection rule over the pre-scored distributions.
        let mut committed: Vec<TokenId> = Vec::new();
        let mut rejected = false;
        let mut accepted_now = 0usize;
        for (pos, (tok, q)) in proposals.iter().enumerate() {
            let p = &target_probs[pos];
            let (pt, qt) = (p[*tok as usize], q[*tok as usize].max(f32::MIN_POSITIVE));
            // Uniform draw on a fine grid (the Sampler API is index-based).
            let u: f32 = {
                let grid = 1_000_000usize;
                self.sampler.gen_range(grid) as f32 / grid as f32
            };
            if u < (pt / qt).min(1.0) {
                committed.push(*tok);
                accepted_now += 1;
                if *tok == cfg.eos {
                    break;
                }
            } else {
                // Resample from max(0, p - q), renormalized.
                let mut residual: Vec<f32> =
                    p.iter().zip(q).map(|(&a, &b)| (a - b).max(0.0)).collect();
                let sum: f32 = residual.iter().sum();
                if sum > 0.0 {
                    residual.iter_mut().for_each(|v| *v /= sum);
                } else {
                    residual = p.clone();
                }
                let tok = self.sampler.sample_from_probs(&residual);
                committed.push(tok);
                rejected = true;
                break;
            }
        }
        if let EngineBody::Draft { stats, .. } = &mut self.engine {
            stats.accepted += accepted_now;
        }
        self.history.record(proposals.len(), accepted_now);
        // Bonus token when everything was accepted: drawn from the
        // already-scored position after the full proposal block.
        if !rejected && committed.last() != Some(&cfg.eos) {
            let p = &target_probs[committed.len()];
            committed.push(self.sampler.sample_from_probs(p));
        }

        let remaining = cfg.max_tokens - self.out.tokens.len();
        committed.truncate(remaining);

        self.out
            .clock
            .record_step(cost, proposals.len(), committed.len());
        self.out.steps += 1;
        let hit_eos = committed.contains(&cfg.eos);
        // Roll both sessions back to the committed prefix and extend.
        let draft = self
            .draft
            .as_mut()
            .expect("draft stepper has a draft session");
        draft.truncate(step_start);
        draft.append(&committed);
        self.target_mut().append(&committed);
        self.out.tokens.extend_from_slice(&committed);
        self.out.trace.push(StepTrace {
            speculated: proposals.len(),
            accepted: committed.len(),
            truncated: 0,
            committed,
            fragment_complete: false,
        });
        if hit_eos {
            self.done = true;
        }
    }

    /// Runs one full step serially (propose → verify → commit).
    /// Returns `false` once the generation is done.
    pub fn step(&mut self, cost: &GpuCostModel) -> bool {
        match self.propose(None) {
            Phase::Done => false,
            Phase::Commit => {
                self.commit(Vec::new(), cost);
                !self.done
            }
            Phase::Verify { .. } => {
                let scored = self.verify_local();
                self.commit(scored, cost);
                !self.done
            }
        }
    }

    /// Whether the stepper's sessions are currently released.
    pub fn is_parked(&self) -> bool {
        self.target.is_none()
    }

    /// Releases the sessions (rollback-aware preemption): legal only
    /// between steps, when the sessions hold exactly the committed
    /// context. The sampler, output, and engine state are retained.
    ///
    /// # Panics
    ///
    /// Panics if a step is pending (propose without commit).
    pub fn park(&mut self) {
        assert!(
            self.pending.is_none(),
            "cannot park mid-step: commit or abandon the pending step first"
        );
        self.target = None;
        self.draft = None;
    }

    /// Rebuilds the sessions of a parked stepper by replaying the
    /// committed context (`prompt + generated tokens`) into fresh
    /// sessions — an exact reconstruction, since sessions are pure
    /// functions of their token context.
    pub fn unpark(&mut self) {
        if self.target.is_some() {
            return;
        }
        let mut target = self.target_model.session();
        target.append(&self.prompt);
        target.append(&self.out.tokens);
        self.target = Some(target);
        self.draft = self.draft_model.map(|d| {
            let mut s = d.session();
            s.append(&self.prompt);
            s.append(&self.out.tokens);
            s
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{decode_speculative, DecodeMethod};
    use crate::draft::decode_draft_speculative;
    use verispec_lm::{MlpLm, MlpLmConfig, NgramLm};

    fn tiny_model() -> MlpLm {
        MlpLm::new(MlpLmConfig {
            vocab: 14,
            d_emb: 6,
            d_hidden: 12,
            context: 4,
            n_heads: 3,
            seed: 21,
        })
    }

    fn cyclic_ngram() -> NgramLm {
        let mut lm = NgramLm::new(3, 14);
        let seq: Vec<TokenId> = (0..200).map(|i| 6 + (i % 3) as TokenId).collect();
        lm.train_sequence(&seq);
        lm
    }

    #[test]
    fn phase_driven_stepper_matches_serial_engines() {
        // Driving the stepper through explicit propose/verify/commit
        // phases must reproduce the public engines exactly.
        let model = tiny_model();
        let cost = GpuCostModel::codellama_like();
        for (syntax, tree) in [(false, None), (true, Some(vec![2, 2]))] {
            let cfg = DecodeConfig {
                max_tokens: 18,
                sampling: Sampling::temperature(0.8),
                seed: 5,
                syntax_aligned: syntax,
                tree,
                ..Default::default()
            };
            let serial = decode_speculative(&model, &[1, 2, 3], &cfg, &cost);
            let mut st = Stepper::speculative(&model, &[1, 2, 3], cfg.clone());
            loop {
                match st.propose(None) {
                    Phase::Done => break,
                    Phase::Commit => st.commit(Vec::new(), &cost),
                    Phase::Verify { .. } => {
                        let scored = st.verify_local();
                        st.commit(scored, &cost);
                    }
                }
            }
            let out = st.into_output();
            assert_eq!(out.tokens, serial.tokens);
            assert_eq!(out.steps, serial.steps);
            assert_eq!(out.trace, serial.trace);
        }
    }

    #[test]
    fn fused_verify_plan_path_matches_verify_local() {
        let model = tiny_model();
        let cost = GpuCostModel::codellama_like();
        let cfg = DecodeConfig {
            max_tokens: 16,
            tree: Some(vec![2, 2, 1]),
            ..Default::default()
        };
        let serial = decode_speculative(&model, &[2, 4], &cfg, &cost);
        let mut st = Stepper::speculative(&model, &[2, 4], cfg);
        loop {
            match st.propose(None) {
                Phase::Done => break,
                Phase::Commit => st.commit(Vec::new(), &cost),
                Phase::Verify { .. } => {
                    let plan = st.verify_plan().expect("mlp session is fusable");
                    let scored = verispec_lm::verify_many(&model, &[plan])
                        .pop()
                        .expect("one plan");
                    st.commit(scored, &cost);
                }
            }
        }
        assert_eq!(st.output().tokens, serial.tokens);
    }

    #[test]
    fn park_unpark_round_trip_is_lossless() {
        let model = tiny_model();
        let ng = cyclic_ngram();
        let cost = GpuCostModel::codet5p_like();
        let cfg = DecodeConfig {
            max_tokens: 20,
            sampling: Sampling::temperature(0.6),
            seed: 9,
            tree: Some(vec![2]),
            ..Default::default()
        };
        let serial = decode_speculative(&model, &[3, 1], &cfg, &cost);
        let mut st = Stepper::speculative(&model, &[3, 1], cfg);
        let mut steps = 0;
        while st.step(&cost) {
            steps += 1;
            if steps % 2 == 1 {
                st.park();
                assert!(st.is_parked());
                st.unpark();
            }
        }
        assert_eq!(st.output().tokens, serial.tokens, "park/unpark drifted");

        // Draft stepper parks both sessions.
        let dcfg = DraftConfig {
            gamma: 3,
            max_tokens: 15,
            seed: 4,
            ..Default::default()
        };
        let (dserial, dstats) = decode_draft_speculative(&ng, &ng, &[6, 7], &dcfg, &cost);
        let mut st = Stepper::draft_verify(&ng, &ng, &[6, 7], dcfg);
        let mut i = 0;
        while st.step(&cost) {
            i += 1;
            if i == 2 {
                st.park();
                st.unpark();
            }
        }
        assert_eq!(st.output().tokens, dserial.tokens);
        assert_eq!(st.draft_stats(), Some(dstats));
    }

    #[test]
    fn from_session_continues_a_shared_prefix_exactly() {
        let model = tiny_model();
        let cost = GpuCostModel::codellama_like();
        let prompt: Vec<TokenId> = vec![1, 2, 3, 4, 5];
        for method in [DecodeMethod::Ntp, DecodeMethod::Ours] {
            let cfg = DecodeConfig {
                max_tokens: 12,
                ..Default::default()
            };
            let serial = method.decode(&model, &prompt, &cfg, &cost);
            // Ingest the first three tokens once, fork, append the rest.
            let mut prefix = model.session();
            prefix.append(&prompt[..3]);
            let forked = prefix.fork().expect("mlp fork");
            let cfg_run = DecodeConfig {
                syntax_aligned: method == DecodeMethod::Ours,
                ..cfg
            };
            let mut st = match method {
                DecodeMethod::Ntp => {
                    Stepper::ntp_from_session(&model, forked, &prompt[3..], cfg_run)
                }
                _ => Stepper::speculative_from_session(&model, forked, &prompt[3..], cfg_run),
            };
            while st.step(&cost) {}
            assert_eq!(st.output().tokens, serial.tokens, "{:?}", method);
        }
    }
}
