//! The speculation-policy layer: *how much speculation to buy*, per
//! request, per step.
//!
//! # Why a policy layer
//!
//! The paper tunes one fixed MEDUSA tree shape for a single stream.
//! Under batch pressure that stops being the right question: the
//! serving engine's scarce resource is the **per-tick candidate
//! budget** (how many verify positions the fused pass can afford), and
//! "Speculative Decoding: Performance or Illusion?" shows that fixed
//! speculation can *hurt* goodput once requests compete. The two
//! ROADMAP items this layer closes — dynamic speculation length and
//! SLO-aware scheduling — are both instances of one missing
//! abstraction: a per-step decision procedure between the request's
//! *configured* speculation shape and the shape it actually runs.
//!
//! # The stack
//!
//! ```text
//!   DecodeConfig.tree / DraftConfig.gamma        (the configured shape)
//!        │ base_shape()
//!        ▼
//!   SpecPolicy::shape(ShapeQuery{base, history, cap})
//!        │                │             │
//!        │                │             └ per-request slice of the
//!        │                │               engine's per-tick candidate
//!        │                │               budget (serving only)
//!        │                └ AcceptHistory: the request's own past
//!        │                  (speculated, accepted) per step
//!        ▼
//!   SpecShape ──► Stepper::propose builds exactly this many
//!                 candidate paths / this draft block
//! ```
//!
//! * [`StaticPolicy`] — always the configured shape. This is today's
//!   behavior, bit-identically: every existing engine and test runs
//!   under it by default.
//! * [`AdaptivePolicy`] — the shape is a **pure function of the
//!   request's own acceptance history** ("offer the recently realized
//!   run length plus one level"). Because the history is request-local
//!   and deterministic, the serial and served paths make identical
//!   decisions and stay token-identical — adaptation never depends on
//!   batch composition.
//! * [`BudgetedPolicy`] — the serving policy: the engine divides a
//!   per-tick global candidate budget across the batch and each
//!   request's shape is shrunk to its slice ([`SpecShape::shrink_to`]),
//!   so more requests fit into one tick instead of a few wide trees
//!   monopolizing the verify pass.
//!
//! Policies must be deterministic and free of interior mutability:
//! a decision may depend only on its [`ShapeQuery`] inputs. That is
//! what makes replayed traces, preemption (`park`/`unpark` keeps the
//! history), and the served-equals-serial property hold.
//!
//! Routing is the sibling per-request decision this layer deliberately
//! does *not* own: *where* a request runs is `verispec-serve`'s
//! `RoutePolicy` — including the cache-aware prefix-affine route,
//! which probes each worker's prefix cache for the deepest stem match
//! so repeat prompts land where their session snapshots already live.
//! The speculation policy prices the work *after* placement, from
//! request-local state only, so the two layers compose without either
//! reading the other's.

use crate::decode::MAX_CANDIDATE_PATHS;
use serde::{Deserialize, Serialize};

/// The speculation bought for one step of one request.
///
/// Shapes are interpreted against the model's `n_heads` extra MEDUSA
/// heads: `depth` levels are explored (level `i` proposes from head
/// `i`), and a tree's missing width entries default to 1 — exactly the
/// semantics [`crate::decode::DecodeConfig::tree`] always had, so the
/// static mapping is the identity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpecShape {
    /// Top-1 chain over the first `depth` heads (`depth == n_heads`
    /// reproduces `tree: None`).
    Chain {
        /// Number of heads proposing one token each.
        depth: usize,
    },
    /// Candidate tree over the first `depth` heads: level `i` draws
    /// from head `i`'s top-`widths[i-1]` (missing entries = width 1;
    /// `depth == n_heads` reproduces `tree: Some(widths)`).
    Tree {
        /// Per-level top-k widths.
        widths: Vec<usize>,
        /// Number of head levels explored.
        depth: usize,
    },
    /// Draft-model block of `gamma` proposed tokens.
    Draft {
        /// Draft block length (≥ 1).
        gamma: usize,
    },
}

impl SpecShape {
    /// Candidate tokens this shape proposes per step, mirroring
    /// [`crate::decode`]'s path construction (including the
    /// `MAX_CANDIDATE_PATHS` cap of 32), so a serving engine can budget a
    /// tick *before* any logits exist.
    ///
    /// The mirror is exact for shapes whose `depth`/`gamma` does not
    /// exceed the model's head count — true of every shape derived
    /// from a stepper's base shape (the base is built at `n_heads`,
    /// and the bundled policies only ever shrink it). A
    /// hand-constructed deeper shape is clamped to `n_heads` by the
    /// path builder, so its cost here over-estimates.
    pub fn candidate_tokens(&self) -> usize {
        match self {
            SpecShape::Chain { depth } => *depth,
            SpecShape::Tree { widths, depth } => {
                let mut n_paths = 1usize;
                for level in 0..*depth {
                    let k = widths.get(level).copied().unwrap_or(1).max(1);
                    n_paths = (n_paths * k).min(MAX_CANDIDATE_PATHS);
                }
                // Zero levels leave the single empty path, which
                // proposes nothing.
                if *depth == 0 {
                    0
                } else {
                    n_paths * *depth
                }
            }
            SpecShape::Draft { gamma } => *gamma,
        }
    }

    /// Verify positions one step of this shape costs the engine: the
    /// base/bonus row plus every candidate token. This is the unit the
    /// per-tick candidate budget is denominated in (an NTP step costs
    /// exactly 1).
    pub fn step_cost(&self) -> usize {
        1 + self.candidate_tokens()
    }

    /// The largest shape no costlier than `max_cost`, shrunk
    /// deterministically: depth is reduced first (down to one level),
    /// then tree widths (deepest level first), then to zero levels —
    /// so a shape can always fit any budget ≥ 1.
    pub fn shrink_to(&self, max_cost: usize) -> SpecShape {
        let mut shape = self.clone();
        loop {
            if shape.step_cost() <= max_cost.max(1) {
                return shape;
            }
            match &mut shape {
                SpecShape::Chain { depth } => *depth -= 1,
                SpecShape::Tree { widths, depth } => {
                    // Only widths of still-explored levels can change
                    // the cost.
                    let explored = (*depth).min(widths.len());
                    if *depth > 1 {
                        *depth -= 1;
                    } else if let Some(w) = widths[..explored].iter_mut().rev().find(|w| **w > 1) {
                        *w -= 1;
                    } else {
                        *depth = 0;
                    }
                }
                SpecShape::Draft { gamma } => {
                    if *gamma > 1 {
                        *gamma -= 1;
                    } else {
                        // A draft block cannot shrink below one token;
                        // cost 2 is its floor.
                        return shape;
                    }
                }
            }
        }
    }
}

/// How many recent steps [`AcceptHistory`] retains.
const HISTORY_WINDOW: usize = 32;

/// One request's per-step acceptance history — the only state an
/// adaptive policy may read.
///
/// Recorded by the [`crate::step::Stepper`] at every commit:
/// `speculated` candidate tokens offered, `accepted` of them cashed
/// (excluding the base token, which is always committed). The history
/// survives preemption (`park`/`unpark` does not touch it), so
/// adaptation is a pure function of the request's own trajectory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AcceptHistory {
    steps: usize,
    speculated: usize,
    accepted: usize,
    /// Ring of the last [`HISTORY_WINDOW`] steps' `(speculated,
    /// accepted)` pairs, oldest first.
    recent: std::collections::VecDeque<(u32, u32)>,
}

impl AcceptHistory {
    /// Records one committed step.
    pub fn record(&mut self, speculated: usize, accepted: usize) {
        debug_assert!(accepted <= speculated);
        self.steps += 1;
        self.speculated += speculated;
        self.accepted += accepted;
        if self.recent.len() == HISTORY_WINDOW {
            self.recent.pop_front();
        }
        self.recent.push_back((speculated as u32, accepted as u32));
    }

    /// Steps recorded over the generation's lifetime.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Candidate tokens speculated over the lifetime.
    pub fn speculated(&self) -> usize {
        self.speculated
    }

    /// Speculated tokens accepted over the lifetime.
    pub fn accepted(&self) -> usize {
        self.accepted
    }

    /// Lifetime acceptance rate (`accepted / speculated`), `None`
    /// before anything was speculated.
    pub fn acceptance_rate(&self) -> Option<f64> {
        (self.speculated > 0).then(|| self.accepted as f64 / self.speculated as f64)
    }

    /// Mean accepted speculated tokens per *speculating* step over the
    /// last `window` steps (steps that offered no candidates are
    /// skipped); `None` while nothing in the window speculated.
    pub fn recent_mean_accepted(&self, window: usize) -> Option<f64> {
        let tail = self.recent.iter().rev().take(window);
        let (mut steps, mut accepted) = (0u32, 0u64);
        for &(spec, acc) in tail {
            if spec > 0 {
                steps += 1;
                accepted += u64::from(acc);
            }
        }
        (steps > 0).then(|| accepted as f64 / f64::from(steps))
    }
}

/// Everything a policy may look at when shaping one request's next
/// step.
#[derive(Debug, Clone, Copy)]
pub struct ShapeQuery<'a> {
    /// The request's configured shape (from its decode/draft config).
    pub base: &'a SpecShape,
    /// The request's own acceptance history.
    pub history: &'a AcceptHistory,
    /// This request's slice of the engine's per-tick candidate budget,
    /// in [`SpecShape::step_cost`] units (`None` when serving without
    /// a budget, and always `None` on the serial path). Policies that
    /// must stay serial/served-identical ignore it; [`BudgetedPolicy`]
    /// shrinks into it.
    pub cap: Option<usize>,
}

/// A per-request, per-step speculation-shape decision procedure.
///
/// Implementations must be deterministic pure functions of the
/// [`ShapeQuery`] — no interior mutability, no global state — so that
/// decisions replay identically across serial runs, served runs,
/// preemption, and recorded traces.
pub trait SpecPolicy: Sync {
    /// Policy name for telemetry and bench tables.
    fn name(&self) -> &'static str;

    /// The shape the request's next step should run.
    fn shape(&self, query: &ShapeQuery<'_>) -> SpecShape;

    /// A per-tick global candidate budget (in [`SpecShape::step_cost`]
    /// units) the serving engine should divide across each tick's
    /// batch; `None` leaves the engine's configured capacity in charge.
    fn tick_budget(&self) -> Option<usize> {
        None
    }
}

/// Today's behavior: always the configured shape, regardless of
/// history or budget. Bit-identical to the pre-policy engines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaticPolicy;

/// The shared static-policy instance every stepper starts under.
pub static STATIC_POLICY: StaticPolicy = StaticPolicy;

impl SpecPolicy for StaticPolicy {
    fn name(&self) -> &'static str {
        "static"
    }

    fn shape(&self, query: &ShapeQuery<'_>) -> SpecShape {
        query.base.clone()
    }
}

/// Dynamic speculation length: offer the recently *realized* run
/// length plus one level, never more than configured.
///
/// The decision is `depth = clamp(⌊mean accepted over the last
/// `window` speculating steps⌋ + 1, 1, configured depth)` (for draft
/// blocks, the same formula on γ): a request whose speculation keeps
/// cashing out keeps its full tree, one whose candidates keep being
/// rejected stops paying for depth it never realizes. Until the first
/// `window` has any speculating step, the configured shape runs
/// (optimistic warm-up).
///
/// The decision reads only the request's own [`AcceptHistory`] — not
/// the cap, not the batch — so serial and served runs stay
/// token-identical under adaptation (`proptest_policy.rs` pins it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptivePolicy {
    /// Recent steps the realized-run estimate averages over. The
    /// history retains at most 32 steps, so values beyond that behave
    /// as 32.
    pub window: usize,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy { window: 8 }
    }
}

impl AdaptivePolicy {
    fn adapted_depth(&self, configured: usize, history: &AcceptHistory) -> usize {
        match history.recent_mean_accepted(self.window) {
            None => configured,
            Some(mean) => (mean.floor() as usize + 1).clamp(1, configured.max(1)),
        }
    }
}

impl SpecPolicy for AdaptivePolicy {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn shape(&self, query: &ShapeQuery<'_>) -> SpecShape {
        match query.base {
            SpecShape::Chain { depth } => SpecShape::Chain {
                depth: self.adapted_depth(*depth, query.history),
            },
            SpecShape::Tree { widths, depth } => SpecShape::Tree {
                widths: widths.clone(),
                depth: self.adapted_depth(*depth, query.history),
            },
            SpecShape::Draft { gamma } => SpecShape::Draft {
                gamma: self.adapted_depth(*gamma, query.history),
            },
        }
    }
}

/// The serving policy: a per-tick global candidate budget, divided
/// across the batch by the engine, with each request's shape shrunk
/// into its slice.
///
/// Where [`StaticPolicy`] under a capacity-gated engine *defers*
/// requests whose full shape does not fit the remaining budget (a few
/// wide trees monopolize the tick), `BudgetedPolicy` shrinks the shape
/// to whatever budget is left ([`SpecShape::shrink_to`]), so the tick
/// packs as many requests as the budget allows. Because the realized
/// shape depends on batch composition, served outputs under sampling
/// may differ from the serial single-stream run — this is explicitly a
/// *serving* policy, traded for tail latency under overload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetedPolicy {
    /// Total verify positions ([`SpecShape::step_cost`] units) the
    /// engine may spend per tick.
    pub per_tick: usize,
}

impl SpecPolicy for BudgetedPolicy {
    fn name(&self) -> &'static str {
        "budgeted"
    }

    fn shape(&self, query: &ShapeQuery<'_>) -> SpecShape {
        match query.cap {
            Some(cap) => query.base.shrink_to(cap),
            None => query.base.clone(),
        }
    }

    fn tick_budget(&self) -> Option<usize> {
        Some(self.per_tick.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::build_candidate_paths;

    fn hist(entries: &[(usize, usize)]) -> AcceptHistory {
        let mut h = AcceptHistory::default();
        for &(s, a) in entries {
            h.record(s, a);
        }
        h
    }

    #[test]
    fn candidate_tokens_mirror_path_construction_exactly() {
        // For every shape, the pre-logits cost must equal the number of
        // candidate tokens the real builder produces.
        let n_heads = 6;
        let logits: Vec<Vec<f32>> = (0..=n_heads)
            .map(|i| (0..8).map(|j| ((i * 13 + j * 7) % 11) as f32).collect())
            .collect();
        let shapes = [
            SpecShape::Chain { depth: 6 },
            SpecShape::Chain { depth: 2 },
            SpecShape::Chain { depth: 0 },
            SpecShape::Tree {
                widths: vec![2, 2, 1],
                depth: 6,
            },
            SpecShape::Tree {
                widths: vec![3, 2],
                depth: 3,
            },
            SpecShape::Tree {
                widths: vec![4, 4, 4],
                depth: 3,
            }, // hits MAX_CANDIDATE_PATHS
            SpecShape::Tree {
                widths: vec![],
                depth: 0,
            },
        ];
        for shape in &shapes {
            let paths = build_candidate_paths(&logits, n_heads, shape);
            let built: usize = paths.iter().map(Vec::len).sum();
            assert_eq!(
                shape.candidate_tokens(),
                built,
                "cost mirror diverged for {shape:?}"
            );
        }
        assert_eq!(SpecShape::Draft { gamma: 4 }.candidate_tokens(), 4);
    }

    #[test]
    fn static_policy_is_the_identity() {
        let base = SpecShape::Tree {
            widths: vec![2, 2, 1],
            depth: 5,
        };
        let h = hist(&[(10, 0), (10, 0)]);
        let shape = StaticPolicy.shape(&ShapeQuery {
            base: &base,
            history: &h,
            cap: Some(1),
        });
        assert_eq!(shape, base, "static must ignore history and cap");
    }

    #[test]
    fn adaptive_tracks_realized_run_length() {
        let base = SpecShape::Tree {
            widths: vec![2, 2],
            depth: 4,
        };
        let p = AdaptivePolicy::default();
        // Warm-up: no speculation yet → configured shape.
        let h = AcceptHistory::default();
        assert_eq!(
            p.shape(&ShapeQuery {
                base: &base,
                history: &h,
                cap: None
            }),
            base
        );
        // Everything rejected → one level.
        let h = hist(&[(8, 0), (8, 0), (8, 0)]);
        let shape = p.shape(&ShapeQuery {
            base: &base,
            history: &h,
            cap: None,
        });
        assert_eq!(
            shape,
            SpecShape::Tree {
                widths: vec![2, 2],
                depth: 1
            }
        );
        // High realization → full configured depth, never more.
        let h = hist(&[(8, 4), (8, 4), (8, 4)]);
        let shape = p.shape(&ShapeQuery {
            base: &base,
            history: &h,
            cap: None,
        });
        assert_eq!(
            shape,
            SpecShape::Tree {
                widths: vec![2, 2],
                depth: 4
            }
        );
        // Draft gamma adapts by the same rule.
        let h = hist(&[(4, 1), (4, 1)]);
        let shape = p.shape(&ShapeQuery {
            base: &SpecShape::Draft { gamma: 5 },
            history: &h,
            cap: None,
        });
        assert_eq!(shape, SpecShape::Draft { gamma: 2 });
    }

    #[test]
    fn adaptive_ignores_old_history_beyond_window() {
        let p = AdaptivePolicy { window: 4 };
        let mut h = hist(&[(8, 8); 20]);
        for _ in 0..4 {
            h.record(8, 0);
        }
        // The last 4 steps cashed nothing; the old streak must not leak.
        assert_eq!(h.recent_mean_accepted(4), Some(0.0));
        let shape = p.shape(&ShapeQuery {
            base: &SpecShape::Chain { depth: 6 },
            history: &h,
            cap: None,
        });
        assert_eq!(shape, SpecShape::Chain { depth: 1 });
    }

    #[test]
    fn shrink_to_fits_any_budget_monotonically() {
        let shapes = [
            SpecShape::Tree {
                widths: vec![3, 2, 2],
                depth: 6,
            },
            SpecShape::Chain { depth: 5 },
            SpecShape::Tree {
                widths: vec![4, 4],
                depth: 2,
            },
        ];
        for shape in &shapes {
            let mut last = usize::MAX;
            for cap in (1..=shape.step_cost() + 2).rev() {
                let shrunk = shape.shrink_to(cap);
                assert!(shrunk.step_cost() <= cap, "{shape:?} at cap {cap}");
                assert!(shrunk.step_cost() <= last, "shrinking must be monotone");
                last = shrunk.step_cost();
            }
            // Cap 1 always fits (zero candidates).
            assert_eq!(shape.shrink_to(1).step_cost(), 1);
        }
        // Draft blocks floor at gamma 1 (cost 2).
        let d = SpecShape::Draft { gamma: 6 };
        assert_eq!(d.shrink_to(3), SpecShape::Draft { gamma: 2 });
        assert_eq!(d.shrink_to(1), SpecShape::Draft { gamma: 1 });
    }

    #[test]
    fn budgeted_shrinks_into_its_cap_and_exposes_the_budget() {
        let p = BudgetedPolicy { per_tick: 24 };
        assert_eq!(p.tick_budget(), Some(24));
        let base = SpecShape::Tree {
            widths: vec![2, 2, 1],
            depth: 6,
        };
        let h = AcceptHistory::default();
        let full = p.shape(&ShapeQuery {
            base: &base,
            history: &h,
            cap: None,
        });
        assert_eq!(full, base, "no cap → full shape");
        let fitted = p.shape(&ShapeQuery {
            base: &base,
            history: &h,
            cap: Some(7),
        });
        assert!(fitted.step_cost() <= 7);
        assert_ne!(fitted, base);
    }

    #[test]
    fn history_rates_and_purity() {
        let h = hist(&[(4, 2), (0, 0), (6, 3)]);
        assert_eq!(h.steps(), 3);
        assert_eq!((h.speculated(), h.accepted()), (10, 5));
        assert_eq!(h.acceptance_rate(), Some(0.5));
        // Non-speculating steps are skipped by the window mean.
        assert_eq!(h.recent_mean_accepted(3), Some(2.5));
        assert_eq!(AcceptHistory::default().acceptance_rate(), None);
        // Identical histories → identical decisions (purity witness).
        let a = hist(&[(8, 3), (8, 1)]);
        let b = hist(&[(8, 3), (8, 1)]);
        let base = SpecShape::Chain { depth: 5 };
        for policy in [&AdaptivePolicy::default() as &dyn SpecPolicy, &StaticPolicy] {
            assert_eq!(
                policy.shape(&ShapeQuery {
                    base: &base,
                    history: &a,
                    cap: None
                }),
                policy.shape(&ShapeQuery {
                    base: &base,
                    history: &b,
                    cap: None
                }),
            );
        }
    }
}
