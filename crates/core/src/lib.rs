//! VeriSpec core: syntax-aligned speculative decoding for Verilog.
//!
//! This crate implements the primary contribution of *"Speculative
//! Decoding for Verilog: Speed and Quality, All in One"* (DAC 2025):
//!
//! * **Syntax-enriched labels** ([`labels`]) — the Fig.-4 construction
//!   that aligns every head's supervision with complete syntactic
//!   fragments, including the paper's parallel masking algorithm;
//! * **Typical acceptance** ([`accept`]) — Eq. 1's entropy-adaptive
//!   criterion for speculated tokens;
//! * **Decoding engines** ([`decode`]) — NTP, MEDUSA, the paper's
//!   syntax-aligned variant with the fragment-integrity check, and the
//!   grammar-constrained engine that prunes speculation to
//!   lexically-viable continuations at propose time;
//! * **Classical draft-model speculation** ([`draft`]) — the
//!   Leviathan-style baseline with an n-gram draft;
//! * **Training orchestration** ([`train`](mod@train)) — MEDUSA-2's Eq.-2 loss with
//!   λ sine ramp, γ decay, and 4× head learning rate, parameterized over
//!   the three regimes compared in the paper;
//! * **Step-granular decoding** ([`step`]) — every engine decomposed
//!   into propose → verify → commit phases over a [`Stepper`], the hook
//!   a multi-request scheduler (`verispec-serve`) drives to fuse
//!   verification across concurrent generations;
//! * **Speculation policies** ([`policy`]) — the per-request, per-step
//!   decision of *how much speculation to buy*: the static configured
//!   shape, history-adaptive speculation length, or a per-tick
//!   candidate budget a serving engine divides across its batch.
//!
//! # Engine stack
//!
//! ```text
//!            ┌─────────────────────────────────────────────┐
//!            │ grammar-constrained ("Grammar-tree")         │
//!            │   viability-filtered tree + dead-tail prune  │
//!            │   (verispec-grammar oracle, propose time)    │
//!            ├─────────────────────────────────────────────┤
//!            │ syntax-aligned ("Ours")                      │
//!            │   post-hoc fragment-integrity cut (§III-B)   │
//!            ├─────────────────────────────────────────────┤
//!            │ MEDUSA speculation (chain / tree)            │
//!            │   propose → verify (one batched pass) → commit│
//!            ├─────────────────────────────────────────────┤
//!            │ NTP baseline                                 │
//!            └─────────────────────────────────────────────┘
//! ```
//!
//! Each layer reuses the one below: the grammar engine is the
//! syntax-aligned engine with candidate construction swapped for the
//! oracle-filtered builder, so every [`policy::SpecPolicy`], the fused
//! verify path, and park/unpark compose with it unchanged.
//!
//! # Examples
//!
//! Build syntax-enriched labels for a `[FRAG]`-tagged snippet and check
//! how much head supervision the masking removes:
//!
//! ```
//! use verispec_core::labels::LabelGrid;
//! use verispec_tokenizer::{special, BpeTokenizer};
//!
//! let tok = BpeTokenizer::byte_level();
//! let ids = tok.encode("[FRAG]module[FRAG] [FRAG]m[FRAG](");
//! let grid = LabelGrid::syntax_enriched_parallel(&ids, 10);
//! assert!(grid.ignore_fraction(10) >= grid.ignore_fraction(1));
//! ```

#![deny(missing_docs)]

pub mod accept;
pub mod decode;
pub mod draft;
pub mod labels;
pub mod policy;
pub mod step;
pub mod train;

pub use accept::TypicalAcceptance;
pub use decode::{
    decode_grammar_speculative, decode_ntp, decode_speculative, decode_speculative_with_policy,
    DecodeConfig, DecodeMethod, DecodeOutput, StepTrace,
};
pub use draft::{decode_draft_speculative, DraftConfig, DraftStats};
pub use labels::LabelGrid;
pub use policy::{
    AcceptHistory, AdaptivePolicy, BudgetedPolicy, ShapeQuery, SpecPolicy, SpecShape, StaticPolicy,
    STATIC_POLICY,
};
pub use step::{Phase, Stepper};
pub use train::{train, train_in_place, TrainConfig, TrainMethod, TrainReport};
