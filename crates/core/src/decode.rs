//! Decoding engines: conventional next-token prediction, MEDUSA-style
//! multi-head speculation, and the paper's syntax-aligned variant
//! ("Ours") that truncates every committed span at a complete fragment
//! boundary (§III-B).
//!
//! All engines drive a [`verispec_lm::DecodeSession`] (the KV-cache
//! analogue): one session per generation, extended with committed
//! tokens, rolled back after rejected speculation, and asked to verify
//! the whole MEDUSA candidate tree in a **single**
//! [`verispec_lm::DecodeSession::verify_batch`] call per decoding step —
//! the draft-then-verify formulation where all K speculated positions
//! are scored by one batched forward instead of one forward per
//! candidate path.
//!
//! All engines also run against the simulated GPU clock
//! ([`verispec_lm::GpuCostModel`]) so that tokens/second reflects the
//! paper's measurement model: one base-model forward per decoding step
//! plus a marginal cost per speculated candidate token.

use crate::accept::TypicalAcceptance;
use crate::policy::{SpecPolicy, SpecShape};
use serde::{Deserialize, Serialize};
use verispec_grammar::{dead_tail_prune, GrammarOracle, PruneRecord, ViabilityState};
use verispec_lm::{argmax, DecodeClock, GpuCostModel, LanguageModel, Sampling, TokenId};
use verispec_tokenizer::special;

/// Configuration for a decode run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodeConfig {
    /// Maximum number of generated tokens (excluding the prompt).
    pub max_tokens: usize,
    /// Sampling strategy for the base head (and head proposals).
    pub sampling: Sampling,
    /// Typical-acceptance parameters (Eq. 1) used under sampling.
    pub acceptance: TypicalAcceptance,
    /// End-of-sequence token; generation stops after committing it.
    pub eos: TokenId,
    /// When true ("Ours"), truncate each committed span at the last
    /// complete fragment boundary (`[FRAG]` token).
    pub syntax_aligned: bool,
    /// RNG seed for sampling.
    pub seed: u64,
    /// Optional MEDUSA candidate tree: entry `i` is the number of
    /// candidates drawn from head `i+1`'s top-k (entry 0 applies to head
    /// 1). `None` uses the single top-1 chain. The committed span is the
    /// longest accepted prefix over all candidate paths (paper §III-B:
    /// "we maintain several candidates comprising the top-k predictions
    /// ... the final prediction is the longest accepted prefix").
    pub tree: Option<Vec<usize>>,
}

impl Default for DecodeConfig {
    fn default() -> Self {
        Self {
            max_tokens: 256,
            sampling: Sampling::Greedy,
            acceptance: TypicalAcceptance::default(),
            eos: special::EOS,
            syntax_aligned: false,
            seed: 0,
            tree: None,
        }
    }
}

/// Per-step record for decode traces (Fig. 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepTrace {
    /// Tokens speculated by the heads this step (0 for NTP).
    pub speculated: usize,
    /// Tokens that passed acceptance (including the base token).
    pub accepted: usize,
    /// Tokens discarded by the syntax-integrity check.
    pub truncated: usize,
    /// Tokens actually committed this step.
    pub committed: Vec<TokenId>,
    /// Whether the committed span ends on a `[FRAG]` boundary.
    pub fragment_complete: bool,
}

/// Result of a decode run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodeOutput {
    /// Generated tokens (prompt excluded, `[EOS]` included if reached).
    pub tokens: Vec<TokenId>,
    /// Number of decoding steps taken.
    pub steps: usize,
    /// Simulated GPU clock for the run.
    pub clock: DecodeClock,
    /// Per-step trace.
    pub trace: Vec<StepTrace>,
}

impl DecodeOutput {
    /// Generated tokens up to (excluding) the first `[EOS]`.
    ///
    /// Generation stops after committing `[EOS]`, so everything from the
    /// first occurrence on is dead weight (a speculated span can commit
    /// tokens after it within the same step); `[FRAG]` markers are kept
    /// for callers to strip via text-level defragmentation.
    pub fn tokens_without_eos(&self) -> Vec<TokenId> {
        let end = self
            .tokens
            .iter()
            .position(|&t| t == special::EOS)
            .unwrap_or(self.tokens.len());
        self.tokens[..end].to_vec()
    }
}

/// Conventional next-token-prediction decoding (the NTP baseline).
///
/// A thin loop over [`crate::step::Stepper`], so the serial path and a
/// scheduler-driven served path execute the same per-step code.
pub fn decode_ntp(
    model: &dyn LanguageModel,
    prompt: &[TokenId],
    cfg: &DecodeConfig,
    cost: &GpuCostModel,
) -> DecodeOutput {
    let mut stepper = crate::step::Stepper::ntp(model, prompt, cfg.clone());
    while stepper.step(cost) {}
    stepper.into_output()
}

/// MEDUSA-style speculative decoding; with `cfg.syntax_aligned` this is
/// the paper's method ("Ours"), otherwise the Medusa baseline.
///
/// Each step:
/// 1. one forward produces base logits and every head's logits (served
///    from the session's cached trunk activation);
/// 2. the base token is drawn (greedy or sampled) and always committed;
/// 3. each head proposes its next token(s), forming the candidate tree;
/// 4. the whole tree is scored by **one**
///    [`verispec_lm::DecodeSession::verify_batch`] call (shared-prefix
///    reuse, batched forwards) and verified left-to-right — exact-match
///    under greedy decoding (lossless), Eq.-1 typical acceptance under
///    sampling — cutting each path at its first rejection;
/// 5. with syntax alignment, the accepted span is additionally truncated
///    at the last `[FRAG]` boundary (the integrity check of §III-B).
pub fn decode_speculative(
    model: &dyn LanguageModel,
    prompt: &[TokenId],
    cfg: &DecodeConfig,
    cost: &GpuCostModel,
) -> DecodeOutput {
    let mut stepper = crate::step::Stepper::speculative(model, prompt, cfg.clone());
    while stepper.step(cost) {}
    stepper.into_output()
}

/// [`decode_speculative`] under an explicit speculation policy: each
/// step's candidate-tree shape is the policy's decision over the
/// generation's own acceptance history instead of the frozen
/// `cfg.tree`. With [`crate::policy::StaticPolicy`] this is exactly
/// [`decode_speculative`]; with [`crate::policy::AdaptivePolicy`] it is
/// the serial reference a policy-driven serving engine is
/// token-identical to.
pub fn decode_speculative_with_policy(
    model: &dyn LanguageModel,
    prompt: &[TokenId],
    cfg: &DecodeConfig,
    cost: &GpuCostModel,
    policy: &dyn SpecPolicy,
) -> DecodeOutput {
    let mut stepper =
        crate::step::Stepper::speculative(model, prompt, cfg.clone()).with_policy(policy);
    while stepper.step(cost) {}
    stepper.into_output()
}

/// Grammar-constrained speculative decoding: the paper's syntax-aligned
/// engine ("Ours") with an incremental [`GrammarOracle`] pruning the
/// candidate tree to lexically-viable continuations at **propose** time
/// instead of discarding dead speculation only after verification.
///
/// Each step, relative to [`decode_speculative`]:
/// 1. the base token, once drawn, is substituted with the highest-ranked
///    *viable* token from the base logits when the draw itself would
///    kill the byte stream (one RNG draw either way, so the sampled
///    token sequence stays seed-deterministic);
/// 2. tree construction filters each head's top-k to viable
///    continuations of each candidate path's own viability state,
///    falling back to the unconstrained top-k when nothing in the
///    scanned window is viable (a dead oracle state therefore degrades
///    bit-identically to plain [`decode_speculative`] construction);
/// 3. built paths are dead-tail pruned
///    ([`verispec_grammar::dead_tail_prune`]): tails past the last
///    `[FRAG]`/`[EOS]` can never survive the post-hoc syntax cut, so
///    they are never sent to verification; freed candidate slots are
///    re-spent widening the surviving branches within the step's
///    original [`SpecShape::candidate_tokens`] budget.
///
/// Syntax alignment is forced on: the oracle's soundness argument is
/// stated against the post-hoc fragment-integrity cut.
pub fn decode_grammar_speculative(
    model: &dyn LanguageModel,
    oracle: &GrammarOracle,
    prompt: &[TokenId],
    cfg: &DecodeConfig,
    cost: &GpuCostModel,
) -> DecodeOutput {
    let mut stepper = crate::step::Stepper::grammar_speculative(model, oracle, prompt, cfg.clone());
    while stepper.step(cost) {}
    stepper.into_output()
}

/// Maximum number of candidate paths explored per step in tree mode.
pub(crate) const MAX_CANDIDATE_PATHS: usize = 32;

/// Builds the speculated candidate paths from per-head logits for one
/// step's [`SpecShape`] (the per-step decision of a
/// [`crate::policy::SpecPolicy`]; the static policy maps
/// `DecodeConfig.tree` onto shapes exactly, so this is the same
/// construction the engines always ran). `shape.depth == n_heads`
/// with the configured widths reproduces the pre-policy builder
/// bit-identically.
///
/// # Panics
///
/// Panics on [`SpecShape::Draft`]: draft blocks are proposed by the
/// draft model, not built from head logits.
pub(crate) fn build_candidate_paths(
    all_logits: &[Vec<f32>],
    n_heads: usize,
    shape: &SpecShape,
) -> Vec<Vec<TokenId>> {
    match shape {
        SpecShape::Chain { depth } => vec![(1..=(*depth).min(n_heads))
            .map(|i| argmax(&all_logits[i]))
            .collect()],
        SpecShape::Tree { widths, depth } => {
            let depth = (*depth).min(n_heads);
            let mut paths: Vec<Vec<TokenId>> = vec![Vec::new()];
            for (head_idx, head_logits) in all_logits.iter().enumerate().take(depth + 1).skip(1) {
                let k = widths.get(head_idx - 1).copied().unwrap_or(1).max(1);
                let options = verispec_lm::top_k_indices(head_logits, k);
                let mut next = Vec::with_capacity(paths.len() * options.len());
                'grow: for p in &paths {
                    for &opt in &options {
                        let mut q = p.clone();
                        q.push(opt);
                        next.push(q);
                        if next.len() >= MAX_CANDIDATE_PATHS {
                            break 'grow;
                        }
                    }
                }
                paths = next;
            }
            paths
        }
        SpecShape::Draft { .. } => {
            unreachable!("draft blocks are proposed by the draft model, not built from head logits")
        }
    }
}

/// How far past the requested width each head's ranking is scanned for
/// viable candidates before falling back to the unconstrained top-k.
pub(crate) const GRAMMAR_SCAN_SLACK: usize = 8;

/// How many ranked base-logit candidates are scanned when the drawn
/// base token is not lexically viable.
pub(crate) const GRAMMAR_BASE_SCAN: usize = 32;

/// Maximum widening retries after pruning frees candidate slots.
pub(crate) const GRAMMAR_WIDEN_ROUNDS: usize = 3;

/// The per-level candidate widths a [`SpecShape`] asks of `n_heads`
/// heads (chains are width-1 trees for the grammar builder).
fn effective_widths(shape: &SpecShape, n_heads: usize) -> Vec<usize> {
    match shape {
        SpecShape::Chain { depth } => vec![1; (*depth).min(n_heads)],
        SpecShape::Tree { widths, depth } => (0..(*depth).min(n_heads))
            .map(|i| widths.get(i).copied().unwrap_or(1).max(1))
            .collect(),
        SpecShape::Draft { .. } => {
            unreachable!("draft blocks are proposed by the draft model, not built from head logits")
        }
    }
}

/// Grows one candidate tree, filtering each level's ranked options to
/// tokens lexically viable after the candidate path built so far. Each
/// path carries its own [`ViabilityState`]; when no token in the
/// scanned window is viable (in particular whenever the state is dead),
/// the path falls back to the unconstrained top-k — reproducing
/// [`build_candidate_paths`]' ordering and 32-path cap exactly.
fn grammar_tree(
    all_logits: &[Vec<f32>],
    widths: &[usize],
    oracle: &GrammarOracle,
    state: ViabilityState,
) -> Vec<Vec<TokenId>> {
    let mut paths: Vec<(Vec<TokenId>, ViabilityState)> = vec![(Vec::new(), state)];
    for (level, &k) in widths.iter().enumerate() {
        let head_logits = &all_logits[level + 1];
        let ranked = verispec_lm::top_k_indices(head_logits, k + GRAMMAR_SCAN_SLACK);
        let mut next = Vec::with_capacity(paths.len() * k);
        'grow: for (p, st) in &paths {
            let viable: Vec<TokenId> = ranked
                .iter()
                .copied()
                .filter(|&t| oracle.viable(*st, t))
                .take(k)
                .collect();
            let chosen: &[TokenId] = if viable.is_empty() {
                &ranked[..k.min(ranked.len())]
            } else {
                &viable
            };
            for &opt in chosen {
                let mut q = p.clone();
                q.push(opt);
                next.push((q, oracle.advance(*st, opt)));
                if next.len() >= MAX_CANDIDATE_PATHS {
                    break 'grow;
                }
            }
        }
        paths = next;
    }
    paths.into_iter().map(|(p, _)| p).collect()
}

/// Builds the candidate paths for one step of the grammar-constrained
/// engine: viability-filtered tree construction ([`grammar_tree`]),
/// dead-tail pruning, then up to [`GRAMMAR_WIDEN_ROUNDS`] widening
/// retries that re-spend freed candidate slots on wider levels — the
/// widest rebuild still fitting the shape's original
/// [`SpecShape::candidate_tokens`] budget wins, so a policy's budget
/// accounting (`shrink_to`, per-tick budgets) stays an upper bound on
/// what is actually verified.
pub(crate) fn build_grammar_candidate_paths(
    all_logits: &[Vec<f32>],
    n_heads: usize,
    shape: &SpecShape,
    oracle: &GrammarOracle,
    state: ViabilityState,
    eos: TokenId,
) -> (Vec<Vec<TokenId>>, PruneRecord) {
    let widths = effective_widths(shape, n_heads);
    let budget = shape.candidate_tokens();
    let mut paths = grammar_tree(all_logits, &widths, oracle, state);
    let mut record = dead_tail_prune(&mut paths, special::FRAG, eos);
    for extra in 1..=GRAMMAR_WIDEN_ROUNDS {
        if record.surviving >= budget {
            break;
        }
        let wider: Vec<usize> = widths.iter().map(|w| w + extra).collect();
        let mut wide_paths = grammar_tree(all_logits, &wider, oracle, state);
        let wide_record = dead_tail_prune(&mut wide_paths, special::FRAG, eos);
        if wide_record.surviving > record.surviving && wide_record.surviving <= budget {
            paths = wide_paths;
            record = wide_record;
        }
    }
    (paths, record)
}

/// Substitutes a non-viable drawn base token with the highest-ranked
/// viable token from the base logits (scanning [`GRAMMAR_BASE_SCAN`]
/// ranked candidates). `[EOS]` is always kept, a dead oracle state
/// keeps the original draw (nothing is viable from a dead state), and
/// only lexically-informative tokens are substituted in: byte-free
/// specials are trivially "viable" but carry no lexical evidence, so
/// steering into them would replace the model's draw with noise. When
/// no informative viable token is ranked, the original draw stands.
pub(crate) fn constrain_base_token(
    tok: TokenId,
    base_logits: &[f32],
    oracle: &GrammarOracle,
    state: ViabilityState,
    eos: TokenId,
) -> TokenId {
    if tok == eos || state.is_dead() || oracle.viable(state, tok) {
        return tok;
    }
    verispec_lm::top_k_indices(base_logits, GRAMMAR_BASE_SCAN)
        .into_iter()
        .find(|&cand| !oracle.token_bytes(cand).is_empty() && oracle.viable(state, cand))
        .unwrap_or(tok)
}

/// Convenience dispatcher used by the evaluation harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecodeMethod {
    /// Conventional next-token prediction.
    Ntp,
    /// MEDUSA-2 speculative decoding (no syntax alignment).
    Medusa,
    /// The paper's syntax-aligned speculative decoding.
    Ours,
}

impl DecodeMethod {
    /// Human-readable name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DecodeMethod::Ntp => "NTP",
            DecodeMethod::Medusa => "Medusa",
            DecodeMethod::Ours => "Ours",
        }
    }

    /// Runs the decode engine this method denotes.
    pub fn decode(
        &self,
        model: &dyn LanguageModel,
        prompt: &[TokenId],
        cfg: &DecodeConfig,
        cost: &GpuCostModel,
    ) -> DecodeOutput {
        match self {
            DecodeMethod::Ntp => decode_ntp(model, prompt, cfg, cost),
            DecodeMethod::Medusa => {
                let cfg = DecodeConfig {
                    syntax_aligned: false,
                    ..cfg.clone()
                };
                decode_speculative(model, prompt, &cfg, cost)
            }
            DecodeMethod::Ours => {
                let cfg = DecodeConfig {
                    syntax_aligned: true,
                    ..cfg.clone()
                };
                decode_speculative(model, prompt, &cfg, cost)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verispec_lm::{MlpLm, MlpLmConfig, NgramLm};

    /// Trains a tiny MLP on a fixed cycle so decoding is predictable.
    fn cyclic_model(vocab: usize, period: usize) -> (MlpLm, Vec<TokenId>) {
        let cfg = MlpLmConfig {
            vocab,
            d_emb: 8,
            d_hidden: 16,
            context: 4,
            n_heads: 4,
            seed: 5,
        };
        let mut model = MlpLm::new(cfg);
        let mut opt = model.optimizer();
        let mut grads = model.zero_grads();
        let seq: Vec<TokenId> = (0..120).map(|i| 6 + (i % period) as TokenId).collect();
        for _ in 0..120 {
            grads.reset();
            for pos in 0..seq.len() - 5 {
                let w = model.window(&seq[..=pos]);
                let mut targets = vec![(0usize, seq[pos + 1], 1.0f32)];
                for h in 1..=4usize {
                    targets.push((h, seq[pos + 1 + h], 0.2 * 0.8f32.powi(h as i32)));
                }
                model.accumulate_position(&mut grads, &w, &targets);
            }
            model.adam_step(&mut opt, &grads, 5e-3, 4.0);
        }
        (model, seq)
    }

    #[test]
    fn ntp_decodes_learned_cycle() {
        let (model, seq) = cyclic_model(12, 3);
        let cfg = DecodeConfig {
            max_tokens: 9,
            ..Default::default()
        };
        let out = decode_ntp(&model, &seq[..4], &cfg, &GpuCostModel::codellama_like());
        assert_eq!(out.tokens.len(), 9);
        assert_eq!(out.steps, 9, "NTP commits one token per step");
        // Continues the cycle 6,7,8,6,7,8...
        let expect: Vec<TokenId> = (0..9).map(|i| 6 + ((i + 4) % 3) as TokenId).collect();
        assert_eq!(out.tokens, expect);
    }

    #[test]
    fn speculative_greedy_matches_ntp_greedy() {
        // Losslessness: greedy speculative decoding must produce exactly
        // the greedy NTP token stream (acceptance = exact match).
        let (model, seq) = cyclic_model(12, 3);
        let cost = GpuCostModel::codellama_like();
        let cfg = DecodeConfig {
            max_tokens: 12,
            ..Default::default()
        };
        let ntp = decode_ntp(&model, &seq[..4], &cfg, &cost);
        let med = decode_speculative(&model, &seq[..4], &cfg, &cost);
        assert_eq!(ntp.tokens, med.tokens);
        assert!(
            med.steps < ntp.steps,
            "speculation must save steps on a learned cycle"
        );
    }

    #[test]
    fn speculative_clock_is_faster_despite_overhead() {
        let (model, seq) = cyclic_model(12, 3);
        let cost = GpuCostModel::codellama_like();
        let cfg = DecodeConfig {
            max_tokens: 30,
            ..Default::default()
        };
        let ntp = decode_ntp(&model, &seq[..4], &cfg, &cost);
        let med = decode_speculative(&model, &seq[..4], &cfg, &cost);
        assert_eq!(ntp.tokens, med.tokens);
        assert!(med.clock.tokens_per_second() > ntp.clock.tokens_per_second());
    }

    #[test]
    fn ntp_stops_at_eos() {
        // An n-gram model trained so that token 9 follows 8, then EOS.
        let mut ng = NgramLm::new(2, 12);
        let seq = vec![8u32, 9, special::EOS];
        for _ in 0..10 {
            ng.train_sequence(&seq);
        }
        let cfg = DecodeConfig {
            max_tokens: 50,
            ..Default::default()
        };
        let out = decode_ntp(&ng, &[8], &cfg, &GpuCostModel::codet5p_like());
        assert_eq!(out.tokens.last(), Some(&special::EOS));
        assert!(out.tokens.len() <= 3);
    }

    #[test]
    fn syntax_alignment_truncates_at_frag() {
        // Cycle includes FRAG (id 3): ... 6 7 FRAG 6 7 FRAG ...
        let cfg_m = MlpLmConfig {
            vocab: 10,
            d_emb: 8,
            d_hidden: 16,
            context: 4,
            n_heads: 4,
            seed: 9,
        };
        let mut model = MlpLm::new(cfg_m);
        let mut opt = model.optimizer();
        let mut grads = model.zero_grads();
        let pat = [6u32, 7, special::FRAG];
        let seq: Vec<TokenId> = (0..120).map(|i| pat[i % 3]).collect();
        for _ in 0..120 {
            grads.reset();
            for pos in 0..seq.len() - 5 {
                let w = model.window(&seq[..=pos]);
                let mut targets = vec![(0usize, seq[pos + 1], 1.0f32)];
                for h in 1..=4usize {
                    targets.push((h, seq[pos + 1 + h], 0.2));
                }
                model.accumulate_position(&mut grads, &w, &targets);
            }
            model.adam_step(&mut opt, &grads, 5e-3, 4.0);
        }
        let cost = GpuCostModel::codellama_like();
        let cfg = DecodeConfig {
            max_tokens: 12,
            syntax_aligned: true,
            ..Default::default()
        };
        let out = decode_speculative(&model, &seq[..3], &cfg, &cost);
        // Every multi-token step must end on a fragment boundary.
        for st in &out.trace {
            if st.committed.len() > 1 {
                assert!(
                    st.fragment_complete,
                    "multi-token step not fragment-complete: {st:?}"
                );
            }
        }
        // And the greedy stream still matches NTP (truncation only delays).
        let ntp = decode_ntp(&model, &seq[..3], &cfg, &cost);
        assert_eq!(out.tokens, ntp.tokens);
    }

    #[test]
    fn trace_accounts_for_all_tokens() {
        let (model, seq) = cyclic_model(12, 4);
        let cfg = DecodeConfig {
            max_tokens: 16,
            ..Default::default()
        };
        let out = decode_speculative(&model, &seq[..4], &cfg, &GpuCostModel::codellama_like());
        let committed_total: usize = out.trace.iter().map(|t| t.committed.len()).sum();
        assert_eq!(committed_total, out.tokens.len());
        for st in &out.trace {
            assert!(st.accepted >= st.committed.len());
            assert!(st.accepted - st.truncated >= st.committed.len());
        }
    }

    #[test]
    fn sampling_decode_is_seed_deterministic() {
        let (model, seq) = cyclic_model(12, 3);
        let cost = GpuCostModel::codellama_like();
        let cfg = DecodeConfig {
            max_tokens: 20,
            sampling: Sampling::temperature(0.8),
            seed: 11,
            ..Default::default()
        };
        let a = decode_speculative(&model, &seq[..4], &cfg, &cost);
        let b = decode_speculative(&model, &seq[..4], &cfg, &cost);
        assert_eq!(a.tokens, b.tokens);
    }

    #[test]
    fn method_dispatcher_covers_all() {
        let (model, seq) = cyclic_model(12, 3);
        let cost = GpuCostModel::codellama_like();
        let cfg = DecodeConfig {
            max_tokens: 6,
            ..Default::default()
        };
        for m in [DecodeMethod::Ntp, DecodeMethod::Medusa, DecodeMethod::Ours] {
            let out = m.decode(&model, &seq[..4], &cfg, &cost);
            assert!(!out.tokens.is_empty(), "{}", m.name());
        }
    }

    #[test]
    fn tree_candidates_remain_lossless_and_never_slower() {
        let (model, seq) = cyclic_model(12, 3);
        let cost = GpuCostModel::codellama_like();
        let base_cfg = DecodeConfig {
            max_tokens: 24,
            ..Default::default()
        };
        let ntp = decode_ntp(&model, &seq[..4], &base_cfg, &cost);
        let chain = decode_speculative(&model, &seq[..4], &base_cfg, &cost);
        let tree_cfg = DecodeConfig {
            tree: Some(vec![3, 2, 2, 1]),
            ..base_cfg
        };
        let tree = decode_speculative(&model, &seq[..4], &tree_cfg, &cost);
        assert_eq!(ntp.tokens, tree.tokens, "tree greedy must stay lossless");
        assert!(tree.steps <= ntp.steps, "tree cannot be slower than NTP");
        // The first step starts from the same position as the chain's, so
        // the per-step guarantee holds there: at least as many tokens
        // committed, at least as many candidates paid for.
        assert!(tree.trace[0].committed.len() >= chain.trace[0].committed.len());
        assert!(
            tree.trace[0].speculated >= chain.trace[0].speculated,
            "tree must evaluate at least as many candidate tokens"
        );
    }

    #[test]
    fn candidate_path_construction() {
        let logits = vec![
            vec![0.0, 1.0, 5.0, 0.0], // base (unused by builder)
            vec![9.0, 1.0, 0.0, 0.0], // head 1: top-2 = [0, 1]
            vec![0.0, 0.0, 3.0, 2.0], // head 2: top-1 = [2]
        ];
        let tree = SpecShape::Tree {
            widths: vec![2, 1],
            depth: 2,
        };
        let paths = super::build_candidate_paths(&logits, 2, &tree);
        assert_eq!(paths, vec![vec![0, 2], vec![1, 2]]);
        let chain = super::build_candidate_paths(&logits, 2, &SpecShape::Chain { depth: 2 });
        assert_eq!(chain, vec![vec![0, 2]]);
        // A shallower shape explores fewer head levels.
        let short = super::build_candidate_paths(&logits, 2, &SpecShape::Chain { depth: 1 });
        assert_eq!(short, vec![vec![0]]);
    }

    #[test]
    fn max_tokens_is_respected_mid_speculation() {
        let (model, seq) = cyclic_model(12, 3);
        let cfg = DecodeConfig {
            max_tokens: 5,
            ..Default::default()
        };
        let out = decode_speculative(&model, &seq[..4], &cfg, &GpuCostModel::codellama_like());
        assert!(out.tokens.len() <= 5);
    }
}
