//! Typical acceptance (paper Eq. 1, following MEDUSA).
//!
//! A speculated token `x` is accepted when the base model assigns it
//! probability above an entropy-dependent threshold:
//!
//! ```text
//! p_base(x | ctx) > min(ε, δ · exp(−H(p_base(· | ctx))))
//! ```
//!
//! so that in low-entropy (confident) contexts only near-argmax tokens
//! pass, while in high-entropy contexts the bar drops and more diverse
//! speculation survives. A token is committed only if the criterion holds
//! for it **and every preceding speculated token** (enforced by the
//! decode loop's first-rejection cutoff).

use serde::{Deserialize, Serialize};
use verispec_lm::matrix::entropy;
use verispec_lm::TokenId;

/// Parameters of the typical-acceptance criterion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TypicalAcceptance {
    /// Hard probability cap `ε`.
    pub epsilon: f32,
    /// Entropy scaling coefficient `δ`.
    pub delta: f32,
}

impl Default for TypicalAcceptance {
    /// MEDUSA's published defaults (ε = 0.09, δ = 0.3).
    fn default() -> Self {
        Self {
            epsilon: 0.09,
            delta: 0.3,
        }
    }
}

impl TypicalAcceptance {
    /// The acceptance threshold for a base-model distribution.
    pub fn threshold(&self, probs: &[f32]) -> f32 {
        self.epsilon.min(self.delta * (-entropy(probs)).exp())
    }

    /// Whether `token` passes Eq. 1 under the base distribution `probs`.
    pub fn accepts(&self, probs: &[f32], token: TokenId) -> bool {
        probs[token as usize] > self.threshold(probs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confident_distribution_accepts_only_top_token() {
        let acc = TypicalAcceptance::default();
        // Near-deterministic distribution: entropy ~ 0, threshold ~ min(ε, δ).
        let probs = vec![0.97f32, 0.01, 0.01, 0.01];
        assert!(acc.accepts(&probs, 0));
        assert!(!acc.accepts(&probs, 1));
    }

    #[test]
    fn uniform_distribution_accepts_everything_with_enough_entropy() {
        let acc = TypicalAcceptance::default();
        // Uniform over 64: H = ln 64 ≈ 4.16, δ·e^{-H} ≈ 0.3/64 ≈ 0.0047.
        let probs = vec![1.0f32 / 64.0; 64];
        // Every token has p = 1/64 ≈ 0.0156 > 0.0047.
        assert!(acc.accepts(&probs, 0));
        assert!(acc.accepts(&probs, 63));
    }

    #[test]
    fn threshold_is_capped_by_epsilon() {
        let acc = TypicalAcceptance {
            epsilon: 0.05,
            delta: 10.0,
        };
        let probs = vec![0.9f32, 0.1];
        assert!(acc.threshold(&probs) <= 0.05);
    }

    #[test]
    fn zero_probability_token_never_accepted() {
        let acc = TypicalAcceptance::default();
        let probs = vec![0.5f32, 0.5, 0.0];
        assert!(!acc.accepts(&probs, 2));
    }

    #[test]
    fn stricter_epsilon_rejects_more() {
        let lax = TypicalAcceptance {
            epsilon: 0.001,
            delta: 0.3,
        };
        let strict = TypicalAcceptance {
            epsilon: 0.2,
            delta: 3.0,
        };
        // Borderline token with p = 0.1 under a moderately peaked dist.
        let probs = vec![0.8f32, 0.1, 0.05, 0.05];
        assert!(lax.accepts(&probs, 1));
        assert!(!strict.accepts(&probs, 1));
    }
}
