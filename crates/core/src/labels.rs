//! Syntax-enriched label construction (paper §III-C, Fig. 4).
//!
//! For a token sequence and `n` Medusa heads, the label grid has
//! `n + 1` rows: row 0 supervises the base model (next token), row `i`
//! supervises head `i` (token `i + 1` positions ahead). Positions past
//! the end of the sequence carry `[IGNORE]` and are excluded from the
//! loss.
//!
//! The *syntax-enriched* variant additionally masks, per sequence
//! position, every head label **after the last `[FRAG]` token** along the
//! head dimension, so each supervised span ends exactly on a complete
//! syntactic fragment. Two implementations are provided:
//!
//! * [`LabelGrid::syntax_enriched`] — readable per-column reference,
//! * [`LabelGrid::syntax_enriched_parallel`] — the paper's vectorized
//!   reverse scan over the head dimension (Fig. 4 right panel), realized
//!   with 64-column bitmask words.
//!
//! Property tests assert the two produce identical grids.

use serde::{Deserialize, Serialize};
use verispec_lm::TokenId;
use verispec_tokenizer::special;

/// Multi-head training labels for one token sequence.
///
/// `rows[h][s]` is the target of head `h` (0 = base) at sequence position
/// `s`, i.e. after the model has consumed `tokens[..= s]`. The sentinel
/// [`special::IGNORE`] marks positions excluded from the loss.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelGrid {
    n_heads: usize,
    seq_len: usize,
    rows: Vec<Vec<TokenId>>,
}

impl LabelGrid {
    /// Plain MEDUSA-2 labels: row `h` is the sequence left-shifted by
    /// `h + 1`, with out-of-range positions set to `[IGNORE]`.
    ///
    /// (The paper appends `[PAD]` and then masks it; the grids are
    /// equivalent, we go to `[IGNORE]` directly.)
    pub fn plain(tokens: &[TokenId], n_heads: usize) -> Self {
        let seq_len = tokens.len();
        let rows = (0..=n_heads)
            .map(|h| {
                (0..seq_len)
                    .map(|s| tokens.get(s + 1 + h).copied().unwrap_or(special::IGNORE))
                    .collect()
            })
            .collect();
        Self {
            n_heads,
            seq_len,
            rows,
        }
    }

    /// Next-token-prediction labels: only the base row is supervised.
    pub fn ntp(tokens: &[TokenId]) -> Self {
        Self::plain(tokens, 0)
    }

    /// Syntax-enriched labels — reference implementation.
    ///
    /// Per column: find the **last** row among heads `1..=n` whose label
    /// is `[FRAG]`; rows after it become `[IGNORE]`. Columns with no
    /// `[FRAG]` in the head span keep full supervision (the behaviour of
    /// the paper's pseudo-code, whose mask starts at 0 there).
    pub fn syntax_enriched(tokens: &[TokenId], n_heads: usize) -> Self {
        let mut grid = Self::plain(tokens, n_heads);
        for s in 0..grid.seq_len {
            let last_frag = (1..=n_heads)
                .rev()
                .find(|&h| grid.rows[h][s] == special::FRAG);
            if let Some(last) = last_frag {
                for h in last + 1..=n_heads {
                    grid.rows[h][s] = special::IGNORE;
                }
            }
        }
        grid
    }

    /// Syntax-enriched labels — the paper's parallel algorithm (Fig. 4).
    ///
    /// Vectorized across sequence positions with 64-column bitmask words:
    ///
    /// 1. `has_frag_mask[s] = any(rows[1..=n][s] == FRAG)`;
    /// 2. traverse heads in reverse; per head `i`, clear mask bits where
    ///    `rows[i][s] == FRAG`, then set `rows[i][s] = IGNORE` wherever
    ///    the mask is still set;
    /// 3. terminate early once the mask is all zeros.
    pub fn syntax_enriched_parallel(tokens: &[TokenId], n_heads: usize) -> Self {
        let mut grid = Self::plain(tokens, n_heads);
        let seq_len = grid.seq_len;
        let words = seq_len.div_ceil(64);
        if n_heads == 0 || seq_len == 0 {
            return grid;
        }

        // Step 1: initialize the fragment mask (bit set = column has a
        // [FRAG] somewhere among the head rows).
        let mut has_frag_mask = vec![0u64; words];
        for h in 1..=n_heads {
            let row = &grid.rows[h];
            for (s, &t) in row.iter().enumerate() {
                if t == special::FRAG {
                    has_frag_mask[s / 64] |= 1u64 << (s % 64);
                }
            }
        }

        // Step 2: iterate over heads in reverse.
        for h in (1..=n_heads).rev() {
            // temp_mask: positions in the current head without [FRAG].
            // has_frag_mask &= temp_mask
            {
                let row = &grid.rows[h];
                for (s, &t) in row.iter().enumerate() {
                    if t == special::FRAG {
                        has_frag_mask[s / 64] &= !(1u64 << (s % 64));
                    }
                }
            }
            // Early termination.
            if has_frag_mask.iter().all(|&w| w == 0) {
                break;
            }
            // Mask positions with [IGNORE].
            let row = &mut grid.rows[h];
            for (w, &word) in has_frag_mask.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let s = w * 64 + b;
                    if s < seq_len {
                        row[s] = special::IGNORE;
                    }
                }
            }
        }
        grid
    }

    /// Number of Medusa heads (rows minus the base row).
    pub fn n_heads(&self) -> usize {
        self.n_heads
    }

    /// Sequence length (number of columns).
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Label of head `h` at position `s` (may be `[IGNORE]`).
    pub fn label(&self, h: usize, s: usize) -> TokenId {
        self.rows[h][s]
    }

    /// Supervised `(head, target)` pairs at position `s`, skipping
    /// `[IGNORE]` entries.
    pub fn targets_at(&self, s: usize) -> impl Iterator<Item = (usize, TokenId)> + '_ {
        self.rows.iter().enumerate().filter_map(move |(h, row)| {
            let t = row[s];
            (t != special::IGNORE).then_some((h, t))
        })
    }

    /// Fraction of head-row entries masked to `[IGNORE]` (diagnostic; the
    /// paper notes this grows for later heads, easing their task).
    pub fn ignore_fraction(&self, head: usize) -> f64 {
        if self.seq_len == 0 {
            return 0.0;
        }
        let row = &self.rows[head];
        row.iter().filter(|&&t| t == special::IGNORE).count() as f64 / self.seq_len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: TokenId = special::FRAG;
    const I: TokenId = special::IGNORE;

    #[test]
    fn plain_rows_are_shifts() {
        let toks = vec![10, 11, 12, 13];
        let g = LabelGrid::plain(&toks, 2);
        assert_eq!(g.rows[0], vec![11, 12, 13, I]);
        assert_eq!(g.rows[1], vec![12, 13, I, I]);
        assert_eq!(g.rows[2], vec![13, I, I, I]);
    }

    #[test]
    fn ntp_has_single_row() {
        let g = LabelGrid::ntp(&[1, 2, 3]);
        assert_eq!(g.n_heads(), 0);
        assert_eq!(g.rows.len(), 1);
    }

    #[test]
    fn syntax_masking_stops_after_last_frag() {
        // tokens: a F b c F d  (10, FRAG, 11, 12, FRAG, 13)
        let toks = vec![10, F, 11, 12, F, 13];
        let g = LabelGrid::syntax_enriched(&toks, 4);
        // Column 0: rows are [F, 11, 12, F, 13]; last FRAG among heads is
        // row 4... head rows 1..4 = [11, 12, F, 13]: last FRAG at head 3,
        // so head 4 is IGNOREd.
        assert_eq!(g.label(0, 0), F);
        assert_eq!(g.label(1, 0), 11);
        assert_eq!(g.label(2, 0), 12);
        assert_eq!(g.label(3, 0), F);
        assert_eq!(g.label(4, 0), I);
    }

    #[test]
    fn column_without_frag_keeps_supervision() {
        let toks = vec![10, 11, 12, 13, 14, 15];
        let g = LabelGrid::syntax_enriched(&toks, 3);
        // No FRAG anywhere: nothing masked except out-of-range tails.
        assert_eq!(g.label(1, 0), 12);
        assert_eq!(g.label(2, 0), 13);
        assert_eq!(g.label(3, 0), 14);
    }

    #[test]
    fn base_row_is_never_masked_by_syntax() {
        let toks = vec![F, 10, F, 11, F];
        let g = LabelGrid::syntax_enriched(&toks, 3);
        for s in 0..toks.len() - 1 {
            assert_ne!(g.label(0, s), I, "base row masked at {s}");
        }
    }

    #[test]
    fn parallel_matches_reference_on_fig4_style_input() {
        // Mimics Fig. 4: "module [FRAG] d _f lip _f lop [FRAG] ..."
        let toks = vec![20, F, 21, 22, 23, 24, 25, F, 26, F];
        for n_heads in [1, 2, 4, 7, 10] {
            let a = LabelGrid::syntax_enriched(&toks, n_heads);
            let b = LabelGrid::syntax_enriched_parallel(&toks, n_heads);
            assert_eq!(a, b, "n_heads={n_heads}");
        }
    }

    #[test]
    fn ignore_fraction_grows_with_head_index() {
        // Realistic structure: FRAG every ~3 tokens.
        let mut toks = Vec::new();
        for i in 0..60u32 {
            toks.push(100 + i);
            if i % 3 == 0 {
                toks.push(F);
            }
        }
        let g = LabelGrid::syntax_enriched(&toks, 10);
        let f1 = g.ignore_fraction(1);
        let f5 = g.ignore_fraction(5);
        let f10 = g.ignore_fraction(10);
        assert!(f1 <= f5 && f5 <= f10, "{f1} {f5} {f10}");
        assert!(f10 > f1, "later heads must be masked more");
    }

    #[test]
    fn targets_at_skips_ignore() {
        let toks = vec![10, F, 11];
        let g = LabelGrid::syntax_enriched(&toks, 2);
        let t2: Vec<(usize, TokenId)> = g.targets_at(2).collect();
        // Position 2 is the last token: all labels out of range.
        assert!(t2.is_empty());
        let t0: Vec<(usize, TokenId)> = g.targets_at(0).collect();
        assert!(t0.iter().any(|&(h, t)| h == 0 && t == F));
    }

    #[test]
    fn empty_and_single_token_sequences() {
        let g = LabelGrid::syntax_enriched(&[], 3);
        assert_eq!(g.seq_len(), 0);
        let g = LabelGrid::syntax_enriched(&[42], 3);
        assert_eq!(g.seq_len(), 1);
        assert!(g.targets_at(0).next().is_none());
        let g = LabelGrid::syntax_enriched_parallel(&[42], 3);
        assert_eq!(g.seq_len(), 1);
    }

    #[test]
    fn zero_heads_parallel_is_noop() {
        let toks = vec![1, F, 2];
        let a = LabelGrid::syntax_enriched(&toks, 0);
        let b = LabelGrid::syntax_enriched_parallel(&toks, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn long_sequence_crossing_word_boundaries() {
        // > 64 columns exercises multi-word bitmasks.
        let mut toks: Vec<TokenId> = Vec::new();
        for i in 0..200u32 {
            toks.push(50 + (i % 7));
            if i % 5 == 0 {
                toks.push(F);
            }
        }
        let a = LabelGrid::syntax_enriched(&toks, 10);
        let b = LabelGrid::syntax_enriched_parallel(&toks, 10);
        assert_eq!(a, b);
    }
}
