//! Training orchestration for the three regimes the paper compares
//! (§IV-A): conventional NTP, MEDUSA-2 joint training, and the paper's
//! syntax-enriched training ("Ours").
//!
//! The loss follows Eq. 2:
//!
//! ```text
//! Loss = Loss_base + λ · Σ_{i=1..n} γ^i · Loss_head_i
//! ```
//!
//! with λ growing from 0 to `lambda_max` along a sine schedule over
//! training (the paper's "sine growth pattern", λ_max = 0.2) and
//! γ = 0.8. Heads train at `head_lr_mult` (4×) the base learning rate.
//!
//! The three methods differ **only** in their label grids (and in whether
//! the corpus text carries `[FRAG]` markers, which the caller controls):
//!
//! | method | labels                                | corpus text |
//! |--------|---------------------------------------|-------------|
//! | NTP    | base row only                         | plain       |
//! | Medusa | all rows, plain shifts                | plain       |
//! | Ours   | all rows, Fig.-4 syntax masking       | `[FRAG]`-tagged |

use crate::labels::LabelGrid;
use serde::{Deserialize, Serialize};
use verispec_lm::{HeadTarget, MlpLm, MlpLmConfig, Sampler, TokenId};

/// Which training regime to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrainMethod {
    /// Base head only, plain labels.
    Ntp,
    /// MEDUSA-2 joint training with plain shifted labels.
    Medusa,
    /// Syntax-enriched labels (the paper's method).
    Ours,
}

impl TrainMethod {
    /// Human-readable name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            TrainMethod::Ntp => "NTP",
            TrainMethod::Medusa => "Medusa",
            TrainMethod::Ours => "Ours",
        }
    }

    /// Builds the label grid this method trains with.
    pub fn labels(&self, tokens: &[TokenId], n_heads: usize) -> LabelGrid {
        match self {
            TrainMethod::Ntp => LabelGrid::ntp(tokens),
            TrainMethod::Medusa => LabelGrid::plain(tokens, n_heads),
            TrainMethod::Ours => LabelGrid::syntax_enriched_parallel(tokens, n_heads),
        }
    }
}

/// Hyper-parameters for a training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Which regime to use.
    pub method: TrainMethod,
    /// Passes over the corpus.
    pub epochs: usize,
    /// Base learning rate.
    pub lr: f32,
    /// Learning-rate multiplier for the Medusa heads (paper: 4×).
    pub head_lr_mult: f32,
    /// Final λ of the sine ramp (paper: 0.2).
    pub lambda_max: f32,
    /// Per-head decay γ (paper: 0.8).
    pub gamma: f32,
    /// Positions per optimizer step.
    pub batch_positions: usize,
    /// Shuffling seed.
    pub seed: u64,
    /// MEDUSA-1 mode: freeze the backbone (embeddings, trunk, base head)
    /// and train only the Medusa heads — lossless acceleration.
    pub freeze_base: bool,
}

impl TrainConfig {
    /// Paper-faithful defaults for the given method (scaled learning rate
    /// for the tiny models).
    pub fn paper_defaults(method: TrainMethod) -> Self {
        Self {
            method,
            epochs: 2,
            lr: 2e-3,
            head_lr_mult: 4.0,
            lambda_max: 0.2,
            gamma: 0.8,
            batch_positions: 64,
            seed: 0,
            freeze_base: false,
        }
    }

    /// MEDUSA-1 defaults: frozen backbone, heads-only training.
    pub fn medusa1_defaults() -> Self {
        Self {
            freeze_base: true,
            ..Self::paper_defaults(TrainMethod::Medusa)
        }
    }
}

/// Per-epoch loss summary.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean base-head loss per epoch.
    pub base_losses: Vec<f32>,
    /// Mean (weighted) head loss per epoch.
    pub head_losses: Vec<f32>,
    /// Number of supervised positions seen per epoch.
    pub positions: Vec<usize>,
}

impl TrainReport {
    /// Final epoch's base loss (convenience for tests).
    pub fn final_base_loss(&self) -> f32 {
        self.base_losses.last().copied().unwrap_or(f32::NAN)
    }
}

/// Trains a fresh [`MlpLm`] on tokenized `sequences` under `tc`.
///
/// For [`TrainMethod::Ours`] the sequences are expected to be encodings of
/// `[FRAG]`-tagged text (the dataset pipeline produces these); for the
/// baselines, encodings of plain text.
///
/// # Panics
///
/// Panics if `tc.method` supervises heads but `model_cfg.n_heads == 0`.
pub fn train(
    model_cfg: MlpLmConfig,
    sequences: &[Vec<TokenId>],
    tc: &TrainConfig,
) -> (MlpLm, TrainReport) {
    let mut model = MlpLm::new(model_cfg);
    let report = train_in_place(&mut model, sequences, tc);
    (model, report)
}

/// Trains an existing model in place (used for continued training in
/// ablations). See [`train`].
pub fn train_in_place(
    model: &mut MlpLm,
    sequences: &[Vec<TokenId>],
    tc: &TrainConfig,
) -> TrainReport {
    let n_heads = model.n_heads();
    if !matches!(tc.method, TrainMethod::Ntp) {
        assert!(
            n_heads > 0,
            "{} training requires Medusa heads",
            tc.method.name()
        );
    }
    let mut opt = model.optimizer();
    let mut grads = model.zero_grads();
    let mut shuffler = Sampler::new(tc.seed);
    let mut report = TrainReport::default();

    // Pre-build label grids once; they are method- and data-dependent
    // but epoch-invariant.
    let grids: Vec<LabelGrid> = sequences
        .iter()
        .map(|seq| tc.method.labels(seq, n_heads))
        .collect();

    let total_positions: usize = sequences
        .iter()
        .map(|s| s.len().saturating_sub(1))
        .sum::<usize>()
        .max(1);
    let total_steps = (total_positions * tc.epochs).max(1);
    let mut global_pos = 0usize;

    for _epoch in 0..tc.epochs {
        // Fisher-Yates shuffle of the sequence order.
        let mut order: Vec<usize> = (0..sequences.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, shuffler.gen_range(i + 1));
        }

        let mut epoch_base = 0.0f64;
        let mut epoch_head = 0.0f64;
        let mut epoch_positions = 0usize;

        for &si in &order {
            let seq = &sequences[si];
            let grid = &grids[si];
            if seq.len() < 2 {
                continue;
            }
            for pos in 0..seq.len() - 1 {
                // λ sine ramp over global progress (Eq. 2).
                let progress = global_pos as f32 / total_steps as f32;
                let lambda = tc.lambda_max * (progress * std::f32::consts::FRAC_PI_2).sin();
                global_pos += 1;

                let targets: Vec<HeadTarget> = grid
                    .targets_at(pos)
                    .map(|(h, t)| {
                        let w = if h == 0 {
                            1.0
                        } else {
                            lambda * tc.gamma.powi(h as i32)
                        };
                        (h, t, w)
                    })
                    .filter(|&(_, _, w)| w > 0.0)
                    .collect();
                if targets.is_empty() {
                    continue;
                }
                let window = model.window(&seq[..=pos]);
                let loss = model.accumulate_position(&mut grads, &window, &targets);
                epoch_base += loss.base as f64;
                epoch_head += loss.heads as f64;
                epoch_positions += 1;

                if grads.positions >= tc.batch_positions {
                    apply_step(model, &mut opt, &grads, tc);
                    grads.reset();
                }
            }
        }
        if grads.positions > 0 {
            apply_step(model, &mut opt, &grads, tc);
            grads.reset();
        }
        let n = epoch_positions.max(1) as f64;
        report.base_losses.push((epoch_base / n) as f32);
        report.head_losses.push((epoch_head / n) as f32);
        report.positions.push(epoch_positions);
    }
    report
}

/// One optimizer step honoring the freeze flag.
fn apply_step(
    model: &mut MlpLm,
    opt: &mut verispec_lm::mlp::AdamOpt,
    grads: &verispec_lm::mlp::MlpGrads,
    tc: &TrainConfig,
) {
    if tc.freeze_base {
        model.adam_step_rates(opt, grads, 0.0, tc.lr * tc.head_lr_mult);
    } else {
        model.adam_step(opt, grads, tc.lr, tc.head_lr_mult);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verispec_tokenizer::special;

    fn toy_sequences(tagged: bool, n: usize) -> Vec<Vec<TokenId>> {
        // Mimic Verilog-ish structure: fragments of 1-3 tokens separated
        // by FRAG markers when tagged.
        let mut seqs = Vec::new();
        for k in 0..n {
            let mut s = Vec::new();
            for i in 0..40u32 {
                let base = 10 + ((i + k as u32) % 6);
                s.push(base);
                if i % 2 == 0 {
                    s.push(base + 10);
                }
                if tagged {
                    s.push(special::FRAG);
                }
            }
            s.push(special::EOS);
            seqs.push(s);
        }
        seqs
    }

    fn tiny_cfg(n_heads: usize) -> MlpLmConfig {
        MlpLmConfig {
            vocab: 40,
            d_emb: 8,
            d_hidden: 16,
            context: 4,
            n_heads,
            seed: 3,
        }
    }

    #[test]
    fn ntp_training_reduces_base_loss() {
        let seqs = toy_sequences(false, 4);
        let tc = TrainConfig {
            epochs: 4,
            ..TrainConfig::paper_defaults(TrainMethod::Ntp)
        };
        let (_, report) = train(tiny_cfg(0), &seqs, &tc);
        assert!(report.base_losses.len() == 4);
        assert!(
            report.final_base_loss() < report.base_losses[0],
            "loss must decrease: {:?}",
            report.base_losses
        );
    }

    #[test]
    fn medusa_training_engages_heads() {
        let seqs = toy_sequences(false, 4);
        let tc = TrainConfig {
            epochs: 3,
            ..TrainConfig::paper_defaults(TrainMethod::Medusa)
        };
        let (model, report) = train(tiny_cfg(4), &seqs, &tc);
        assert!(
            report.head_losses.iter().any(|&l| l > 0.0),
            "heads must incur loss"
        );
        assert_eq!(model.n_heads(), 4);
    }

    #[test]
    fn ours_supervises_fewer_head_positions_than_medusa() {
        let tagged = toy_sequences(true, 2);
        let n_heads = 6;
        let ours_grid = TrainMethod::Ours.labels(&tagged[0], n_heads);
        let medusa_grid = TrainMethod::Medusa.labels(&tagged[0], n_heads);
        let count = |g: &LabelGrid| -> usize {
            (0..g.seq_len())
                .map(|s| g.targets_at(s).filter(|&(h, _)| h > 0).count())
                .sum()
        };
        assert!(
            count(&ours_grid) < count(&medusa_grid),
            "syntax masking must reduce head supervision"
        );
    }

    #[test]
    #[should_panic(expected = "requires Medusa heads")]
    fn medusa_training_without_heads_panics() {
        let seqs = toy_sequences(false, 1);
        let tc = TrainConfig::paper_defaults(TrainMethod::Medusa);
        let _ = train(tiny_cfg(0), &seqs, &tc);
    }

    #[test]
    fn training_is_deterministic() {
        let seqs = toy_sequences(true, 3);
        let tc = TrainConfig {
            epochs: 1,
            ..TrainConfig::paper_defaults(TrainMethod::Ours)
        };
        let (a, ra) = train(tiny_cfg(3), &seqs, &tc);
        let (b, rb) = train(tiny_cfg(3), &seqs, &tc);
        assert_eq!(ra, rb);
        assert_eq!(a.logits(&[10, 20]), b.logits(&[10, 20]));
    }

    #[test]
    fn lambda_ramp_keeps_early_head_weight_small() {
        // Indirect check: with one epoch, head loss (weighted) must stay
        // well below base loss since λ ramps from 0.
        let seqs = toy_sequences(false, 3);
        let tc = TrainConfig {
            epochs: 1,
            ..TrainConfig::paper_defaults(TrainMethod::Medusa)
        };
        let (_, report) = train(tiny_cfg(4), &seqs, &tc);
        assert!(report.head_losses[0] < report.base_losses[0]);
    }

    #[test]
    fn medusa1_freezes_the_backbone() {
        let seqs = toy_sequences(false, 3);
        let cfg = tiny_cfg(3);
        let fresh = verispec_lm::MlpLm::new(cfg);
        let baseline_logits = fresh.logits(&[10, 20]);

        let tc = TrainConfig {
            epochs: 2,
            ..TrainConfig::medusa1_defaults()
        };
        let (trained, report) = train(cfg, &seqs, &tc);
        // Base head logits unchanged (backbone frozen).
        assert_eq!(trained.logits(&[10, 20]), baseline_logits);
        // Heads did train.
        assert!(report.head_losses.iter().any(|&l| l > 0.0));
        let before = fresh.multi_logits(&[10, 20]);
        let after = trained.multi_logits(&[10, 20]);
        assert_ne!(before[1], after[1], "head 1 must move under Medusa-1");
    }

    #[test]
    fn short_sequences_are_skipped_gracefully() {
        let seqs = vec![vec![5u32], vec![], vec![7, 8, 9, 10, 11]];
        let tc = TrainConfig {
            epochs: 1,
            ..TrainConfig::paper_defaults(TrainMethod::Ntp)
        };
        let (_, report) = train(tiny_cfg(0), &seqs, &tc);
        assert_eq!(report.positions[0], 4, "only the long sequence contributes");
    }
}
