//! Classical draft-model speculative decoding (Leviathan et al. 2023,
//! paper §II-C background).
//!
//! A cheap *draft* model proposes a block of `gamma` tokens; the *target*
//! model verifies them with the rejection rule that preserves the target
//! distribution exactly:
//!
//! * accept draft token `x` with probability `min(1, p(x)/q(x))`;
//! * on the first rejection, resample from `normalize(max(0, p − q))`;
//! * if every draft token is accepted, sample one bonus token from `p`.
//!
//! Both models are driven through persistent
//! [`verispec_lm::DecodeSession`]s: the draft session extends
//! incrementally while proposing, the target scores all `γ + 1`
//! verification positions with a single
//! [`verispec_lm::DecodeSession::verify_batch`] call (the original
//! draft-verify formulation: K speculated positions plus the bonus
//! position verified in one forward), and both sessions roll back to
//! the committed prefix on rejection.
//!
//! VeriSpec uses the n-gram model as the draft and the MLP as the target.
//! This engine exists as the paper's point of comparison for why MEDUSA
//! heads (no separate draft model to maintain) are preferable; its
//! acceptance rate and speedup are measured in `bench/draft_spec`.

use crate::decode::DecodeOutput;
use serde::{Deserialize, Serialize};
use verispec_lm::{GpuCostModel, LanguageModel, TokenId};
use verispec_tokenizer::special;

/// Configuration for draft-model speculative decoding.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DraftConfig {
    /// Number of tokens the draft model proposes per step.
    pub gamma: usize,
    /// Maximum generated tokens.
    pub max_tokens: usize,
    /// Sampling temperature applied to both models (1.0 = untempered).
    pub temperature: f32,
    /// End-of-sequence token.
    pub eos: TokenId,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DraftConfig {
    fn default() -> Self {
        Self {
            gamma: 4,
            max_tokens: 256,
            temperature: 1.0,
            eos: special::EOS,
            seed: 0,
        }
    }
}

/// Statistics of a draft-speculative run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DraftStats {
    /// Draft tokens proposed in total.
    pub proposed: usize,
    /// Draft tokens accepted by the target.
    pub accepted: usize,
}

impl DraftStats {
    /// Fraction of proposed tokens accepted.
    pub fn acceptance_rate(&self) -> f64 {
        if self.proposed == 0 {
            0.0
        } else {
            self.accepted as f64 / self.proposed as f64
        }
    }
}

pub(crate) fn tempered(probs: &mut [f32], temperature: f32) {
    if (temperature - 1.0).abs() < f32::EPSILON {
        return;
    }
    for p in probs.iter_mut() {
        *p = p.max(f32::MIN_POSITIVE).powf(1.0 / temperature);
    }
    let sum: f32 = probs.iter().sum();
    probs.iter_mut().for_each(|p| *p /= sum);
}

/// Runs draft-model speculative decoding; returns the decode output and
/// acceptance statistics.
///
/// A thin loop over [`crate::step::Stepper`], so the serial path and a
/// scheduler-driven served path execute the same per-step code.
///
/// # Panics
///
/// Panics if `cfg.gamma == 0`.
pub fn decode_draft_speculative(
    target: &dyn LanguageModel,
    draft: &dyn LanguageModel,
    prompt: &[TokenId],
    cfg: &DraftConfig,
    cost: &GpuCostModel,
) -> (DecodeOutput, DraftStats) {
    let mut stepper = crate::step::Stepper::draft_verify(target, draft, prompt, *cfg);
    while stepper.step(cost) {}
    let stats = stepper.draft_stats().expect("draft stepper tracks stats");
    (stepper.into_output(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use verispec_lm::NgramLm;

    fn cyclic_ngram(order: usize, vocab: usize, period: usize) -> NgramLm {
        let mut lm = NgramLm::new(order, vocab);
        let seq: Vec<TokenId> = (0..200).map(|i| 6 + (i % period) as TokenId).collect();
        lm.train_sequence(&seq);
        lm
    }

    #[test]
    fn identical_models_accept_almost_everything() {
        let target = cyclic_ngram(3, 12, 3);
        let draft = cyclic_ngram(3, 12, 3);
        let cfg = DraftConfig {
            max_tokens: 40,
            ..Default::default()
        };
        let (out, stats) = decode_draft_speculative(
            &target,
            &draft,
            &[6, 7, 8],
            &cfg,
            &GpuCostModel::codellama_like(),
        );
        assert_eq!(out.tokens.len(), 40);
        assert!(
            stats.acceptance_rate() > 0.9,
            "identical models should agree: {}",
            stats.acceptance_rate()
        );
        assert!(out.steps < 40, "speculation must save steps");
    }

    #[test]
    fn weak_draft_still_produces_target_like_text() {
        let target = cyclic_ngram(3, 12, 3);
        let draft = NgramLm::new(1, 12); // untrained, uniform-ish
        let cfg = DraftConfig {
            max_tokens: 30,
            seed: 4,
            ..Default::default()
        };
        let (out, stats) = decode_draft_speculative(
            &target,
            &draft,
            &[6, 7, 8],
            &cfg,
            &GpuCostModel::codellama_like(),
        );
        assert_eq!(out.tokens.len(), 30);
        assert!(
            stats.acceptance_rate() < 0.9,
            "uniform draft should get rejected often"
        );
        // Output should mostly follow the target's cycle 6,7,8.
        let in_cycle = out.tokens.iter().filter(|&&t| (6..=8).contains(&t)).count();
        assert!(in_cycle as f64 > 0.8 * out.tokens.len() as f64);
    }

    #[test]
    fn deterministic_given_seed() {
        let target = cyclic_ngram(3, 12, 4);
        let draft = cyclic_ngram(2, 12, 4);
        let cfg = DraftConfig {
            max_tokens: 25,
            seed: 9,
            ..Default::default()
        };
        let cost = GpuCostModel::codellama_like();
        let (a, _) = decode_draft_speculative(&target, &draft, &[6], &cfg, &cost);
        let (b, _) = decode_draft_speculative(&target, &draft, &[6], &cfg, &cost);
        assert_eq!(a.tokens, b.tokens);
    }

    #[test]
    fn respects_max_tokens() {
        let target = cyclic_ngram(3, 12, 3);
        let draft = cyclic_ngram(3, 12, 3);
        let cfg = DraftConfig {
            max_tokens: 7,
            gamma: 5,
            ..Default::default()
        };
        let (out, _) =
            decode_draft_speculative(&target, &draft, &[6], &cfg, &GpuCostModel::codellama_like());
        assert!(out.tokens.len() <= 7);
    }

    #[test]
    fn acceptance_rate_handles_empty() {
        assert_eq!(DraftStats::default().acceptance_rate(), 0.0);
    }
}
