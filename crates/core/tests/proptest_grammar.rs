//! Property tests for the grammar-constrained speculative engine.
//!
//! Invariants:
//! * under greedy decoding with a fully-permissive oracle the grammar
//!   engine is lossless: identical token stream to NTP (and hence to
//!   Medusa/Ours) — pruning dead tails and widening never change which
//!   greedy tokens get committed;
//! * an all-lethal vocabulary (no informative token ever viable; the
//!   recovering advance keeps resetting the state) degrades the engine
//!   to plain syntax-aligned speculation: still lossless;
//! * the per-step prune record is consistent with the step trace, and
//!   surviving candidates never exceed the configured shape's budget;
//! * sampled grammar decoding is seed-reproducible.

use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use verispec_core::{decode_grammar_speculative, decode_ntp, DecodeConfig, SpecShape, Stepper};
use verispec_grammar::GrammarOracle;
use verispec_lm::{GpuCostModel, LanguageModel, Sampling, TokenId};
use verispec_tokenizer::special;

/// Deterministic pseudo-random LM (same construction as
/// `proptest_decode.rs`): logits are a pure function of the recent
/// prefix, a per-model seed, and the head index.
#[derive(Debug)]
struct HashLm {
    vocab: usize,
    n_heads: usize,
    seed: u64,
    frag_boost: f32,
}

impl HashLm {
    fn logits_for(&self, prefix: &[TokenId], head: usize) -> Vec<f32> {
        let mut h = DefaultHasher::new();
        self.seed.hash(&mut h);
        head.hash(&mut h);
        for t in prefix.iter().rev().take(4) {
            t.hash(&mut h);
        }
        let base = h.finish();
        (0..self.vocab)
            .map(|v| {
                let mut hv = DefaultHasher::new();
                base.hash(&mut hv);
                v.hash(&mut hv);
                let raw = (hv.finish() % 1000) as f32 / 125.0;
                if v as TokenId == special::FRAG {
                    raw + self.frag_boost
                } else {
                    raw
                }
            })
            .collect()
    }
}

impl LanguageModel for HashLm {
    fn vocab_size(&self) -> usize {
        self.vocab
    }

    fn n_extra_heads(&self) -> usize {
        self.n_heads
    }

    fn logits(&self, prefix: &[TokenId]) -> Vec<f32> {
        self.logits_for(prefix, 0)
    }

    fn multi_logits(&self, prefix: &[TokenId]) -> Vec<Vec<f32>> {
        (0..=self.n_heads)
            .map(|h| self.logits_for(prefix, h))
            .collect()
    }
}

fn any_model() -> impl Strategy<Value = HashLm> {
    (8usize..40, 1usize..8, any::<u64>(), 0.0f32..6.0).prop_map(
        |(vocab, n_heads, seed, frag_boost)| HashLm {
            vocab,
            n_heads,
            seed,
            frag_boost,
        },
    )
}

/// An oracle where every non-special token is a benign identifier byte:
/// nothing is ever non-viable, so filtering is a no-op and only the
/// dead-tail prune + widening distinguish the engine from plain "Ours".
fn permissive_oracle(vocab: usize) -> GrammarOracle {
    let bytes = (0..vocab)
        .map(|id| if id < 5 { Vec::new() } else { b"a".to_vec() })
        .collect();
    GrammarOracle::new(bytes)
}

/// An oracle where every non-special token is a lethal control byte:
/// the recovering advance resets the state after each kill, and no
/// informative token is ever viable — exercising the documented
/// degradation where the engine keeps the model's own draws.
fn lethal_oracle(vocab: usize) -> GrammarOracle {
    let bytes = (0..vocab)
        .map(|id| if id < 5 { Vec::new() } else { vec![0x07] })
        .collect();
    GrammarOracle::new(bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn grammar_greedy_is_lossless_permissive_and_dead(
        model in any_model(),
        prompt in prop::collection::vec(5u32..20, 1..6),
        max_tokens in 1usize..60,
        tree_k in 1usize..4,
    ) {
        let cost = GpuCostModel::codellama_like();
        let cfg = DecodeConfig {
            max_tokens,
            tree: Some(vec![tree_k; 3]),
            ..Default::default()
        };
        let ntp = decode_ntp(&model, &prompt, &cfg, &cost);

        let permissive = permissive_oracle(model.vocab.max(20));
        let g = decode_grammar_speculative(&model, &permissive, &prompt, &cfg, &cost);
        prop_assert_eq!(&ntp.tokens, &g.tokens, "grammar greedy must match ntp greedy");
        prop_assert!(g.steps <= ntp.steps);

        // Cover the whole prompt token range (prompt ids can exceed the
        // model vocab): out-of-range ids are byte-free to the oracle and
        // would leave the "lethal" state alive.
        let lethal = lethal_oracle(model.vocab.max(20));
        let d = decode_grammar_speculative(&model, &lethal, &prompt, &cfg, &cost);
        prop_assert_eq!(&ntp.tokens, &d.tokens, "dead-state grammar must match ntp greedy");
        prop_assert!(d.steps <= ntp.steps);
    }

    #[test]
    fn grammar_steps_end_on_boundaries(
        model in any_model(),
        prompt in prop::collection::vec(5u32..20, 1..6),
    ) {
        let cost = GpuCostModel::codet5p_like();
        // syntax_aligned is forced on by the constructor even when the
        // config leaves it off.
        let cfg = DecodeConfig { max_tokens: 48, tree: Some(vec![2, 2]), ..Default::default() };
        let oracle = permissive_oracle(model.vocab.max(20));
        let out = decode_grammar_speculative(&model, &oracle, &prompt, &cfg, &cost);
        for (i, st) in out.trace.iter().enumerate() {
            if st.committed.len() > 1 && i + 1 < out.trace.len() {
                prop_assert!(
                    st.fragment_complete,
                    "step {i} committed {:?} without boundary",
                    st.committed
                );
            }
        }
    }

    #[test]
    fn prune_record_is_consistent_and_within_budget(
        model in any_model(),
        prompt in prop::collection::vec(5u32..20, 1..6),
        tree_k in 1usize..4,
        seed in any::<u64>(),
    ) {
        let cost = GpuCostModel::codellama_like();
        let cfg = DecodeConfig {
            max_tokens: 40,
            tree: Some(vec![tree_k; 3]),
            seed,
            ..Default::default()
        };
        let oracle = permissive_oracle(model.vocab.max(20));
        let mut stepper = Stepper::grammar_speculative(&model, &oracle, &prompt, cfg);
        let budget = stepper
            .base_shape()
            .expect("speculative steppers have a base shape")
            .candidate_tokens();
        while stepper.step(&cost) {
            let record = stepper.last_prune().expect("grammar steppers record prunes");
            let step = stepper.output().trace.last().expect("stepped");
            // What propose stored (and the trace counts as speculated)
            // is exactly the surviving candidate set.
            prop_assert_eq!(record.surviving, step.speculated);
            prop_assert_eq!(record.considered, record.pruned + record.surviving);
            // Widening re-spends freed slots but never exceeds the
            // shape's original candidate budget — serving-engine cost
            // accounting stays an upper bound.
            prop_assert!(
                record.surviving <= budget,
                "surviving {} over budget {}",
                record.surviving,
                budget
            );
            if let Some(SpecShape::Tree { .. }) = stepper.last_shape() {
                prop_assert!(record.considered >= record.surviving);
            }
        }
        prop_assert!(stepper.output().tokens.len() <= 40);
    }

    #[test]
    fn sampled_grammar_decode_is_reproducible(
        model in any_model(),
        prompt in prop::collection::vec(5u32..20, 1..5),
        seed in any::<u64>(),
    ) {
        let cost = GpuCostModel::codellama_like();
        let cfg = DecodeConfig {
            max_tokens: 32,
            sampling: Sampling::temperature(0.8),
            tree: Some(vec![2, 2]),
            seed,
            ..Default::default()
        };
        let oracle = permissive_oracle(model.vocab.max(20));
        let a = decode_grammar_speculative(&model, &oracle, &prompt, &cfg, &cost);
        let b = decode_grammar_speculative(&model, &oracle, &prompt, &cfg, &cost);
        prop_assert_eq!(a.tokens, b.tokens);
    }
}
