//! Property tests for classical draft-model speculative decoding: the
//! rejection rule preserves budgets, stats are consistent, and identical
//! draft/target pairs achieve near-total acceptance.

use proptest::prelude::*;
use verispec_core::{decode_draft_speculative, DraftConfig};
use verispec_lm::{GpuCostModel, NgramLm, TokenId};

fn trained_ngram(order: usize, vocab: usize, seqs: &[Vec<TokenId>]) -> NgramLm {
    let mut lm = NgramLm::new(order, vocab);
    for s in seqs {
        lm.train_sequence(s);
    }
    lm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn draft_spec_respects_budgets(
        seq in prop::collection::vec(5u32..15, 10..80),
        gamma in 1usize..8,
        max_tokens in 1usize..64,
        seed in any::<u64>(),
    ) {
        let target = trained_ngram(3, 16, std::slice::from_ref(&seq));
        let draft = trained_ngram(2, 16, std::slice::from_ref(&seq));
        let cfg = DraftConfig { gamma, max_tokens, seed, ..Default::default() };
        let (out, stats) = decode_draft_speculative(
            &target,
            &draft,
            &seq[..2.min(seq.len())],
            &cfg,
            &GpuCostModel::codellama_like(),
        );
        prop_assert!(out.tokens.len() <= max_tokens);
        prop_assert!(stats.accepted <= stats.proposed);
        prop_assert_eq!(out.steps, out.trace.len());
        let committed: usize = out.trace.iter().map(|t| t.committed.len()).sum();
        prop_assert_eq!(committed, out.tokens.len());
        // Each step commits at least one token until the budget is hit.
        prop_assert!(out.steps <= max_tokens);
    }

    #[test]
    fn identical_models_accept_most_proposals(
        period in 2usize..6,
        gamma in 2usize..6,
        seed in any::<u64>(),
    ) {
        let seq: Vec<TokenId> = (0..240).map(|i| 5 + (i % period) as TokenId).collect();
        let lm = trained_ngram(3, 16, std::slice::from_ref(&seq));
        let cfg = DraftConfig { gamma, max_tokens: 48, seed, ..Default::default() };
        let (_, stats) = decode_draft_speculative(
            &lm,
            &lm,
            &seq[..3],
            &cfg,
            &GpuCostModel::codellama_like(),
        );
        prop_assert!(
            stats.acceptance_rate() > 0.8,
            "self-speculation acceptance {}",
            stats.acceptance_rate()
        );
    }

    #[test]
    fn draft_spec_is_deterministic(
        seq in prop::collection::vec(5u32..15, 10..60),
        seed in any::<u64>(),
    ) {
        let target = trained_ngram(3, 16, std::slice::from_ref(&seq));
        let draft = trained_ngram(1, 16, std::slice::from_ref(&seq));
        let cfg = DraftConfig { gamma: 3, max_tokens: 32, seed, ..Default::default() };
        let cost = GpuCostModel::codet5p_like();
        let (a, sa) = decode_draft_speculative(&target, &draft, &seq[..1], &cfg, &cost);
        let (b, sb) = decode_draft_speculative(&target, &draft, &seq[..1], &cfg, &cost);
        prop_assert_eq!(a.tokens, b.tokens);
        prop_assert_eq!(sa, sb);
    }
}
