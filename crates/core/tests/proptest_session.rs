//! Property tests pinning the session/stateless equivalence contract:
//! every decoding engine must produce **token-for-token identical**
//! output whether the model is driven through its native cached
//! [`verispec_lm::DecodeSession`] or through the stateless
//! [`verispec_lm::Stateless`] shim (fresh recompute per query), across
//! random models, prompts, seeds, and configurations.
//!
//! This is the invariant the whole session layer rests on: sessions are
//! a performance mechanism, never a semantic one. The engines covered
//! are NTP, the MEDUSA top-1 chain, MEDUSA tree verification, the
//! syntax-aligned variant ("Ours"), and classical draft-model
//! speculation — under both greedy decoding and temperature sampling.

use proptest::prelude::*;
use verispec_core::{
    decode_draft_speculative, decode_ntp, decode_speculative, DecodeConfig, DraftConfig,
};
use verispec_lm::{GpuCostModel, MlpLm, MlpLmConfig, NgramLm, Sampling, Stateless, TokenId};

/// A random untrained MLP LM: logits are a deterministic function of
/// the init seed, so every case explores a different "model" without
/// paying for training.
fn any_mlp() -> impl Strategy<Value = MlpLm> {
    (10usize..48, 2usize..8, 1usize..7, 0usize..6, any::<u64>()).prop_map(
        |(vocab, d_emb, context, n_heads, seed)| {
            MlpLm::new(MlpLmConfig {
                vocab,
                d_emb,
                d_hidden: 2 * d_emb,
                context,
                n_heads,
                seed,
            })
        },
    )
}

fn any_sampling() -> impl Strategy<Value = Sampling> {
    prop_oneof![
        Just(Sampling::Greedy),
        (0.2f32..1.5).prop_map(Sampling::temperature),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Session-based decode must equal the stateless shim for all four
    /// single-model engines (NTP, chain, tree, syntax-aligned).
    #[test]
    fn session_decode_matches_stateless_shim(
        model in any_mlp(),
        prompt in prop::collection::vec(5u32..10, 1..6),
        max_tokens in 1usize..48,
        sampling in any_sampling(),
        seed in any::<u64>(),
        tree_k in 1usize..4,
    ) {
        let cost = GpuCostModel::codellama_like();
        let shim = Stateless(&model);
        let configs = [
            // NTP-adjacent chain (no tree), Medusa baseline.
            DecodeConfig { max_tokens, sampling, seed, ..Default::default() },
            // Syntax-aligned ("Ours").
            DecodeConfig {
                max_tokens, sampling, seed, syntax_aligned: true, ..Default::default()
            },
            // Tree verification.
            DecodeConfig {
                max_tokens, sampling, seed, tree: Some(vec![tree_k; 3]), ..Default::default()
            },
            // Tree + syntax alignment combined.
            DecodeConfig {
                max_tokens, sampling, seed, syntax_aligned: true,
                tree: Some(vec![tree_k; 2]), ..Default::default()
            },
        ];
        let ntp_a = decode_ntp(&model, &prompt, &configs[0], &cost);
        let ntp_b = decode_ntp(&shim, &prompt, &configs[0], &cost);
        prop_assert_eq!(&ntp_a.tokens, &ntp_b.tokens, "ntp diverged");
        prop_assert_eq!(ntp_a.steps, ntp_b.steps);
        for (ci, cfg) in configs.iter().enumerate() {
            let a = decode_speculative(&model, &prompt, cfg, &cost);
            let b = decode_speculative(&shim, &prompt, cfg, &cost);
            prop_assert_eq!(
                &a.tokens, &b.tokens,
                "speculative engine {} diverged (cfg {:?})", ci, cfg
            );
            prop_assert_eq!(a.steps, b.steps, "step counts diverged (cfg {})", ci);
            prop_assert_eq!(&a.trace, &b.trace, "traces diverged (cfg {})", ci);
        }
    }

    /// Draft-model speculation: both the target and the draft session
    /// paths must match the stateless shim, including acceptance stats.
    #[test]
    fn draft_decode_matches_stateless_shim(
        target_seq in prop::collection::vec(5u32..14, 10..60),
        draft_order in 1usize..4,
        gamma in 1usize..6,
        max_tokens in 1usize..40,
        seed in any::<u64>(),
    ) {
        let mut target = NgramLm::new(3, 16);
        target.train_sequence(&target_seq);
        let mut draft = NgramLm::new(draft_order, 16);
        draft.train_sequence(&target_seq);
        let cfg = DraftConfig { gamma, max_tokens, seed, ..Default::default() };
        let cost = GpuCostModel::codet5p_like();
        let prompt: Vec<TokenId> = target_seq[..2.min(target_seq.len())].to_vec();

        let (out_a, stats_a) =
            decode_draft_speculative(&target, &draft, &prompt, &cfg, &cost);
        let (out_b, stats_b) = decode_draft_speculative(
            &Stateless(&target),
            &Stateless(&draft),
            &prompt,
            &cfg,
            &cost,
        );
        prop_assert_eq!(out_a.tokens, out_b.tokens, "draft decode diverged");
        prop_assert_eq!(stats_a, stats_b, "acceptance stats diverged");
    }

    /// The raw session contract: after any interleaving of appends and
    /// rollbacks, session logits equal stateless logits of the same
    /// context, and `verify_batch` scores equal stateless forwards.
    #[test]
    fn session_state_never_drifts(
        model in any_mlp(),
        ops in prop::collection::vec((any::<bool>(), prop::collection::vec(3u32..9, 1..4)), 1..12),
        path_a in prop::collection::vec(3u32..9, 1..4),
        path_b in prop::collection::vec(3u32..9, 1..4),
    ) {
        use verispec_lm::LanguageModel;
        let mut session = model.session();
        let mut reference: Vec<TokenId> = Vec::new();
        for (rollback, tokens) in &ops {
            if *rollback && !reference.is_empty() {
                let keep = reference.len() / 2;
                session.truncate(keep);
                reference.truncate(keep);
            }
            session.append(tokens);
            reference.extend_from_slice(tokens);
            prop_assert_eq!(session.tokens(), reference.as_slice());
            prop_assert_eq!(session.logits(), model.logits(&reference));
        }
        let paths: Vec<&[TokenId]> = vec![&path_a, &path_b];
        for include_bonus in [true, false] {
            let scored = session.verify_batch(&paths, include_bonus);
            for (path, rows) in paths.iter().zip(&scored) {
                prop_assert_eq!(rows.len(), path.len() + usize::from(include_bonus));
                for (j, row) in rows.iter().enumerate() {
                    let mut ctx = reference.clone();
                    ctx.extend_from_slice(&path[..j]);
                    prop_assert_eq!(row, &model.logits(&ctx), "verify_batch drift at {}", j);
                }
            }
            // verify_batch must leave the session context untouched.
            prop_assert_eq!(session.tokens(), reference.as_slice());
        }
    }
}
