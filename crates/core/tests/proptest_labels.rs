//! Property tests: the paper's parallel label-masking algorithm is
//! equivalent to the per-column reference, for arbitrary token sequences
//! and head counts; plus invariants of the grids themselves.

use proptest::prelude::*;
use verispec_core::labels::LabelGrid;
use verispec_core::train::TrainMethod;
use verispec_lm::TokenId;
use verispec_tokenizer::special;

/// Random token sequences with a controllable density of [FRAG] markers.
fn tokens_strategy(max_len: usize) -> impl Strategy<Value = Vec<TokenId>> {
    prop::collection::vec((10u32..60, 0u8..10), 0..max_len).prop_map(|pairs| {
        let mut out = Vec::new();
        for (tok, frag_roll) in pairs {
            out.push(tok);
            if frag_roll < 3 {
                out.push(special::FRAG);
            }
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parallel_equals_reference(
        tokens in tokens_strategy(120),
        n_heads in 0usize..12,
    ) {
        let a = LabelGrid::syntax_enriched(&tokens, n_heads);
        let b = LabelGrid::syntax_enriched_parallel(&tokens, n_heads);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn base_row_unaffected_by_masking(
        tokens in tokens_strategy(80),
        n_heads in 1usize..8,
    ) {
        let plain = LabelGrid::plain(&tokens, n_heads);
        let ours = LabelGrid::syntax_enriched(&tokens, n_heads);
        for s in 0..tokens.len() {
            prop_assert_eq!(plain.label(0, s), ours.label(0, s));
        }
    }

    #[test]
    fn masking_only_adds_ignores(
        tokens in tokens_strategy(80),
        n_heads in 1usize..8,
    ) {
        let plain = LabelGrid::plain(&tokens, n_heads);
        let ours = LabelGrid::syntax_enriched(&tokens, n_heads);
        for h in 0..=n_heads {
            for s in 0..tokens.len() {
                let p = plain.label(h, s);
                let o = ours.label(h, s);
                prop_assert!(o == p || o == special::IGNORE,
                    "h={} s={}: {} -> {}", h, s, p, o);
            }
        }
    }

    #[test]
    fn supervised_span_ends_at_frag_or_plain_tail(
        tokens in tokens_strategy(80),
        n_heads in 2usize..8,
    ) {
        // In each column, if any head is IGNOREd by syntax masking while
        // its plain label was real, the last supervised head label must
        // be FRAG (the complete-fragment boundary).
        let plain = LabelGrid::plain(&tokens, n_heads);
        let ours = LabelGrid::syntax_enriched(&tokens, n_heads);
        for s in 0..tokens.len() {
            let mut syntax_masked = false;
            for h in 1..=n_heads {
                if ours.label(h, s) == special::IGNORE
                    && plain.label(h, s) != special::IGNORE
                {
                    syntax_masked = true;
                }
            }
            if syntax_masked {
                let last_supervised = (1..=n_heads)
                    .rev()
                    .find(|&h| ours.label(h, s) != special::IGNORE);
                if let Some(h) = last_supervised {
                    prop_assert_eq!(
                        ours.label(h, s), special::FRAG,
                        "column {} does not end on FRAG", s
                    );
                }
            }
        }
    }

    #[test]
    fn ignore_fraction_monotone_in_head_index(
        tokens in tokens_strategy(100),
        n_heads in 2usize..10,
    ) {
        let g = LabelGrid::syntax_enriched(&tokens, n_heads);
        for h in 1..n_heads {
            prop_assert!(
                g.ignore_fraction(h) <= g.ignore_fraction(h + 1) + 1e-9,
                "head {} fraction {} > head {} fraction {}",
                h, g.ignore_fraction(h), h + 1, g.ignore_fraction(h + 1)
            );
        }
    }

    #[test]
    fn ntp_labels_match_base_row_of_medusa(
        tokens in tokens_strategy(60),
    ) {
        let ntp = TrainMethod::Ntp.labels(&tokens, 0);
        let med = TrainMethod::Medusa.labels(&tokens, 5);
        for s in 0..tokens.len() {
            prop_assert_eq!(ntp.label(0, s), med.label(0, s));
        }
    }
}
