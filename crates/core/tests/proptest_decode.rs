//! Property tests for the decode engines using a deterministic
//! hash-driven mock language model — fast enough to explore hundreds of
//! random "models" without training anything.
//!
//! Invariants:
//! * greedy speculative decoding (Medusa and Ours) is lossless: it
//!   reproduces the greedy NTP token stream exactly, for *any* model;
//! * speculative decoding never takes more steps than NTP;
//! * with syntax alignment every multi-token step ends on `[FRAG]`/EOS;
//! * token budgets are always respected.

use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use verispec_core::{decode_ntp, decode_speculative, DecodeConfig};
use verispec_lm::{GpuCostModel, LanguageModel, Sampling, TokenId};
use verispec_tokenizer::special;

/// A deterministic pseudo-random LM: logits are a pure function of the
/// recent prefix, a per-model seed, and the head index.
#[derive(Debug)]
struct HashLm {
    vocab: usize,
    n_heads: usize,
    seed: u64,
    /// Probability weight boost for FRAG, making fragmented streams
    /// likely (exercises the integrity check).
    frag_boost: f32,
}

impl HashLm {
    fn logits_for(&self, prefix: &[TokenId], head: usize) -> Vec<f32> {
        let mut h = DefaultHasher::new();
        self.seed.hash(&mut h);
        head.hash(&mut h);
        // Only the last 4 tokens matter: heads at different offsets look
        // at the same context, so head predictions often align with what
        // the base model later wants — realistic speculation.
        for t in prefix.iter().rev().take(4) {
            t.hash(&mut h);
        }
        let base = h.finish();
        (0..self.vocab)
            .map(|v| {
                let mut hv = DefaultHasher::new();
                base.hash(&mut hv);
                v.hash(&mut hv);
                let raw = (hv.finish() % 1000) as f32 / 125.0;
                if v as TokenId == special::FRAG {
                    raw + self.frag_boost
                } else {
                    raw
                }
            })
            .collect()
    }
}

impl LanguageModel for HashLm {
    fn vocab_size(&self) -> usize {
        self.vocab
    }

    fn n_extra_heads(&self) -> usize {
        self.n_heads
    }

    fn logits(&self, prefix: &[TokenId]) -> Vec<f32> {
        self.logits_for(prefix, 0)
    }

    fn multi_logits(&self, prefix: &[TokenId]) -> Vec<Vec<f32>> {
        (0..=self.n_heads)
            .map(|h| self.logits_for(prefix, h))
            .collect()
    }
}

fn any_model() -> impl Strategy<Value = HashLm> {
    (8usize..40, 0usize..8, any::<u64>(), 0.0f32..6.0).prop_map(
        |(vocab, n_heads, seed, frag_boost)| HashLm {
            vocab,
            n_heads,
            seed,
            frag_boost,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn greedy_speculation_is_lossless(
        model in any_model(),
        prompt in prop::collection::vec(5u32..20, 1..6),
        max_tokens in 1usize..60,
        tree_k in 1usize..4,
    ) {
        let cost = GpuCostModel::codellama_like();
        let cfg = DecodeConfig { max_tokens, ..Default::default() };
        let ntp = decode_ntp(&model, &prompt, &cfg, &cost);
        let medusa = decode_speculative(&model, &prompt, &cfg, &cost);
        prop_assert_eq!(&ntp.tokens, &medusa.tokens, "medusa greedy must match ntp greedy");
        let ours_cfg = DecodeConfig { syntax_aligned: true, ..cfg.clone() };
        let ours = decode_speculative(&model, &prompt, &ours_cfg, &cost);
        prop_assert_eq!(&ntp.tokens, &ours.tokens, "ours greedy must match ntp greedy");
        prop_assert!(medusa.steps <= ntp.steps);
        prop_assert!(ours.steps <= ntp.steps);
        // Truncation can only shorten the span committed from a given
        // position. Only the first step starts from the same position in
        // both decoders — afterwards they diverge, and global step totals
        // are not monotone (same caveat as the tree comparison below).
        if let (Some(m0), Some(o0)) = (medusa.trace.first(), ours.trace.first()) {
            prop_assert!(
                o0.committed.len() <= m0.committed.len(),
                "truncation cannot lengthen a step"
            );
        }
        // Tree candidates keep losslessness too. (No global step-count
        // comparison: committing more per step moves the decoder to
        // different positions, so step totals are not monotone in the
        // candidate budget.)
        let tree_cfg = DecodeConfig { tree: Some(vec![tree_k; 3]), ..cfg };
        let tree = decode_speculative(&model, &prompt, &tree_cfg, &cost);
        prop_assert_eq!(&ntp.tokens, &tree.tokens, "tree greedy must match ntp greedy");
        prop_assert!(tree.steps <= ntp.steps);
    }

    #[test]
    fn syntax_aligned_steps_end_on_boundaries(
        model in any_model(),
        prompt in prop::collection::vec(5u32..20, 1..6),
    ) {
        let cost = GpuCostModel::codet5p_like();
        let cfg = DecodeConfig { max_tokens: 48, syntax_aligned: true, ..Default::default() };
        let out = decode_speculative(&model, &prompt, &cfg, &cost);
        for (i, st) in out.trace.iter().enumerate() {
            if st.committed.len() > 1 && i + 1 < out.trace.len() {
                prop_assert!(
                    st.fragment_complete,
                    "step {i} committed {:?} without boundary",
                    st.committed
                );
            }
        }
    }

    #[test]
    fn budgets_and_bookkeeping_hold(
        model in any_model(),
        prompt in prop::collection::vec(5u32..20, 1..6),
        max_tokens in 1usize..50,
        temp in 0.2f32..1.5,
        seed in any::<u64>(),
    ) {
        let cost = GpuCostModel::codellama_like();
        let cfg = DecodeConfig {
            max_tokens,
            sampling: Sampling::Temperature { temperature: temp, top_k: 0 },
            seed,
            syntax_aligned: true,
            ..Default::default()
        };
        let out = decode_speculative(&model, &prompt, &cfg, &cost);
        prop_assert!(out.tokens.len() <= max_tokens);
        prop_assert_eq!(out.steps, out.trace.len());
        let committed: usize = out.trace.iter().map(|t| t.committed.len()).sum();
        prop_assert_eq!(committed, out.tokens.len());
        prop_assert_eq!(out.clock.tokens, out.tokens.len());
        prop_assert!(out.clock.seconds > 0.0 || out.tokens.is_empty());
        // EOS, if present, is terminal.
        if let Some(pos) = out.tokens.iter().position(|&t| t == special::EOS) {
            prop_assert_eq!(pos, out.tokens.len() - 1);
        }
    }

    #[test]
    fn sampled_decode_is_reproducible(
        model in any_model(),
        prompt in prop::collection::vec(5u32..20, 1..5),
        seed in any::<u64>(),
    ) {
        let cost = GpuCostModel::codellama_like();
        let cfg = DecodeConfig {
            max_tokens: 32,
            sampling: Sampling::temperature(0.8),
            seed,
            ..Default::default()
        };
        let a = decode_speculative(&model, &prompt, &cfg, &cost);
        let b = decode_speculative(&model, &prompt, &cfg, &cost);
        prop_assert_eq!(a.tokens, b.tokens);
    }
}
