//! Edge-case tests for the judge: the failure taxonomy a testbench
//! compile would produce, exercised through realistic mutations of
//! reference solutions.

use verispec_eval::benchmarks::{rtllm_sim, vgen_sim};
use verispec_eval::judge::{judge, Verdict};

#[test]
fn every_reference_judges_pass_with_multiple_seeds() {
    for bench in [rtllm_sim(), vgen_sim()] {
        for p in bench.problems.iter().take(10) {
            let completion = match &p.plain_header {
                Some(h) => p.module.source.strip_prefix(h.as_str()).expect("prefix"),
                None => p.module.source.as_str(),
            };
            for seed in [1u64, 99, 12345] {
                assert_eq!(
                    judge(completion, p, seed),
                    Verdict::Pass,
                    "{} seed {seed}",
                    p.id
                );
            }
        }
    }
}

#[test]
fn extra_trailing_module_is_tolerated_if_named_module_present() {
    // Models sometimes emit a second junk module; iverilog still compiles
    // as long as the testbench's target module exists and is correct.
    let bench = rtllm_sim();
    let p = &bench.problems[0];
    let code = format!(
        "{}\nmodule extra_junk(input x, output y);\n    assign y = x;\nendmodule\n",
        p.module.source
    );
    assert_eq!(judge(&code, p, 5), Verdict::Pass, "{}", p.id);
}

#[test]
fn missing_port_is_syntax_fail() {
    let bench = rtllm_sim();
    // Find a combinational problem with >= 2 inputs and drop one input
    // from the port list (keeping the body) — elaboration then sees an
    // undeclared identifier.
    let p = bench
        .problems
        .iter()
        .find(|p| p.module.interface.clock.is_none() && p.module.interface.inputs.len() >= 2)
        .expect("combinational problem");
    let victim = &p.module.interface.inputs[0].name;
    // Remove the port from the header line only.
    let mut lines: Vec<String> = p.module.source.lines().map(String::from).collect();
    let before = lines.len();
    lines.retain(|l| !(l.trim_start().starts_with("input") && l.contains(victim.as_str())));
    assert!(lines.len() < before, "port line must have been removed");
    let code = lines.join("\n");
    let v = judge(&code, p, 5);
    assert!(matches!(v, Verdict::SyntaxFail(_)), "{}: {v:?}", p.id);
}

#[test]
fn stuck_output_is_functional_fail() {
    let bench = rtllm_sim();
    let p = bench
        .problems
        .iter()
        .find(|p| p.module.family == "comparator")
        .expect("comparator in suite");
    // Replace the whole body with constant drivers: compiles, wrong.
    let header_end = p.module.source.find(';').expect("header");
    let header = &p.module.source[..=header_end];
    let outs = &p.module.interface.outputs;
    let mut body = String::new();
    for o in outs {
        body.push_str(&format!("\n    assign {} = 0;", o.name));
    }
    let code = format!("{header}{body}\nendmodule\n");
    let v = judge(&code, p, 5);
    assert!(
        matches!(v, Verdict::FunctionalFail(_)),
        "{}: {v:?}\n{code}",
        p.id
    );
}

#[test]
fn empty_and_whitespace_generations_fail_syntax() {
    let p = &rtllm_sim().problems[0];
    for code in ["", "    \n\n   ", "endmodule", "// just a comment"] {
        let v = judge(code, p, 5);
        assert!(matches!(v, Verdict::SyntaxFail(_)), "{code:?} -> {v:?}");
    }
}

#[test]
fn vgen_body_with_wrong_width_logic_fails_functionally() {
    let bench = vgen_sim();
    let p = bench
        .problems
        .iter()
        .find(|p| p.module.family == "bin2gray")
        .expect("bin2gray in suite");
    // gray = bin ^ (bin << 1) instead of >> 1: compiles, wrong values.
    let header = p.plain_header.as_ref().expect("header");
    let body = p
        .module
        .source
        .strip_prefix(header.as_str())
        .expect("prefix")
        .replace(">> 1", "<< 1")
        .replace(">>1", "<<1");
    let v = judge(&body, p, 5);
    assert!(matches!(v, Verdict::FunctionalFail(_)), "{}: {v:?}", p.id);
}
