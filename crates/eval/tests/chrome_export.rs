//! Acceptance test for the Chrome trace-event exporter: a 4-worker
//! paced dispatch run's event stream must export to schema-valid
//! trace-event JSON — it parses, every entry carries a known phase
//! (`ph`) with the fields that phase requires, all four workers appear
//! as processes, and on every request track the complete spans nest
//! properly (any two overlapping spans are parent/child, never
//! partially overlapping).

use serde::Value;
use verispec_core::DecodeConfig;
use verispec_lm::{GpuCostModel, MlpLm, MlpLmConfig, NgramLm, TokenId};
use verispec_load::{run_dispatch_open_loop, ArrivalProcess, PromptFamily, RequestMix, Workload};
use verispec_serve::{DispatchConfig, EngineChoice, RoutePolicy, ServeConfig};
use verispec_trace::chrome_trace;

fn as_u64(v: &Value) -> Option<u64> {
    match *v {
        Value::UInt(u) => Some(u),
        Value::Int(i) => u64::try_from(i).ok(),
        _ => None,
    }
}

fn field<'a>(item: &'a Value, name: &str) -> Option<&'a Value> {
    item.field(name).ok()
}

/// Complete spans per (pid, tid) track: `(name, start, end)` in
/// ticks-as-microseconds.
type SpanTracks = std::collections::BTreeMap<(u64, u64), Vec<(String, u64, u64)>>;

#[test]
fn four_worker_paced_run_exports_schema_valid_chrome_trace() {
    let model = MlpLm::new(MlpLmConfig {
        vocab: 16,
        d_emb: 6,
        d_hidden: 12,
        context: 4,
        n_heads: 3,
        seed: 0xC0FFEE,
    });
    let mut draft = NgramLm::new(2, 16);
    let seq: Vec<TokenId> = (0..240).map(|i| 4 + (i % 7) as TokenId).collect();
    draft.train_sequence(&seq);
    let cost = GpuCostModel::codellama_like();
    let shared: Vec<TokenId> = vec![5, 6];

    let workload = Workload {
        process: ArrivalProcess::Poisson { rate: 1.0 },
        mix: RequestMix {
            engines: vec![
                (EngineChoice::Ntp, 1.0),
                (EngineChoice::MedusaTree(vec![2, 2]), 1.0),
                (
                    EngineChoice::SyntaxAligned {
                        tree: Some(vec![2, 2]),
                    },
                    2.0,
                ),
                (EngineChoice::DraftVerify { gamma: 3 }, 1.0),
            ],
            families: vec![(
                PromptFamily {
                    name: "short".into(),
                    prompts: vec![(vec![5, 6, 7], 6), (vec![5, 6, 8], 9)],
                },
                1.0,
            )],
            greedy_fraction: 0.5,
            temperature: (0.4, 1.0),
            base: DecodeConfig::default(),
            deadline_slack: Some(4.0),
        },
        count: 16,
        seed: 0xC480_3E17,
    };

    let run = run_dispatch_open_loop(
        &model,
        Some(&draft),
        Some(&shared),
        workload.requests(),
        &ServeConfig::concurrency(2),
        &DispatchConfig::new(4, RoutePolicy::JoinShortestQueue),
        &cost,
        None,
    );
    assert!(!run.events.is_empty(), "paced run produced no events");

    let json = chrome_trace(&run.events);
    let doc: Value = serde_json::from_str(&json).expect("export is valid JSON");
    let items = match doc.field("traceEvents").expect("traceEvents key") {
        Value::Seq(items) => items,
        other => panic!("traceEvents is {}, not an array", other.kind()),
    };
    assert!(!items.is_empty(), "export has no trace entries");

    // Per-entry schema: a known phase and the fields it requires.
    let mut processes = std::collections::BTreeSet::new();
    let mut spans = SpanTracks::new();
    for (i, item) in items.iter().enumerate() {
        let ph = field(item, "ph")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("entry {i}: `ph` missing"));
        let name = field(item, "name")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("entry {i}: `name` missing"));
        let pid = field(item, "pid")
            .and_then(as_u64)
            .unwrap_or_else(|| panic!("entry {i}: `pid` missing"));
        let tid = field(item, "tid")
            .and_then(as_u64)
            .unwrap_or_else(|| panic!("entry {i}: `tid` missing"));
        match ph {
            "M" => {
                if name == "process_name" {
                    processes.insert(pid);
                }
                assert!(field(item, "args").is_some(), "entry {i}: metadata args");
            }
            "X" => {
                let ts = field(item, "ts").and_then(as_u64).expect("span ts");
                let dur = field(item, "dur").and_then(as_u64).expect("span dur");
                spans
                    .entry((pid, tid))
                    .or_default()
                    .push((name.to_string(), ts, ts + dur));
            }
            "i" => {
                assert!(field(item, "ts").and_then(as_u64).is_some(), "instant ts");
                assert_eq!(
                    field(item, "s").and_then(Value::as_str),
                    Some("t"),
                    "entry {i}: instant scope"
                );
            }
            "C" => {
                assert!(field(item, "ts").and_then(as_u64).is_some(), "counter ts");
                assert!(field(item, "args").is_some(), "entry {i}: counter args");
            }
            other => panic!("entry {i}: unknown phase `{other}`"),
        }
    }
    assert_eq!(
        processes,
        (0u64..4).collect(),
        "all four workers must appear as processes"
    );

    // Per-track nesting: any two overlapping spans must be strictly
    // nested (one contains the other) — a partially overlapping pair
    // means the timeline reconstruction emitted a malformed hierarchy.
    let mut request_tracks = 0;
    for ((pid, tid), track) in &spans {
        assert!(
            track.iter().any(|(n, _, _)| n == "request"),
            "track {pid}/{tid} has phase spans but no `request` parent"
        );
        request_tracks += 1;
        let (_, rs, re) = track
            .iter()
            .find(|(n, _, _)| n == "request")
            .expect("request span");
        for (name, s, e) in track {
            assert!(
                rs <= s && e <= re,
                "track {pid}/{tid}: `{name}` span [{s}, {e}) escapes its \
                 `request` parent [{rs}, {re})"
            );
        }
        for (a, (an, a0, a1)) in track.iter().enumerate() {
            for (bn, b0, b1) in &track[a + 1..] {
                let overlap = a0 < b1 && b0 < a1;
                let nested = (a0 <= b0 && b1 <= a1) || (b0 <= a0 && a1 <= b1);
                assert!(
                    !overlap || nested,
                    "track {pid}/{tid}: `{an}` [{a0}, {a1}) and `{bn}` \
                     [{b0}, {b1}) partially overlap"
                );
            }
        }
    }
    assert_eq!(
        request_tracks,
        run.dispatch.completions.len(),
        "every served request must have a span track"
    );
}
