//! The simulation-backed quality gate (`BENCH_quality.json`): each
//! engine's generated fragments are staged through the semantic
//! pipeline — parse → elaborate (module + interface) → simulate
//! against the problem's golden model — at **equal candidate budget**,
//! alongside the realized acceptance rate the engine achieved while
//! generating them. This is where "speed and quality, all in one"
//! becomes measurable for the grammar layer: propose-time pruning must
//! raise the acceptance rate *without* costing semantic quality.
//!
//! Engine stack exercised per sample (eval layer on top):
//!
//! ```text
//!   quality gate          parse / elaborate / sim-pass rates + acceptance
//!     └ verispec-sim      run_combinational / run_sequential vs. golden
//!       └ decode engines  NTP | Medusa-tree | Ours-tree | Grammar-tree
//!         └ verispec-grammar  propose-time viability filter + dead-tail prune
//! ```
//!
//! All three speculative engines run the same [`QUALITY_TREE`] widths,
//! so the grammar row differs from the unconstrained `Ours-tree` row
//! only by the propose-time grammar layer — the comparison the
//! `bench_guard` gate pins (`Grammar-tree` acceptance strictly above
//! `Ours-tree`, parse/elaborate rates no worse).

use crate::benchmarks::{rtllm_sim, vgen_sim, Problem};
use crate::experiments::{parallel_map, sample_seed, Scale};
use crate::judge::{check_interface, JUDGE_VECTORS};
use crate::pipeline::{generate, generate_grammar, token_budget, ModelScale, Pipeline};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use verispec_core::{DecodeConfig, TrainMethod};
use verispec_data::Golden;
use verispec_grammar::GrammarOracle;
use verispec_lm::Sampling;
use verispec_sim::{elaborate, run_combinational, run_sequential, ResetSpec, SeqSpec};

/// Candidate-tree widths every speculative engine in the gate runs
/// (equal candidate budget: 2 + 2·2 = 6 candidate tokens per step).
pub const QUALITY_TREE: [usize; 2] = [2, 2];

/// Staged semantic outcome of one generated sample. The stages are
/// monotone by construction: `passed` implies `elaborated` implies
/// `parsed`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageOutcome {
    /// The completed source parses.
    pub parsed: bool,
    /// The expected module exists, elaborates, and exposes the
    /// interface the testbench instantiates.
    pub elaborated: bool,
    /// The design matches the golden model on every stimulus vector.
    pub passed: bool,
}

/// Stages one generated completion (code text, `[FRAG]` markers already
/// stripped) through parse → elaborate → simulate. Same protocol as
/// [`crate::judge::judge`], but reporting *where* the sample died
/// instead of folding parse and elaborate failures into one verdict.
pub fn stage_judge(code: &str, problem: &Problem, seed: u64) -> StageOutcome {
    let mut out = StageOutcome::default();
    // For VGen-style problems the header came from the prompt; the
    // model generated only the continuation.
    let full_source = format!("{}{}", problem.completion_prefix(), code);
    let Ok(file) = verispec_verilog::parse(&full_source) else {
        return out;
    };
    out.parsed = true;

    let want = &problem.module.name;
    let Some(module) = file.modules.iter().find(|m| &m.name == want) else {
        return out;
    };
    let Ok(design) = elaborate(module) else {
        return out;
    };
    if check_interface(&design, problem).is_err() {
        return out;
    }
    out.elaborated = true;

    let iface = &problem.module.interface;
    let mut rng = SmallRng::seed_from_u64(seed);
    let vectors = iface.random_stimuli(&mut rng, JUDGE_VECTORS);
    let result = match (&problem.module.golden, iface.clock.as_ref()) {
        (Golden::Comb(f), None) => run_combinational(&design, &vectors, |ins| f(ins)),
        (Golden::Seq(factory), Some(clock)) => {
            let spec = SeqSpec {
                clock: clock.clone(),
                reset: iface.reset.as_ref().map(|r| ResetSpec {
                    signal: r.signal.clone(),
                    active_low: r.active_low,
                    cycles: 2,
                }),
            };
            let mut golden = factory();
            run_sequential(&design, &spec, &vectors, |ins| golden(ins))
        }
        _ => return out,
    };
    out.passed = matches!(result, Ok(tb) if tb.passed);
    out
}

/// One engine's row of `BENCH_quality.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QualityGateRow {
    /// Engine name (`NTP`, `Medusa-tree`, `Ours-tree`, `Grammar-tree`).
    pub engine: String,
    /// Generated samples scored.
    pub samples: usize,
    /// Fraction of samples whose completed source parses.
    pub parse_rate: f64,
    /// Fraction that also elaborate with the testbench interface.
    pub elaborate_rate: f64,
    /// Fraction that also match the golden model on every vector.
    pub sim_pass_rate: f64,
    /// Candidate tokens the engine speculated (paid for) across all
    /// samples — for the grammar engine this is the *post-prune*
    /// count, the tokens actually sent to verification.
    pub speculated_tokens: usize,
    /// Speculated tokens the verifier accepted (committed beyond the
    /// per-step base token).
    pub accepted_spec_tokens: usize,
    /// `accepted_spec_tokens / speculated_tokens` (0 for NTP, which
    /// never speculates).
    pub realized_acceptance: f64,
}

/// Per-engine accumulator summed over problems and samples.
#[derive(Debug, Clone, Copy, Default)]
struct Accum {
    samples: usize,
    parsed: usize,
    elaborated: usize,
    passed: usize,
    speculated: usize,
    accepted_spec: usize,
}

impl Accum {
    fn merge(mut self, other: Accum) -> Accum {
        self.samples += other.samples;
        self.parsed += other.parsed;
        self.elaborated += other.elaborated;
        self.passed += other.passed;
        self.speculated += other.speculated;
        self.accepted_spec += other.accepted_spec;
        self
    }
}

/// The four engines the gate compares: `(row name, trained model's
/// regime, grammar layer on)`. `Grammar-tree` runs the same
/// Ours-trained model and tagged prompts as `Ours-tree`, so the two
/// rows differ only by propose-time pruning.
const GATE_ENGINES: [(&str, TrainMethod, bool); 4] = [
    ("NTP", TrainMethod::Ntp, false),
    ("Medusa-tree", TrainMethod::Medusa, false),
    ("Ours-tree", TrainMethod::Ours, false),
    ("Grammar-tree", TrainMethod::Ours, true),
];

/// Runs the quality gate: both benchmark suites (problem-limited by
/// the scale), `n_samples` temperature-pooled samples per problem, all
/// four engines at [`QUALITY_TREE`] candidate budget.
pub fn run_quality_gate(
    scale: &Scale,
    pipe: &Pipeline,
    model_scale: ModelScale,
) -> Vec<QualityGateRow> {
    let cost = model_scale.cost_model();
    let oracle = GrammarOracle::from_tokenizer(&pipe.tokenizer);
    let limit = scale.problem_limit.unwrap_or(usize::MAX);
    let mut problems: Vec<Problem> = Vec::new();
    for bench in [rtllm_sim(), vgen_sim()] {
        problems.extend(bench.problems.into_iter().take(limit));
    }

    GATE_ENGINES
        .iter()
        .map(|&(name, method, grammar)| {
            let model = pipe.model_for(model_scale, method, (1, 1));
            let per_problem = parallel_map(
                problems.iter().collect::<Vec<_>>(),
                scale.threads,
                |problem| {
                    let budget = token_budget(&pipe.tokenizer, problem, method);
                    let mut acc = Accum::default();
                    for sample in 0..scale.n_samples {
                        let temp = scale.temperatures[sample % scale.temperatures.len()];
                        let cfg = DecodeConfig {
                            max_tokens: budget,
                            sampling: Sampling::Temperature {
                                temperature: temp,
                                top_k: 0,
                            },
                            seed: sample_seed(&problem.id, sample, 31),
                            tree: Some(QUALITY_TREE.to_vec()),
                            ..Default::default()
                        };
                        let g = if grammar {
                            generate_grammar(&model, &pipe.tokenizer, &oracle, problem, &cfg, &cost)
                        } else {
                            generate(&model, &pipe.tokenizer, problem, method, &cfg, &cost)
                        };
                        let stages = stage_judge(&g.code, problem, 0xBEEF);
                        acc.samples += 1;
                        acc.parsed += stages.parsed as usize;
                        acc.elaborated += stages.elaborated as usize;
                        acc.passed += stages.passed as usize;
                        acc.speculated +=
                            g.output.trace.iter().map(|t| t.speculated).sum::<usize>();
                        acc.accepted_spec += g.output.tokens.len().saturating_sub(g.output.steps);
                    }
                    acc
                },
            );
            let t = per_problem.into_iter().fold(Accum::default(), Accum::merge);
            let rate = |n: usize| {
                if t.samples == 0 {
                    0.0
                } else {
                    n as f64 / t.samples as f64
                }
            };
            QualityGateRow {
                engine: name.to_string(),
                samples: t.samples,
                parse_rate: rate(t.parsed),
                elaborate_rate: rate(t.elaborated),
                sim_pass_rate: rate(t.passed),
                speculated_tokens: t.speculated,
                accepted_spec_tokens: t.accepted_spec,
                realized_acceptance: if t.speculated == 0 {
                    0.0
                } else {
                    t.accepted_spec as f64 / t.speculated as f64
                },
            }
        })
        .collect()
}

/// Renders the gate as a plain-text table.
pub fn render_quality_gate(rows: &[QualityGateRow]) -> String {
    let mut out = String::new();
    out.push_str("Quality gate (parse/elaborate/sim-pass rates, realized acceptance)\n");
    out.push_str(&format!(
        "{:<14} {:>7} {:>8} {:>8} {:>8} {:>11} {:>10}\n",
        "engine", "samples", "parse", "elab", "sim", "speculated", "accept"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>7} {:>8.3} {:>8.3} {:>8.3} {:>11} {:>10.3}\n",
            r.engine,
            r.samples,
            r.parse_rate,
            r.elaborate_rate,
            r.sim_pass_rate,
            r.speculated_tokens,
            r.realized_acceptance
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference solutions sail through every stage; garbage dies at
    /// parse; a flipped operator dies exactly at simulation.
    #[test]
    fn stages_are_monotone_and_discriminating() {
        let bench = rtllm_sim();
        let p = &bench.problems[0];
        let good = stage_judge(&p.module.source, p, 7);
        assert_eq!(
            good,
            StageOutcome {
                parsed: true,
                elaborated: true,
                passed: true
            }
        );

        let garbage = stage_judge("not verilog {{{", p, 7);
        assert_eq!(garbage, StageOutcome::default());

        let flip = bench
            .problems
            .iter()
            .find(|p| p.module.source.contains(" + "))
            .expect("an arithmetic problem");
        let wrong = stage_judge(&flip.module.source.replacen(" + ", " - ", 1), flip, 7);
        assert!(
            wrong.parsed && wrong.elaborated && !wrong.passed,
            "{wrong:?}"
        );
    }

    /// Every sample's stages stay monotone on arbitrary code.
    #[test]
    fn truncated_code_fails_before_simulation() {
        let bench = vgen_sim();
        let p = &bench.problems[0];
        let out = stage_judge("assign y = (a &", p, 7);
        assert!(!out.elaborated && !out.passed);
    }
}
