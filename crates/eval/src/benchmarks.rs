//! Benchmark suites: RTLLM-sim (29 problems) and VGen-sim (17 problems).
//!
//! The sizes are pinned by the paper's Pass-Rate quanta (Table I values
//! are multiples of 1/29 ≈ 3.45% and 1/17 ≈ 5.88%). RTLLM-style prompts
//! give only a high-level description; VGen-style prompts additionally
//! embed the module header, which the model continues — the paper calls
//! these "low-level prompts … the most challenging cases" and the header
//! seeding is why VGen scores run higher than RTLLM in Table I.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use verispec_data::families::all_families;
use verispec_data::{alpaca_prompt, GeneratedModule};
use verispec_verilog::fragment::fragmentize;
use verispec_verilog::significant::SignificantTokens;

/// How a benchmark phrases its prompts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PromptStyle {
    /// High-level description only (RTLLM-like).
    Rtllm,
    /// Description plus the module header to continue (VGen-like).
    Vgen,
}

/// One benchmark problem.
#[derive(Debug, Clone)]
pub struct Problem {
    /// Stable identifier (e.g. `rtllm_03_counter`).
    pub id: String,
    /// Prompt style.
    pub style: PromptStyle,
    /// Reference module (interface + golden model + canonical source).
    pub module: GeneratedModule,
    /// Plain module header (`module name (...);`), present for VGen style.
    pub plain_header: Option<String>,
    /// `[FRAG]`-tagged header for syntax-aligned models.
    pub tagged_header: Option<String>,
}

impl Problem {
    /// The full inference prompt for a plain-text model.
    pub fn prompt_plain(&self) -> String {
        let mut p = alpaca_prompt(&self.module.description);
        if let Some(h) = &self.plain_header {
            p.push_str(h);
        }
        p
    }

    /// The full inference prompt for a `[FRAG]`-trained model.
    pub fn prompt_tagged(&self) -> String {
        let mut p = alpaca_prompt(&self.module.description);
        if let Some(h) = &self.tagged_header {
            p.push_str(h);
        }
        p
    }

    /// Text the judge should prepend to the model's continuation (the
    /// header for VGen-style problems, already plain).
    pub fn completion_prefix(&self) -> &str {
        self.plain_header.as_deref().unwrap_or("")
    }
}

/// A named set of problems.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Suite name (`RTLLM-sim` / `VGen-sim`).
    pub name: &'static str,
    /// The problems.
    pub problems: Vec<Problem>,
}

/// Extracts the header (up to and including the port-list `;` and its
/// newline) from a module source.
fn header_of(source: &str) -> Option<String> {
    let semi = source.find(';')?;
    let rest = &source[semi + 1..];
    let nl = rest
        .find('\n')
        .map(|i| semi + 1 + i + 1)
        .unwrap_or(semi + 1);
    Some(source[..nl].to_string())
}

/// Extracts the tagged header: everything up to and including the first
/// `[FRAG];[FRAG]` plus trailing newline.
fn tagged_header_of(tagged: &str) -> Option<String> {
    let marker = "[FRAG];[FRAG]";
    let pos = tagged.find(marker)? + marker.len();
    let rest = &tagged[pos..];
    let nl = rest.find('\n').map(|i| pos + i + 1).unwrap_or(pos);
    Some(tagged[..nl].to_string())
}

fn build_problems(prefix: &str, style: PromptStyle, count: usize, seed: u64) -> Vec<Problem> {
    let families = all_families();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut problems = Vec::with_capacity(count);
    for i in 0..count {
        let (fname, gen) = families[i % families.len()];
        let mut module = gen(&mut rng);
        // Benchmark prompts follow the same convention as the training
        // corpus: the naming sentence closes the instruction.
        module.description = verispec_data::with_naming_tail(&module.description, &module.name);
        let (plain_header, tagged_header) = if style == PromptStyle::Vgen {
            let plain = header_of(&module.source);
            let tagged = verispec_verilog::parse(&module.source)
                .ok()
                .map(|file| SignificantTokens::from_source_file(&file))
                .and_then(|sig| fragmentize(&module.source, &sig).ok())
                .and_then(|t| tagged_header_of(&t));
            (plain, tagged)
        } else {
            (None, None)
        };
        problems.push(Problem {
            id: format!("{prefix}_{i:02}_{fname}"),
            style,
            module,
            plain_header,
            tagged_header,
        });
    }
    problems
}

/// The RTLLM-sim suite: 29 high-level-prompt problems.
pub fn rtllm_sim() -> Benchmark {
    Benchmark {
        name: "RTLLM-sim",
        problems: build_problems("rtllm", PromptStyle::Rtllm, 29, 0x52544C),
    }
}

/// The VGen-sim suite: 17 header-seeded problems.
pub fn vgen_sim() -> Benchmark {
    Benchmark {
        name: "VGen-sim",
        problems: build_problems("vgen", PromptStyle::Vgen, 17, 0x5647454E),
    }
}

/// Extra prompt set for the speed evaluation (the paper augments RTLLM
/// and VGen with GPT-4-generated prompts to reach 575; we draw more
/// samples from the same generator distribution).
pub fn speed_prompts(count: usize, seed: u64) -> Vec<Problem> {
    let half = count / 2;
    let mut v = build_problems("speed_r", PromptStyle::Rtllm, half, seed);
    v.extend(build_problems(
        "speed_v",
        PromptStyle::Vgen,
        count - half,
        seed ^ 0xABCD,
    ));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_paper_quanta() {
        assert_eq!(rtllm_sim().problems.len(), 29);
        assert_eq!(vgen_sim().problems.len(), 17);
    }

    #[test]
    fn suites_are_deterministic() {
        let a = rtllm_sim();
        let b = rtllm_sim();
        for (x, y) in a.problems.iter().zip(&b.problems) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.module.source, y.module.source);
        }
    }

    #[test]
    fn vgen_problems_carry_headers() {
        for p in vgen_sim().problems {
            let h = p.plain_header.as_ref().expect("plain header");
            assert!(h.starts_with("module "), "{h}");
            assert!(h.trim_end().ends_with(";"), "{h}");
            let th = p.tagged_header.as_ref().expect("tagged header");
            assert!(th.contains("[FRAG]module[FRAG]"), "{th}");
            assert!(th.trim_end().ends_with("[FRAG];[FRAG]"), "{th}");
            assert!(
                p.module.source.starts_with(h),
                "header must prefix the source"
            );
        }
    }

    #[test]
    fn rtllm_problems_have_no_headers() {
        for p in rtllm_sim().problems {
            assert!(p.plain_header.is_none());
            assert_eq!(p.completion_prefix(), "");
        }
    }

    #[test]
    fn prompts_end_with_response_marker_or_header() {
        let r = &rtllm_sim().problems[0];
        assert!(r.prompt_plain().ends_with("### Response:\n"));
        let v = &vgen_sim().problems[0];
        assert!(v.prompt_plain().contains("### Response:\n"));
        assert!(v.prompt_plain().ends_with('\n'));
        assert!(v.prompt_tagged().contains("[FRAG]"));
    }

    #[test]
    fn speed_prompt_count() {
        assert_eq!(speed_prompts(10, 1).len(), 10);
        assert_eq!(speed_prompts(7, 1).len(), 7);
    }

    #[test]
    fn problems_cover_many_families() {
        let fams: std::collections::HashSet<&str> = rtllm_sim()
            .problems
            .iter()
            .map(|p| p.module.family)
            .collect();
        assert!(fams.len() >= 20, "{}", fams.len());
    }
}
