//! The latency-under-load experiment: the paper's Table II re-measured
//! the way "Speculative Decoding: Performance or Illusion?" demands —
//! per-request latency percentiles under an **open-loop arrival
//! process at equal offered load**, speculative vs. NTP, served
//! through `verispec-serve`'s streaming admission path.
//!
//! Each cell serves the *same* workload (same arrival ticks, prompts,
//! budgets, sampling, seeds — only the engine differs) and reports
//! exact p50/p90/p99 queueing delay, TTFT, per-token inter-commit
//! gaps, and end-to-end latency in scheduler ticks plus measured
//! wall-clock. Every streamed run is asserted bit-identical to batch
//! submission before its numbers are recorded, so `BENCH_load.json` is
//! produced under proven output parity — serving and measurement never
//! change semantics.

use crate::benchmarks::speed_prompts;
use crate::pipeline::{token_budget, ModelScale, Pipeline, SharedPrefixEncoder};
use crate::Scale;
use verispec_core::TrainMethod;
use verispec_load::{
    run_open_loop, ArrivalProcess, LoadBenchRow, PromptFamily, RequestMix, Workload,
};
use verispec_serve::{EngineChoice, Request, ServeConfig, ServeEngine};

/// The three methods of the serve-aware Table II (all drive the same
/// "Ours"-trained model; the engine choice is what Table II compares).
pub fn load_methods() -> Vec<(&'static str, EngineChoice)> {
    vec![
        (
            "Ours-tree",
            EngineChoice::SyntaxAligned {
                tree: Some(vec![2, 2, 1]),
            },
        ),
        ("Medusa-tree", EngineChoice::MedusaTree(vec![3, 2])),
        ("NTP", EngineChoice::Ntp),
    ]
}

/// Builds the workload's prompt families from the speed-prompt set:
/// prompts are encoded through the shared-prefix encoder, given their
/// usual per-prompt budgets, and split at the median encoded length
/// into a "short" and a "long" family (comb-ish vs seq-ish modules),
/// so the mix draws realistic size diversity.
pub fn load_families(
    pipe: &Pipeline,
    enc: &SharedPrefixEncoder<'_>,
    count: usize,
) -> Vec<(PromptFamily, f64)> {
    let problems = speed_prompts(count.max(2), 0x10AD);
    let mut encoded: Vec<(Vec<u32>, usize)> = problems
        .iter()
        .map(|p| {
            let prompt = enc.encode(&p.prompt_tagged());
            let budget = token_budget(&pipe.tokenizer, p, TrainMethod::Ours);
            (prompt, budget)
        })
        .collect();
    encoded.sort_by_key(|(p, _)| p.len());
    let long = encoded.split_off(encoded.len() / 2);
    vec![
        (
            PromptFamily {
                name: "short".into(),
                prompts: encoded,
            },
            1.0,
        ),
        (
            PromptFamily {
                name: "long".into(),
                prompts: long,
            },
            1.0,
        ),
    ]
}

/// Mean decode budget across the families — the per-request service
/// demand estimate the offered-load levels are scaled by.
pub fn mean_budget(families: &[(PromptFamily, f64)]) -> f64 {
    let budgets: Vec<usize> = families
        .iter()
        .flat_map(|(f, _)| f.prompts.iter().map(|(_, b)| *b))
        .collect();
    budgets.iter().sum::<usize>() as f64 / budgets.len().max(1) as f64
}

/// Offered-load levels spanning light traffic to overload: each entry
/// is a target utilization of the **NTP** service capacity
/// (`max_batch` tokens per tick — NTP commits exactly one token per
/// request per tick), converted to requests per tick via the mean
/// request budget. Speculation raises effective capacity by its
/// tokens-per-step factor, which is exactly the gap the latency
/// percentiles expose.
pub fn rates_for_utilizations(utils: &[f64], max_batch: usize, mean_budget: f64) -> Vec<f64> {
    utils
        .iter()
        .map(|u| (u * max_batch as f64 / mean_budget.max(1.0)).max(1e-4))
        .collect()
}

/// Runs the latency-under-load sweep: `utilizations` offered-load
/// levels × the three methods, all under streaming admission with
/// prefix-forked sessions and a session cap of twice the pool.
///
/// # Panics
///
/// Panics if any streamed output diverges from batch submission of the
/// identical workload — the bit-identity guarantee the bench relies on.
pub fn run_load_bench(
    scale: &Scale,
    pipe: &Pipeline,
    model_scale: ModelScale,
    utilizations: &[f64],
) -> Vec<LoadBenchRow> {
    let model = pipe.model_for(model_scale, TrainMethod::Ours, (1, 1));
    let cost = model_scale.cost_model();
    let enc = SharedPrefixEncoder::new(&pipe.tokenizer);
    let families = load_families(pipe, &enc, scale.speed_prompt_count.max(2));
    let concurrency = 8usize;
    let cfg = ServeConfig {
        session_cap: Some(2 * concurrency),
        ..ServeConfig::concurrency(concurrency)
    };
    let rates = rates_for_utilizations(utilizations, cfg.max_batch, mean_budget(&families));

    let mut rows = Vec::new();
    for &rate in &rates {
        let workload = Workload {
            process: ArrivalProcess::Poisson { rate },
            mix: RequestMix {
                engines: load_methods().into_iter().map(|(_, e)| (e, 1.0)).collect(),
                families: families.clone(),
                greedy_fraction: 0.5,
                temperature: (0.4, 0.9),
                base: Default::default(),
            },
            count: scale.speed_prompt_count.max(2),
            seed: 0x10AD_5EED,
        };
        for (name, engine) in load_methods() {
            // Equal offered load: identical arrivals/prompts/budgets/
            // seeds across methods, engine forced.
            let requests = workload.requests_with_engine(Some(&engine));
            let run = run_open_loop(
                &model,
                None,
                Some(&enc.preamble_ids),
                requests.clone(),
                &cfg,
                &cost,
            );
            assert_streaming_matches_batch(
                &model,
                &enc.preamble_ids,
                &requests,
                &cfg,
                &cost,
                &run,
                name,
            );
            rows.push(LoadBenchRow::new(workload.process.name(), rate, name, &run));
        }
    }
    rows
}

/// Asserts the streamed run's outputs equal batch submission of the
/// same workload, token for token and tick for tick.
#[allow(clippy::too_many_arguments)] // private assertion glue
fn assert_streaming_matches_batch(
    model: &verispec_lm::MlpLm,
    preamble: &[u32],
    requests: &[Request],
    cfg: &ServeConfig,
    cost: &verispec_lm::GpuCostModel,
    run: &verispec_load::LoadRunReport,
    method: &str,
) {
    use verispec_lm::LanguageModel;
    let mut prefix = model.session();
    prefix.append(preamble);
    let mut engine = ServeEngine::new(model, cfg.clone()).with_prefix(&*prefix);
    for req in requests {
        engine.submit(req.clone());
    }
    let batch = engine.run(cost);
    assert_eq!(
        batch.completions.len(),
        run.serve.completions.len(),
        "{method}: streamed run lost requests"
    );
    for (a, b) in batch.completions.iter().zip(&run.serve.completions) {
        assert_eq!(
            a.output.tokens, b.output.tokens,
            "{method}: streamed output diverged from batch (request {})",
            a.id
        );
        assert_eq!(
            a.step_ticks, b.step_ticks,
            "{method}: streamed schedule diverged from batch (request {})",
            a.id
        );
    }
}

/// Renders the sweep as the serve-aware Table II.
pub fn render_load_bench(rows: &[LoadBenchRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "Latency under load — serve-aware Table II (streaming admission, equal offered load)\n",
    );
    out.push_str(
        "process  rate    method       reqs  tokens  ticks  tok/tick  \
         TTFT p50/p90/p99      E2E p50/p90/p99 (ticks)  evict\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:<7.4} {:<12} {:>4} {:>7} {:>6} {:>9.2}  \
             {:>5.0}/{:>5.0}/{:>6.0}  {:>7.0}/{:>7.0}/{:>8.0}  {:>5}\n",
            r.process,
            r.offered_rate,
            r.method,
            r.requests,
            r.tokens,
            r.ticks,
            r.tokens_per_tick,
            r.ttft_ticks.p50,
            r.ttft_ticks.p90,
            r.ttft_ticks.p99,
            r.e2e_ticks.p50,
            r.e2e_ticks.p90,
            r.e2e_ticks.p99,
            r.session_evictions,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;

    #[test]
    fn load_bench_sweeps_methods_at_equal_load_with_parity() {
        let scale = Scale {
            pipeline: PipelineConfig {
                corpus_size: 48,
                vocab: 380,
                n_heads: 3,
                epochs: 1,
                ..Default::default()
            },
            speed_prompt_count: 4,
            ..Scale::quick()
        };
        let pipe = Pipeline::build(scale.pipeline);
        // run_load_bench asserts streamed == batch internally, so a
        // clean return is itself the parity proof.
        let rows = run_load_bench(&scale, &pipe, ModelScale::Small, &[0.4, 1.5]);
        assert_eq!(rows.len(), 2 * 3, "2 load levels x 3 methods");
        for r in &rows {
            assert_eq!(r.requests, 4);
            assert!(r.tokens > 0);
            assert!(r.ticks > 0);
            assert!(r.ttft_ticks.p99 >= r.ttft_ticks.p50);
            assert!(r.e2e_ticks.p99 >= r.e2e_ticks.p50);
            assert!(r.e2e_ticks.p50 >= r.ttft_ticks.p50);
        }
        // Equal offered load: same rate axis for every method.
        let ntp: Vec<_> = rows.iter().filter(|r| r.method == "NTP").collect();
        let ours: Vec<_> = rows.iter().filter(|r| r.method == "Ours-tree").collect();
        assert_eq!(ntp.len(), ours.len());
        for (a, b) in ntp.iter().zip(&ours) {
            assert_eq!(a.offered_rate, b.offered_rate);
        }
        let rendered = render_load_bench(&rows);
        assert!(rendered.contains("NTP") && rendered.contains("Ours-tree"));
        assert!(rendered.contains("Table II"));
    }

    #[test]
    fn utilization_rates_scale_with_capacity() {
        let rates = rates_for_utilizations(&[0.25, 1.0], 8, 100.0);
        assert!((rates[0] - 0.02).abs() < 1e-9);
        assert!((rates[1] - 0.08).abs() < 1e-9);
        assert!(rates_for_utilizations(&[0.5], 4, 0.0)[0] > 0.0);
    }
}
