//! The latency-under-load experiment: the paper's Table II re-measured
//! the way "Speculative Decoding: Performance or Illusion?" demands —
//! per-request latency percentiles under an **open-loop arrival
//! process at equal offered load**, speculative vs. NTP, served
//! through `verispec-serve`'s streaming admission path.
//!
//! Each cell serves the *same* workload (same arrival ticks, prompts,
//! budgets, sampling, seeds — only the engine differs) and reports
//! exact p50/p90/p99 queueing delay, TTFT, per-token inter-commit
//! gaps, and end-to-end latency in scheduler ticks plus measured
//! wall-clock. Every streamed run is asserted bit-identical to batch
//! submission before its numbers are recorded, so `BENCH_load.json` is
//! produced under proven output parity — serving and measurement never
//! change semantics.

use crate::benchmarks::speed_prompts;
use crate::pipeline::{token_budget, ModelScale, Pipeline, SharedPrefixEncoder};
use crate::Scale;
use verispec_core::{AdaptivePolicy, BudgetedPolicy, SpecPolicy, StaticPolicy, TrainMethod};
use verispec_load::{
    run_dispatch_open_loop, run_dispatch_open_loop_threaded, run_fleet_open_loop, run_open_loop,
    run_open_loop_with_policy, ArrivalProcess, ArrivalTrace, DispatchRunReport, LoadBenchRow,
    LoadRunReport, PromptFamily, RequestMix, Workload,
};
use verispec_serve::{
    Backend, DispatchConfig, EngineChoice, FaultPlan, Request, RoutePolicy, ServeConfig,
    ServeEngine, TickOrder,
};

/// The three methods of the serve-aware Table II (all drive the same
/// "Ours"-trained model; the engine choice is what Table II compares).
pub fn load_methods() -> Vec<(&'static str, EngineChoice)> {
    vec![
        (
            "Ours-tree",
            EngineChoice::SyntaxAligned {
                tree: Some(vec![2, 2, 1]),
            },
        ),
        ("Medusa-tree", EngineChoice::MedusaTree(vec![3, 2])),
        ("NTP", EngineChoice::Ntp),
    ]
}

/// Per-tick verify capacity of the policy A/B, as a multiple of
/// `max_batch` (the NTP tokens-per-tick capacity): speculation must
/// pay for its candidate tokens out of this budget, which is what
/// makes "how much speculation to buy" a real per-tick decision.
pub const POLICY_CAPACITY_FACTOR: usize = 3;

/// SLO deadline slack of the policy A/B: each request must finish
/// within this multiple of its ideal NTP service time (`budget` ticks).
pub const POLICY_SLO_SLACK: f64 = 4.0;

/// The policy A/B menu: (policy name, `ServeConfig::tick_capacity` to
/// set, policy). All three run at the *same* effective per-tick verify
/// capacity — static and adaptive via the engine knob, budgeted via
/// its own [`verispec_core::SpecPolicy::tick_budget`] — so the A/B
/// isolates the allocation policy, not the capacity.
pub fn policy_menu(capacity: usize) -> Vec<(&'static str, Option<usize>, Box<dyn SpecPolicy>)> {
    vec![
        ("static", Some(capacity), Box::new(StaticPolicy)),
        (
            "adaptive",
            Some(capacity),
            Box::new(AdaptivePolicy::default()),
        ),
        (
            "budgeted",
            None,
            Box::new(BudgetedPolicy { per_tick: capacity }),
        ),
    ]
}

/// Worker counts of the dispatch sweep: the single fused engine, and
/// small fleets.
pub const DISPATCH_WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// Offered-load multiplier of the dispatch sweep over the Table II
/// sweep's highest level. Speculation lifts one engine's effective
/// capacity well above the NTP tokens-per-tick the utilization axis is
/// denominated in, so the Table II overload level barely queues a
/// multi-worker Ours-tree fleet; the dispatch sweep therefore runs at
/// `factor ×` that rate — enough to saturate even four workers, which
/// is where routing policy decides the tail.
pub const DISPATCH_LOAD_FACTOR: f64 = 4.0;

/// The routing-policy menu of the dispatch sweep: load-blind
/// round-robin vs join-shortest-queue (ready-depth) vs
/// join-least-loaded (outstanding candidate-token cost) — the
/// JSQ-vs-RR tail-latency comparison is the headline measurement.
pub fn dispatch_routes() -> Vec<(&'static str, RoutePolicy)> {
    vec![
        ("rr", RoutePolicy::RoundRobin),
        ("jsq", RoutePolicy::JoinShortestQueue),
        ("least-loaded", RoutePolicy::LeastLoaded),
    ]
}

/// Builds the workload's prompt families from the speed-prompt set:
/// prompts are encoded through the shared-prefix encoder, given their
/// usual per-prompt budgets, and split at the median encoded length
/// into a "short" and a "long" family (comb-ish vs seq-ish modules),
/// so the mix draws realistic size diversity.
pub fn load_families(
    pipe: &Pipeline,
    enc: &SharedPrefixEncoder<'_>,
    count: usize,
) -> Vec<(PromptFamily, f64)> {
    let problems = speed_prompts(count.max(2), 0x10AD);
    let mut encoded: Vec<(Vec<u32>, usize)> = problems
        .iter()
        .map(|p| {
            let prompt = enc.encode(&p.prompt_tagged());
            let budget = token_budget(&pipe.tokenizer, p, TrainMethod::Ours);
            (prompt, budget)
        })
        .collect();
    encoded.sort_by_key(|(p, _)| p.len());
    let long = encoded.split_off(encoded.len() / 2);
    vec![
        (
            PromptFamily {
                name: "short".into(),
                prompts: encoded,
            },
            1.0,
        ),
        (
            PromptFamily {
                name: "long".into(),
                prompts: long,
            },
            1.0,
        ),
    ]
}

/// Mean decode budget across the families — the per-request service
/// demand estimate the offered-load levels are scaled by.
pub fn mean_budget(families: &[(PromptFamily, f64)]) -> f64 {
    let budgets: Vec<usize> = families
        .iter()
        .flat_map(|(f, _)| f.prompts.iter().map(|(_, b)| *b))
        .collect();
    budgets.iter().sum::<usize>() as f64 / budgets.len().max(1) as f64
}

/// Offered-load levels spanning light traffic to overload: each entry
/// is a target utilization of the **NTP** service capacity
/// (`max_batch` tokens per tick — NTP commits exactly one token per
/// request per tick), converted to requests per tick via the mean
/// request budget. Speculation raises effective capacity by its
/// tokens-per-step factor, which is exactly the gap the latency
/// percentiles expose.
pub fn rates_for_utilizations(utils: &[f64], max_batch: usize, mean_budget: f64) -> Vec<f64> {
    utils
        .iter()
        .map(|u| (u * max_batch as f64 / mean_budget.max(1.0)).max(1e-4))
        .collect()
}

/// Runs the latency-under-load sweep: `utilizations` offered-load
/// levels × the three methods (the legacy Table II, uncapacitated),
/// plus the **policy A/B** — Ours-tree served under static vs.
/// adaptive vs. budgeted speculation at the same per-tick verify
/// capacity, with SLO deadlines, earliest-deadline-first scheduling,
/// and load-shedding admission control — all under streaming admission
/// with prefix-forked sessions and a session cap of twice the pool —
/// plus the **dispatch sweep**: one Ours-tree workload at
/// [`DISPATCH_LOAD_FACTOR`] × the highest offered load (hot enough to
/// saturate the largest fleet), served once on a single engine (the
/// reference row) and then routed across [`DISPATCH_WORKER_COUNTS`]
/// workers under each [`dispatch_routes`] policy (every dispatched
/// output asserted identical to the single-engine reference before
/// recording).
///
/// Also round-trips every workload's realized arrivals through the
/// JSON [`ArrivalTrace`] and asserts the replay is field-for-field
/// identical, so the CI smoke continuously proves trace replay.
///
/// # Panics
///
/// Panics if any streamed output diverges from batch submission of the
/// identical workload (the bit-identity guarantee the bench relies on)
/// or a recorded trace fails to replay exactly.
pub fn run_load_bench(
    scale: &Scale,
    pipe: &Pipeline,
    model_scale: ModelScale,
    utilizations: &[f64],
) -> Vec<LoadBenchRow> {
    let model = pipe.model_for(model_scale, TrainMethod::Ours, (1, 1));
    let cost = model_scale.cost_model();
    let enc = SharedPrefixEncoder::new(&pipe.tokenizer);
    let families = load_families(pipe, &enc, scale.speed_prompt_count.max(2));
    let concurrency = 8usize;
    let cfg = ServeConfig {
        session_cap: Some(2 * concurrency),
        ..ServeConfig::concurrency(concurrency)
    };
    let rates = rates_for_utilizations(utilizations, cfg.max_batch, mean_budget(&families));

    let mut rows = Vec::new();
    for &rate in &rates {
        let mix = RequestMix {
            engines: load_methods().into_iter().map(|(_, e)| (e, 1.0)).collect(),
            families: families.clone(),
            greedy_fraction: 0.5,
            temperature: (0.4, 0.9),
            base: Default::default(),
            deadline_slack: None,
        };
        let workload = Workload {
            process: ArrivalProcess::Poisson { rate },
            mix,
            count: scale.speed_prompt_count.max(2),
            seed: 0x10AD_5EED,
        };
        assert_trace_replays_exactly(&workload);
        for (name, engine) in load_methods() {
            // Equal offered load: identical arrivals/prompts/budgets/
            // seeds across methods, engine forced.
            let requests = workload.requests_with_engine(Some(&engine));
            let run = run_open_loop(
                &model,
                None,
                Some(&enc.preamble_ids),
                requests.clone(),
                &cfg,
                &cost,
            );
            assert_streaming_matches_batch(
                &model,
                &enc.preamble_ids,
                &requests,
                &cfg,
                &cost,
                &run,
                name,
                None,
            );
            rows.push(LoadBenchRow::new(workload.process.name(), rate, name, &run));
        }

        // Policy A/B: the same arrivals/prompts/budgets/seeds, now with
        // SLO deadlines, all forced to Ours-tree, served under a fixed
        // per-tick verify capacity with EDF scheduling and
        // load-shedding admission control. Only the speculation policy
        // varies.
        let slo_workload = Workload {
            mix: RequestMix {
                deadline_slack: Some(POLICY_SLO_SLACK),
                ..workload.mix.clone()
            },
            ..workload.clone()
        };
        let (ours_name, ours_engine) = load_methods().remove(0);
        let requests = slo_workload.requests_with_engine(Some(&ours_engine));
        let capacity = POLICY_CAPACITY_FACTOR * cfg.max_batch;
        for (policy_name, tick_capacity, policy) in policy_menu(capacity) {
            let pcfg = ServeConfig {
                order: TickOrder::Edf,
                tick_capacity,
                shed_depth: Some(4 * concurrency),
                ..cfg.clone()
            };
            let run = run_open_loop_with_policy(
                &model,
                None,
                Some(&enc.preamble_ids),
                requests.clone(),
                &pcfg,
                &cost,
                Some(policy.as_ref()),
            );
            assert_streaming_matches_batch(
                &model,
                &enc.preamble_ids,
                &requests,
                &pcfg,
                &cost,
                &run,
                policy_name,
                Some(policy.as_ref()),
            );
            rows.push(LoadBenchRow::with_policy(
                slo_workload.process.name(),
                rate,
                ours_name,
                policy_name,
                Some(capacity),
                &run,
            ));
        }
    }

    // Dispatch sweep: worker count × routing policy, all cells fed the
    // *same* workload (same arrivals/prompts/budgets/seeds, Ours-tree)
    // at [`DISPATCH_LOAD_FACTOR`] × the sweep's highest offered load —
    // hot enough to saturate even the four-worker fleet, where routing
    // decides the tail. A single-engine run of the identical workload
    // is recorded first (route "single") as both the melt-down baseline
    // and the parity reference: every dispatched completion is asserted
    // token-identical to it (itself already proven == batch == serial),
    // and the one-worker cells are asserted tick-identical, before any
    // row is recorded.
    let rate = DISPATCH_LOAD_FACTOR
        * rates
            .iter()
            .copied()
            .fold(f64::MIN, f64::max)
            .max(f64::MIN_POSITIVE);
    let (ours_name, ours_engine) = load_methods().remove(0);
    let workload = Workload {
        process: ArrivalProcess::Poisson { rate },
        mix: RequestMix {
            engines: load_methods().into_iter().map(|(_, e)| (e, 1.0)).collect(),
            families: families.clone(),
            greedy_fraction: 0.5,
            temperature: (0.4, 0.9),
            base: Default::default(),
            deadline_slack: None,
        },
        count: scale.speed_prompt_count.max(2),
        seed: 0x10AD_5EED,
    };
    let process = workload.process.name().to_string();
    let requests = workload.requests_with_engine(Some(&ours_engine));
    let reference = run_open_loop(
        &model,
        None,
        Some(&enc.preamble_ids),
        requests.clone(),
        &cfg,
        &cost,
    );
    assert_streaming_matches_batch(
        &model,
        &enc.preamble_ids,
        &requests,
        &cfg,
        &cost,
        &reference,
        "dispatch-reference",
        None,
    );
    rows.push(LoadBenchRow::new(&process, rate, ours_name, &reference));
    for &workers in &DISPATCH_WORKER_COUNTS {
        // With one worker every routing policy routes identically, so
        // the three one-worker cells share a single run (lockstep and
        // threaded alike).
        let mut shared: Option<(DispatchRunReport, f64)> = None;
        for (route_name, route) in dispatch_routes() {
            let (run, threaded_wall) = match &shared {
                Some((run, wall)) => (run.clone(), *wall),
                None => {
                    let dcfg = DispatchConfig::new(workers, route);
                    let run = run_dispatch_open_loop(
                        &model,
                        None,
                        Some(&enc.preamble_ids),
                        requests.clone(),
                        &cfg,
                        &dcfg,
                        &cost,
                        None,
                    );
                    assert_dispatch_matches_reference(&run, &reference, workers, route_name);
                    // The threaded runtime on the identical cell: the
                    // tick schedule must reproduce exactly; the wall
                    // clock is the column's whole point.
                    let threaded = run_dispatch_open_loop_threaded(
                        &model,
                        None,
                        Some(&enc.preamble_ids),
                        requests.clone(),
                        &cfg,
                        &dcfg,
                        &cost,
                        None,
                    );
                    assert_threaded_matches_lockstep(&threaded, &run, workers, route_name);
                    if workers == 1 {
                        shared = Some((run.clone(), threaded.wall_secs));
                    }
                    (run, threaded.wall_secs)
                }
            };
            rows.push(
                LoadBenchRow::for_dispatch(&process, rate, ours_name, route_name, &run)
                    .with_threaded(threaded_wall, true),
            );
        }
    }

    // Fault-injected recovery cells: the identical dispatch workload
    // served under deterministic failure scenarios through the
    // [`verispec_load::run_fleet_open_loop`] facade — a single-worker
    // crash with migration to the survivors ("worker-crash", 4
    // workers), and a whole-fleet outage riding backpressure until the
    // restarts flush the deferred queue ("crash-storm", 2 workers).
    // Every completion is asserted token-identical to the fault-free
    // single-engine reference before recording (crash recovery is a
    // scheduling event, never a semantic one), and the threaded
    // backend must reproduce the lockstep run bit for bit, faults
    // included. The scenario lands in the row's `policy` column; the
    // recovery columns (worker_crashes / migrations / replay_tokens /
    // recovery_ttft_p99) are what the bench guard gates.
    // The crash tick is workload-derived rather than hard-coded: scan
    // a bounded, deterministic window starting one tick after the
    // first arrival and take the earliest tick whose crash actually
    // strands routed work (migrations > 0 — and, for the storm, also
    // rides backpressure while the fleet is dark), so the cell
    // measures recovery at every bench scale and the guard's
    // `migrations > 0` gate is satisfiable by construction. The
    // restarts land safely after both the arrival span and the scan
    // window, keeping the whole-fleet outage window dark.
    let first_arrival = requests.iter().map(|r| r.arrival).min().unwrap_or(0);
    let last_arrival = requests.iter().map(|r| r.arrival).max().unwrap_or(0);
    let scan_end = first_arrival + 13;
    let restart_tick = last_arrival.max(scan_end) + 8;
    let storm_workers = 2usize;
    let crash_workers = 4usize;
    for (scenario, workers) in [
        ("worker-crash", crash_workers),
        ("crash-storm", storm_workers),
    ] {
        let dcfg = DispatchConfig::new(workers, RoutePolicy::JoinShortestQueue);
        let make_plan = |crash: u64| -> FaultPlan {
            if scenario == "worker-crash" {
                FaultPlan::none().crash(crash, 0).restart(restart_tick, 0)
            } else {
                (0..workers).fold(FaultPlan::none(), |p, w| {
                    p.crash(crash + w as u64, w)
                        .restart(restart_tick + w as u64, w)
                })
            }
        };
        let (plan, run) = ((first_arrival + 1)..=scan_end)
            .find_map(|crash| {
                let plan = make_plan(crash);
                let run = run_fleet_open_loop(
                    &model,
                    None,
                    Some(&enc.preamble_ids),
                    requests.clone(),
                    &cfg,
                    &dcfg,
                    &cost,
                    None,
                    &plan,
                    Backend::Lockstep,
                );
                let s = &run.dispatch.stats;
                let strands = if scenario == "worker-crash" {
                    s.migrations > 0
                } else {
                    s.migrations > 0 && s.backpressure_deferrals > 0
                };
                strands.then_some((plan, run))
            })
            .unwrap_or_else(|| {
                panic!("{scenario}: no crash tick in the arrival window strands work")
            });
        assert_faulted_matches_reference(&run, &reference, &plan, workers, scenario);
        let threaded = run_fleet_open_loop(
            &model,
            None,
            Some(&enc.preamble_ids),
            requests.clone(),
            &cfg,
            &dcfg,
            &cost,
            None,
            &plan,
            Backend::Threaded,
        );
        assert_threaded_matches_lockstep(&threaded, &run, workers, scenario);
        let mut row = LoadBenchRow::for_dispatch(&process, rate, ours_name, "jsq", &run)
            .with_threaded(threaded.wall_secs, true);
        row.policy = scenario.to_string();
        rows.push(row);
    }

    // Zipf shared-stem cache sweep: a workload where most prompts
    // extend one of a few hot stems (Zipf-weighted), served with
    // *paced* prompt ingestion so ingestion work is visible in tick
    // space — then measured cache-off vs cache-on across worker counts
    // and routing policies (round-robin vs least-loaded vs
    // prefix-affine) at one equal offered load. The cache-off
    // single-engine run is the uncached reference; every other cell's
    // completions are asserted token-identical to it before recording
    // (the cache and the routing may only move ticks, never tokens).
    // Cache state lands in the row's `policy` column; the prefix_*
    // columns carry the hit/miss/saved telemetry the bench guard gates.
    let vocab = verispec_lm::LanguageModel::vocab_size(&model) as u32;
    let count = scale.speed_prompt_count.max(2);
    let zipf_workload = Workload {
        process: ArrivalProcess::Poisson { rate },
        mix: RequestMix {
            engines: vec![(ours_engine.clone(), 1.0)],
            families: vec![(
                PromptFamily::zipf_stems(
                    "zipf-stems",
                    count.max(8),
                    4,
                    32,
                    4,
                    1.2,
                    12,
                    vocab,
                    0x21F5,
                ),
                1.0,
            )],
            greedy_fraction: 0.5,
            temperature: (0.4, 0.9),
            base: Default::default(),
            deadline_slack: None,
        },
        count,
        seed: 0x21F5_10AD,
    };
    assert_trace_replays_exactly(&zipf_workload);
    let zipf_requests = zipf_workload.requests_with_engine(Some(&ours_engine));
    let off_cfg = ServeConfig {
        ingest_rate: Some(8),
        ..cfg.clone()
    };
    let on_cfg = ServeConfig {
        prefix_cache: true,
        ..off_cfg.clone()
    };
    let zipf_reference = run_open_loop(&model, None, None, zipf_requests.clone(), &off_cfg, &cost);
    for (cache_name, zcfg) in [("cache-off", &off_cfg), ("cache-on", &on_cfg)] {
        for &workers in &DISPATCH_WORKER_COUNTS {
            // One worker routes identically under every policy: share
            // the run across the three route rows.
            let mut shared: Option<(DispatchRunReport, f64)> = None;
            for (route_name, route) in zipf_routes() {
                let (run, threaded_wall) = match &shared {
                    Some((run, wall)) => (run.clone(), *wall),
                    None => {
                        let dcfg = DispatchConfig::new(workers, route);
                        let run = run_dispatch_open_loop(
                            &model,
                            None,
                            None,
                            zipf_requests.clone(),
                            zcfg,
                            &dcfg,
                            &cost,
                            None,
                        );
                        assert_zipf_matches_uncached_reference(
                            &run,
                            &zipf_reference,
                            cache_name,
                            workers,
                            route_name,
                        );
                        // The threaded runtime must reproduce the cell
                        // even under paced ingestion, prefix caching,
                        // and cache-probing routes.
                        let threaded = run_dispatch_open_loop_threaded(
                            &model,
                            None,
                            None,
                            zipf_requests.clone(),
                            zcfg,
                            &dcfg,
                            &cost,
                            None,
                        );
                        assert_threaded_matches_lockstep(&threaded, &run, workers, route_name);
                        if workers == 1 {
                            shared = Some((run.clone(), threaded.wall_secs));
                        }
                        (run, threaded.wall_secs)
                    }
                };
                let mut row = LoadBenchRow::for_dispatch("zipf", rate, ours_name, route_name, &run)
                    .with_threaded(threaded_wall, true);
                row.policy = cache_name.to_string();
                rows.push(row);
            }
        }
    }
    rows
}

/// The routing menu of the Zipf cache sweep: load-blind round-robin,
/// cost-aware least-loaded, and the cache-aware prefix-affine policy
/// (which degrades to least-loaded when every cache probe reads 0).
pub fn zipf_routes() -> Vec<(&'static str, RoutePolicy)> {
    vec![
        ("rr", RoutePolicy::RoundRobin),
        ("least-loaded", RoutePolicy::LeastLoaded),
        ("prefix-affine", RoutePolicy::PrefixAffine),
    ]
}

/// Asserts a Zipf-sweep cell's completions token-identical to the
/// uncached single-engine reference: prefix caching, paced ingestion,
/// and routing are performance mechanisms — ticks move, tokens never.
fn assert_zipf_matches_uncached_reference(
    run: &DispatchRunReport,
    reference: &LoadRunReport,
    cache: &str,
    workers: usize,
    route: &str,
) {
    assert_eq!(
        run.dispatch.completions.len(),
        reference.serve.completions.len(),
        "{cache}/{route}@{workers}: zipf cell lost requests"
    );
    for (a, b) in run
        .dispatch
        .completions
        .iter()
        .zip(&reference.serve.completions)
    {
        assert_eq!(a.id, b.id);
        assert_eq!(
            a.output.tokens, b.output.tokens,
            "{cache}/{route}@{workers}: request {} diverged from the uncached reference",
            a.id
        );
    }
}

/// Asserts a fault-injected run against the fault-free single-engine
/// reference of the identical workload: the fault plan actually fired
/// (crashes and — migration or backpressure — recovery work
/// happened), no request was lost across the outage, and every
/// completion's token stream equals the reference's. Crash recovery
/// by exact replay is a scheduling event, never a semantic one; rows
/// are only recorded after this passes.
fn assert_faulted_matches_reference(
    run: &DispatchRunReport,
    reference: &LoadRunReport,
    plan: &FaultPlan,
    workers: usize,
    scenario: &str,
) {
    let crashes = plan
        .events
        .iter()
        .filter(|e| matches!(e, verispec_serve::FaultEvent::CrashWorker { .. }))
        .count();
    assert_eq!(
        run.dispatch.stats.crashes, crashes,
        "{scenario}@{workers}: the fault plan's crashes did not all fire"
    );
    assert!(
        run.dispatch.stats.migrations > 0 || run.dispatch.stats.backpressure_deferrals > 0,
        "{scenario}@{workers}: the crash stranded no work — the cell measures nothing"
    );
    assert_eq!(
        run.dispatch.completions.len(),
        reference.serve.completions.len(),
        "{scenario}@{workers}: requests were lost across the recovery"
    );
    for (a, b) in run
        .dispatch
        .completions
        .iter()
        .zip(&reference.serve.completions)
    {
        assert_eq!(a.id, b.id);
        assert_eq!(
            a.output.tokens, b.output.tokens,
            "{scenario}@{workers}: request {} diverged under fault injection",
            a.id
        );
    }
}

/// Asserts the threaded runtime's run bit-identical to the lockstep
/// oracle's on the identical cell: the whole tick-space schedule
/// ([`verispec_serve::DispatchReport::same_schedule`] — completions,
/// shedding, stats, per-worker split, assignments) and the canonical
/// fleet event stream. Rows record `threaded_parity: true` only after
/// this passes, so the bench artifact carries a proven claim.
fn assert_threaded_matches_lockstep(
    threaded: &DispatchRunReport,
    lockstep: &DispatchRunReport,
    workers: usize,
    route: &str,
) {
    use verispec_trace::canonicalize_fleet_events;
    assert!(
        threaded.dispatch.same_schedule(&lockstep.dispatch),
        "{route}@{workers}: threaded runtime diverged from the lockstep schedule"
    );
    assert_eq!(
        canonicalize_fleet_events(&threaded.events),
        canonicalize_fleet_events(&lockstep.events),
        "{route}@{workers}: threaded event stream diverged from lockstep"
    );
}

/// Asserts a dispatched run against the single-engine reference of the
/// identical workload: every completion's token stream must match
/// (routing never changes semantics), and a one-worker fleet must
/// reproduce the reference tick schedule exactly (the dispatcher adds
/// zero scheduling noise).
fn assert_dispatch_matches_reference(
    run: &DispatchRunReport,
    reference: &LoadRunReport,
    workers: usize,
    route: &str,
) {
    assert_eq!(
        run.dispatch.completions.len(),
        reference.serve.completions.len(),
        "{route}@{workers}: dispatched run lost requests"
    );
    for (a, b) in run
        .dispatch
        .completions
        .iter()
        .zip(&reference.serve.completions)
    {
        assert_eq!(a.id, b.id);
        assert_eq!(
            a.output.tokens, b.output.tokens,
            "{route}@{workers}: request {} diverged from the single-engine run",
            a.id
        );
        if workers == 1 {
            assert_eq!(
                a.step_ticks, b.step_ticks,
                "{route}@1: request {} schedule diverged from the single engine",
                a.id
            );
        }
    }
    if workers == 1 {
        assert_eq!(
            run.dispatch.stats.ticks, reference.serve.stats.ticks,
            "{route}@1: tick count diverged from the single engine"
        );
    }
}

/// Records the workload's realized arrivals, round-trips them through
/// JSON, and asserts the replay is field-for-field identical — the
/// trace-replay guarantee, continuously proven in the CI smoke.
fn assert_trace_replays_exactly(workload: &Workload) {
    let requests = workload.requests();
    let trace = ArrivalTrace::record(&requests, workload.seed, &workload.mix.base);
    let json = trace.to_json().expect("trace serializes");
    let replayed = ArrivalTrace::from_json(&json)
        .expect("trace parses back")
        .replay();
    assert_eq!(
        replayed, requests,
        "trace replay must reproduce the workload exactly"
    );
}

/// Asserts the streamed run's outputs equal batch submission of the
/// same workload, token for token and tick for tick (including which
/// requests load shedding rejected).
#[allow(clippy::too_many_arguments)] // private assertion glue
fn assert_streaming_matches_batch(
    model: &verispec_lm::MlpLm,
    preamble: &[u32],
    requests: &[Request],
    cfg: &ServeConfig,
    cost: &verispec_lm::GpuCostModel,
    run: &verispec_load::LoadRunReport,
    method: &str,
    policy: Option<&dyn SpecPolicy>,
) {
    // Mirror run_open_loop's prefix handling exactly (radix-tree cache
    // pre-warmed with the shared stem — the successor of the retired
    // engine-held `with_prefix` plumbing) so the batch reference runs
    // the identical admission path.
    let cfg = ServeConfig {
        prefix_cache: true,
        ..cfg.clone()
    };
    let mut engine = ServeEngine::new(model, cfg);
    engine.warm_prefix(preamble);
    if let Some(p) = policy {
        engine = engine.with_policy(p);
    }
    for req in requests {
        engine.submit(req.clone());
    }
    let batch = engine.run(cost);
    assert_eq!(
        batch.completions.len(),
        run.serve.completions.len(),
        "{method}: streamed run lost requests"
    );
    assert_eq!(
        batch.shed, run.serve.shed,
        "{method}: streamed shedding diverged from batch"
    );
    for (a, b) in batch.completions.iter().zip(&run.serve.completions) {
        assert_eq!(
            a.output.tokens, b.output.tokens,
            "{method}: streamed output diverged from batch (request {})",
            a.id
        );
        assert_eq!(
            a.step_ticks, b.step_ticks,
            "{method}: streamed schedule diverged from batch (request {})",
            a.id
        );
    }
}

/// Renders the sweep as the serve-aware Table II, policy A/B and
/// dispatch sweep included.
pub fn render_load_bench(rows: &[LoadBenchRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "Latency under load — serve-aware Table II (streaming admission, equal offered load)\n",
    );
    out.push_str(
        "process  rate    method       policy    cap  wrk route        reqs shed  tokens  ticks  \
         tok/tick  acc%  TTFT p50/p90/p99      E2E p50/p90/p99 (ticks)  SLO%\n",
    );
    for r in rows {
        let cap = r
            .tick_capacity
            .map_or("  - ".to_string(), |c| format!("{c:>4}"));
        let acc = r
            .acceptance_rate
            .map_or("  - ".to_string(), |a| format!("{:>4.0}", 100.0 * a));
        let slo = r
            .slo_attainment
            .map_or("   -".to_string(), |s| format!("{:>4.0}", 100.0 * s));
        let q = &r.quantiles;
        out.push_str(&format!(
            "{:<8} {:<7.4} {:<12} {:<9} {} {:>4} {:<12} {:>4} {:>4} {:>7} {:>6} {:>9.2}  {}  \
             {:>5.0}/{:>5.0}/{:>6.0}  {:>7.0}/{:>7.0}/{:>8.0}  {}\n",
            r.process,
            r.offered_rate,
            r.method,
            r.policy,
            cap,
            r.workers,
            r.route,
            r.requests,
            r.shed_requests,
            r.tokens,
            r.ticks,
            r.tokens_per_tick,
            acc,
            q.ttft_ticks.p50,
            q.ttft_ticks.p90,
            q.ttft_ticks.p99,
            q.e2e_ticks.p50,
            q.e2e_ticks.p90,
            q.e2e_ticks.p99,
            slo,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;

    #[test]
    fn load_bench_sweeps_methods_at_equal_load_with_parity() {
        let scale = Scale {
            pipeline: PipelineConfig {
                corpus_size: 48,
                vocab: 380,
                n_heads: 3,
                epochs: 1,
                ..Default::default()
            },
            speed_prompt_count: 4,
            ..Scale::quick()
        };
        let pipe = Pipeline::build(scale.pipeline);
        // run_load_bench asserts streamed == batch (and trace replay)
        // internally, so a clean return is itself the parity proof.
        let rows = run_load_bench(&scale, &pipe, ModelScale::Small, &[0.4, 1.5]);
        assert_eq!(
            rows.len(),
            2 * (3 + 3) + 1 + 9 + 2 + 18,
            "2 load levels x (3 methods + 3 policies) + dispatch reference + 3x3 sweep \
             + 2 fault-recovery cells + cache on/off x 3x3 zipf sweep"
        );
        for r in &rows {
            assert!(r.requests + r.shed_requests == 4, "served + shed = offered");
            assert!(r.tokens > 0);
            assert!(r.ticks > 0);
            assert!(r.parity, "rows are only recorded under proven parity");
            let q = &r.quantiles;
            assert!(q.ttft_ticks.p99 >= q.ttft_ticks.p50);
            assert!(q.e2e_ticks.p99 >= q.e2e_ticks.p50);
            assert!(q.e2e_ticks.p50 >= q.ttft_ticks.p50);
        }
        // Equal offered load: every NTP level has its Ours-tree
        // counterpart at the identical rate; the one extra Ours-tree
        // single row is the dispatch sweep's reference.
        let ntp: Vec<_> = rows.iter().filter(|r| r.method == "NTP").collect();
        let ours: Vec<_> = rows
            .iter()
            .filter(|r| {
                r.method == "Ours-tree"
                    && r.policy == "static"
                    && r.tick_capacity.is_none()
                    && r.route == "single"
            })
            .collect();
        assert_eq!(ntp.len() + 1, ours.len());
        for n in &ntp {
            assert!(
                ours.iter().any(|o| o.offered_rate == n.offered_rate),
                "no Ours-tree row at NTP rate {}",
                n.offered_rate
            );
        }
        // The dispatch sweep: every worker count x route cell at one
        // shared fleet-saturating offered load (the reference row runs
        // at it too), with the routed request counts adding up to the
        // workload.
        let top_rate = ntp.iter().map(|r| r.offered_rate).fold(f64::MIN, f64::max);
        let dispatch_rate = DISPATCH_LOAD_FACTOR * top_rate;
        assert!(
            ours.iter().any(|o| o.offered_rate == dispatch_rate),
            "dispatch reference row missing"
        );
        let dispatch: Vec<_> = rows
            .iter()
            .filter(|r| r.route != "single" && r.process != "zipf" && r.policy == "static")
            .collect();
        assert_eq!(dispatch.len(), 9);
        // Every dispatched cell (zipf sweep included) carries the
        // threaded runtime's wall clock under proven schedule parity;
        // single-engine rows have no threaded twin.
        for r in &rows {
            if r.route == "single" {
                assert!(
                    r.threaded_wall_secs.is_none() && r.threaded_parity.is_none(),
                    "single-engine rows have no threaded twin"
                );
            } else {
                assert_eq!(
                    r.threaded_parity,
                    Some(true),
                    "{}@{}: dispatched row missing threaded parity",
                    r.route,
                    r.workers
                );
                assert!(
                    r.threaded_wall_secs
                        .is_some_and(|w| w.is_finite() && w >= 0.0),
                    "{}@{}: dispatched row missing threaded wall clock",
                    r.route,
                    r.workers
                );
            }
        }
        for workers in DISPATCH_WORKER_COUNTS {
            for (route, _) in dispatch_routes() {
                let cell = dispatch
                    .iter()
                    .find(|r| r.workers == workers && r.route == route)
                    .unwrap_or_else(|| panic!("missing dispatch cell {route}@{workers}"));
                assert_eq!(cell.method, "Ours-tree");
                assert_eq!(cell.worker_requests.len(), workers);
                assert_eq!(cell.worker_requests.iter().sum::<usize>(), 4);
                assert_eq!(
                    cell.offered_rate, dispatch_rate,
                    "dispatch cells run at the fleet-saturating load"
                );
            }
        }
        // The fault-recovery cells: both scenarios present, recorded
        // under proven token parity with the fault-free reference and
        // threaded/lockstep bit-identity (run_load_bench panics
        // otherwise), with the recovery columns populated — crashes
        // fired, recovery work happened, and the recovery-window TTFT
        // tail was measured whenever a completion was fault-affected.
        let faults: Vec<_> = rows
            .iter()
            .filter(|r| r.policy == "worker-crash" || r.policy == "crash-storm")
            .collect();
        assert_eq!(faults.len(), 2);
        for r in &faults {
            assert!(r.worker_crashes > 0, "{}: no crash fired", r.policy);
            assert!(r.migrations > 0, "{}: no migration happened", r.policy);
            assert!(
                r.recovery_ttft_p99
                    .is_some_and(|v| v.is_finite() && v >= 0.0),
                "{}: recovery-window TTFT p99 missing",
                r.policy
            );
            assert_eq!(
                r.event_accept_violations, 0,
                "{}: acceptance invariant violated under faults",
                r.policy
            );
            assert_eq!(r.threaded_parity, Some(true));
        }
        let storm = faults
            .iter()
            .find(|r| r.policy == "crash-storm")
            .expect("crash-storm cell");
        assert_eq!(storm.workers, 2);
        assert!(
            storm.worker_crashes >= 2,
            "the storm must kill the whole fleet"
        );
        // The policy A/B rows carry the new axes: a shared capacity,
        // SLO deadlines on every request, and measured acceptance.
        let policy_rows: Vec<_> = rows.iter().filter(|r| r.tick_capacity.is_some()).collect();
        assert_eq!(policy_rows.len(), 2 * 3);
        for r in &policy_rows {
            assert_eq!(r.method, "Ours-tree");
            assert_eq!(r.deadlines, 4, "every A/B request carries a deadline");
            assert!(r.slo_attainment.is_some());
            assert!(r.acceptance_rate.is_some(), "speculation was measured");
        }
        for p in ["static", "adaptive", "budgeted"] {
            assert!(policy_rows.iter().any(|r| r.policy == p), "{p} row missing");
        }
        // The Zipf cache sweep: every cache state x worker count x route
        // cell exists, cache-on rows carry prefix telemetry (the cache
        // actually saw admissions) while cache-off rows stay bare, and
        // every cell was recorded under proven token parity with the
        // uncached reference (run_load_bench panics otherwise).
        let zipf: Vec<_> = rows.iter().filter(|r| r.process == "zipf").collect();
        assert_eq!(zipf.len(), 18);
        for cache in ["cache-off", "cache-on"] {
            for workers in DISPATCH_WORKER_COUNTS {
                for (route, _) in zipf_routes() {
                    let cell = zipf
                        .iter()
                        .find(|r| r.policy == cache && r.workers == workers && r.route == route)
                        .unwrap_or_else(|| panic!("missing zipf cell {cache}/{route}@{workers}"));
                    assert_eq!(cell.method, "Ours-tree");
                    if cache == "cache-on" {
                        assert!(
                            cell.prefix_hit_rate.is_some(),
                            "{route}@{workers}: cache-on row lost its hit-rate"
                        );
                        assert_eq!(
                            cell.prefix_hits + cell.prefix_misses,
                            cell.requests,
                            "{route}@{workers}: every admission probes the cache once"
                        );
                    } else {
                        assert!(
                            cell.prefix_hit_rate.is_none(),
                            "{route}@{workers}: cache-off row reports a hit-rate"
                        );
                    }
                }
            }
        }
        let rendered = render_load_bench(&rows);
        assert!(rendered.contains("NTP") && rendered.contains("Ours-tree"));
        assert!(rendered.contains("budgeted") && rendered.contains("adaptive"));
        assert!(rendered.contains("jsq") && rendered.contains("least-loaded"));
        assert!(rendered.contains("Table II"));
    }

    #[test]
    fn utilization_rates_scale_with_capacity() {
        let rates = rates_for_utilizations(&[0.25, 1.0], 8, 100.0);
        assert!((rates[0] - 0.02).abs() < 1e-9);
        assert!((rates[1] - 0.08).abs() < 1e-9);
        assert!(rates_for_utilizations(&[0.5], 4, 0.0)[0] > 0.0);
    }
}
