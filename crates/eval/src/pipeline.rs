//! End-to-end experiment pipeline: corpus → BPE tokenizer → encoded
//! datasets → trained models → generation.
//!
//! The two model scales stand in for the paper's CodeLlama-7b ("Large")
//! and CodeT5p-220m ("Small"); see DESIGN.md §2. Trained models are
//! cached on disk keyed by a configuration hash so that benches and
//! repeated harness runs do not retrain.

use crate::benchmarks::Problem;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use verispec_core::{
    decode_grammar_speculative, DecodeConfig, DecodeMethod, DecodeOutput, TrainConfig, TrainMethod,
};
use verispec_data::{alpaca_format, Corpus, CorpusConfig};
use verispec_grammar::GrammarOracle;
use verispec_lm::{GpuCostModel, MlpLm, MlpLmConfig, TokenId};
use verispec_tokenizer::{special, BpeTokenizer, BpeTrainer};
use verispec_verilog::fragment::defragmentize;

/// Which paper model a configuration stands in for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelScale {
    /// CodeLlama-7b-Instruct stand-in: wider, longer context.
    Large,
    /// CodeT5p-220m stand-in: narrower, shorter context.
    Small,
}

impl ModelScale {
    /// Table-friendly name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelScale::Large => "CodeLlama",
            ModelScale::Small => "CodeT5p",
        }
    }

    /// The LM architecture for this scale.
    pub fn lm_config(&self, vocab: usize, n_heads: usize, seed: u64) -> MlpLmConfig {
        match self {
            ModelScale::Large => MlpLmConfig {
                vocab,
                d_emb: 12,
                d_hidden: 48,
                context: 40,
                n_heads,
                seed,
            },
            ModelScale::Small => MlpLmConfig {
                vocab,
                d_emb: 10,
                d_hidden: 32,
                context: 16,
                n_heads,
                seed,
            },
        }
    }

    /// The simulated GPU cost model for this scale.
    pub fn cost_model(&self) -> GpuCostModel {
        match self {
            ModelScale::Large => GpuCostModel::codellama_like(),
            ModelScale::Small => GpuCostModel::codet5p_like(),
        }
    }
}

/// Pipeline-wide configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Hash)]
pub struct PipelineConfig {
    /// Raw corpus size before refinement.
    pub corpus_size: usize,
    /// Corpus seed.
    pub corpus_seed: u64,
    /// BPE vocabulary target.
    pub vocab: usize,
    /// Medusa heads on speculative models (paper: 10).
    pub n_heads: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Model init / shuffle seed.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            corpus_size: 640,
            corpus_seed: 0xC0FFEE,
            vocab: 640,
            n_heads: 10,
            epochs: 3,
            seed: 17,
        }
    }
}

/// The shared experiment substrate: corpus, tokenizer, encoded datasets.
pub struct Pipeline {
    /// Configuration used to build everything.
    pub config: PipelineConfig,
    /// The refined corpus.
    pub corpus: Corpus,
    /// Shared BPE tokenizer (trained on plain + tagged text).
    pub tokenizer: BpeTokenizer,
    /// Alpaca-formatted plain sequences (for NTP / Medusa).
    pub plain_sequences: Vec<Vec<TokenId>>,
    /// Alpaca-formatted `[FRAG]`-tagged sequences (for Ours).
    pub tagged_sequences: Vec<Vec<TokenId>>,
}

impl Pipeline {
    /// Builds corpus, tokenizer, and encoded datasets.
    pub fn build(config: PipelineConfig) -> Pipeline {
        let corpus = Corpus::build(&CorpusConfig {
            size: config.corpus_size,
            seed: config.corpus_seed,
            ..Default::default()
        });
        let plain_texts: Vec<String> = corpus
            .items
            .iter()
            .map(|it| alpaca_format(&it.description, &it.source))
            .collect();
        let tagged_texts: Vec<String> = corpus
            .items
            .iter()
            .map(|it| alpaca_format(&it.description, &it.tagged_source))
            .collect();

        let tokenizer = BpeTrainer::new(config.vocab).train(
            plain_texts
                .iter()
                .map(String::as_str)
                .chain(tagged_texts.iter().map(String::as_str)),
        );

        let encode_all = |texts: &[String]| -> Vec<Vec<TokenId>> {
            texts
                .iter()
                .map(|t| {
                    let mut ids = tokenizer.encode(t);
                    ids.push(special::EOS);
                    ids
                })
                .collect()
        };
        let plain_sequences = encode_all(&plain_texts);
        let tagged_sequences = encode_all(&tagged_texts);
        Pipeline {
            config,
            corpus,
            tokenizer,
            plain_sequences,
            tagged_sequences,
        }
    }

    /// The training sequences a method consumes, cut to the paper's
    /// data-size fraction (`numerator/denominator` of the corpus).
    pub fn sequences_for(
        &self,
        method: TrainMethod,
        fraction: (usize, usize),
    ) -> Vec<Vec<TokenId>> {
        let all = match method {
            TrainMethod::Ours => &self.tagged_sequences,
            _ => &self.plain_sequences,
        };
        let n = all.len() * fraction.0 / fraction.1;
        all.iter().take(n).cloned().collect()
    }

    /// Trains (or loads from cache) a model for the given cell.
    pub fn model_for(
        &self,
        scale: ModelScale,
        method: TrainMethod,
        fraction: (usize, usize),
    ) -> MlpLm {
        let n_heads = if method == TrainMethod::Ntp {
            0
        } else {
            self.config.n_heads
        };
        let lm_cfg = self.lm_config(scale, method);
        let key = cache_key(&self.config, scale, method, fraction, n_heads);
        if let Some(model) = load_cached(&key, &lm_cfg) {
            return model;
        }
        let sequences = self.sequences_for(method, fraction);
        let tc = TrainConfig {
            epochs: self.config.epochs,
            seed: self.config.seed,
            ..TrainConfig::paper_defaults(method)
        };
        let (model, _report) = verispec_core::train(lm_cfg, &sequences, &tc);
        store_cached(&key, &model);
        model
    }

    /// The LM configuration for a scale/method pair.
    pub fn lm_config(&self, scale: ModelScale, method: TrainMethod) -> MlpLmConfig {
        let n_heads = if method == TrainMethod::Ntp {
            0
        } else {
            self.config.n_heads
        };
        scale.lm_config(self.tokenizer.vocab_size(), n_heads, self.config.seed)
    }
}

/// Bump when tokenizer/training/decoding algorithms change in ways that
/// invalidate previously cached models.
const CACHE_VERSION: u32 = 2;

fn cache_key(
    cfg: &PipelineConfig,
    scale: ModelScale,
    method: TrainMethod,
    fraction: (usize, usize),
    n_heads: usize,
) -> String {
    let mut h = DefaultHasher::new();
    CACHE_VERSION.hash(&mut h);
    cfg.hash(&mut h);
    scale.hash(&mut h);
    method.name().hash(&mut h);
    fraction.hash(&mut h);
    n_heads.hash(&mut h);
    format!("model_{:016x}", h.finish())
}

fn cache_dir() -> PathBuf {
    // Anchor to the workspace target dir so tests and benches (whose
    // CWD is their *package* dir) share one cache instead of littering
    // per-crate target/ directories.
    let base = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target")));
    base.join("verispec-cache")
}

fn load_cached(key: &str, expect_cfg: &MlpLmConfig) -> Option<MlpLm> {
    let path = cache_dir().join(format!("{key}.json"));
    let bytes = std::fs::read(&path).ok()?;
    let model: MlpLm = serde_json::from_slice(&bytes).ok()?;
    (model.config() == expect_cfg).then_some(model)
}

fn store_cached(key: &str, model: &MlpLm) {
    let dir = cache_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{key}.json"));
    if let Ok(bytes) = serde_json::to_vec(model) {
        let _ = std::fs::write(path, bytes);
    }
}

/// Prefix-sharing prompt encoder: the common Alpaca preamble is
/// BPE-encoded **once**, and every prompt starting with it reuses the
/// cached ids, encoding only the per-request remainder.
///
/// Exactness: BPE merges never cross pre-tokenization word boundaries,
/// the preamble ends in a lone `\n` (a complete whitespace word — no
/// trailing space for the tokenizer to glue onto the next word), and
/// the split is only taken when the remainder starts with a
/// non-whitespace character. Under those conditions
/// `encode(preamble) ++ encode(rest) == encode(preamble ++ rest)`
/// bit-for-bit (`debug_assert`ed, and pinned over every benchmark
/// prompt by the tests). Anything else falls back to a full encode.
///
/// Served runs pair this with [`verispec_lm::DecodeSession::fork`]:
/// one session ingests `preamble_ids` once and each request forks it,
/// appending only its remainder (see `run_serve_bench`).
pub struct SharedPrefixEncoder<'t> {
    tokenizer: &'t BpeTokenizer,
    preamble: &'static str,
    /// Token ids of the shared preamble.
    pub preamble_ids: Vec<TokenId>,
}

impl<'t> SharedPrefixEncoder<'t> {
    /// Encodes the Alpaca preamble once.
    pub fn new(tokenizer: &'t BpeTokenizer) -> Self {
        let preamble = verispec_data::alpaca_preamble();
        SharedPrefixEncoder {
            tokenizer,
            preamble,
            preamble_ids: tokenizer.encode(preamble),
        }
    }

    /// Encodes `prompt`, reusing the cached preamble ids when the split
    /// is provably exact. Always equals `tokenizer.encode(prompt)`.
    pub fn encode(&self, prompt: &str) -> Vec<TokenId> {
        match prompt.strip_prefix(self.preamble) {
            Some(rest) if rest.starts_with(|c: char| !c.is_whitespace()) => {
                let mut ids = self.preamble_ids.clone();
                ids.extend(self.tokenizer.encode(rest));
                debug_assert_eq!(
                    ids,
                    self.tokenizer.encode(prompt),
                    "shared-prefix split must be exact"
                );
                ids
            }
            _ => self.tokenizer.encode(prompt),
        }
    }
}

/// The decode method a training method is evaluated with.
pub fn decode_method_of(method: TrainMethod) -> DecodeMethod {
    match method {
        TrainMethod::Ntp => DecodeMethod::Ntp,
        TrainMethod::Medusa => DecodeMethod::Medusa,
        TrainMethod::Ours => DecodeMethod::Ours,
    }
}

/// Output of one generation: the cleaned code text plus decode stats.
#[derive(Debug, Clone)]
pub struct Generation {
    /// Generated completion as plain Verilog (specials stripped,
    /// `[FRAG]` markers removed).
    pub code: String,
    /// Raw decode output (token counts, steps, simulated clock).
    pub output: DecodeOutput,
}

/// Generates a completion for `problem` with the given trained model,
/// decoding through its native cached [`verispec_lm::DecodeSession`].
pub fn generate(
    model: &MlpLm,
    tokenizer: &BpeTokenizer,
    problem: &Problem,
    method: TrainMethod,
    decode_cfg: &DecodeConfig,
    cost: &GpuCostModel,
) -> Generation {
    generate_on(model, tokenizer, problem, method, decode_cfg, cost)
}

/// Like [`generate`], but forces the stateless migration shim
/// ([`verispec_lm::Stateless`]): every query recomputes from the full
/// prefix, as the pre-session engines did. Equal outputs to
/// [`generate`] by construction — this is the baseline side of the
/// `session_reuse` bench and of `BENCH_decode.json`.
pub fn generate_stateless(
    model: &MlpLm,
    tokenizer: &BpeTokenizer,
    problem: &Problem,
    method: TrainMethod,
    decode_cfg: &DecodeConfig,
    cost: &GpuCostModel,
) -> Generation {
    generate_on(
        &verispec_lm::Stateless(model),
        tokenizer,
        problem,
        method,
        decode_cfg,
        cost,
    )
}

/// Like [`generate`], but decoding through the grammar-constrained
/// speculation engine: tagged prompts against the Ours-trained model
/// (the only regime whose outputs carry the `[FRAG]` markers the
/// dead-tail pruner keys on), with `oracle` viability-filtering and
/// pruning every candidate tree at propose time. Same prompt
/// construction and cleaned-code post-processing as [`generate`] under
/// [`verispec_core::TrainMethod::Ours`], so quality comparisons against
/// the unconstrained tree isolate the propose-time grammar layer.
pub fn generate_grammar(
    model: &MlpLm,
    tokenizer: &BpeTokenizer,
    oracle: &GrammarOracle,
    problem: &Problem,
    decode_cfg: &DecodeConfig,
    cost: &GpuCostModel,
) -> Generation {
    let prompt = tokenizer.encode(&problem.prompt_tagged());
    let output = decode_grammar_speculative(model, oracle, &prompt, decode_cfg, cost);
    clean(tokenizer, output)
}

/// Shared generation body over any [`LanguageModel`].
fn generate_on(
    model: &dyn verispec_lm::LanguageModel,
    tokenizer: &BpeTokenizer,
    problem: &Problem,
    method: TrainMethod,
    decode_cfg: &DecodeConfig,
    cost: &GpuCostModel,
) -> Generation {
    let prompt_text = match method {
        TrainMethod::Ours => problem.prompt_tagged(),
        _ => problem.prompt_plain(),
    };
    let prompt = tokenizer.encode(&prompt_text);
    let output = decode_method_of(method).decode(model, &prompt, decode_cfg, cost);
    clean(tokenizer, output)
}

/// The paper's "Cleaned Code" step: decode the generated ids and strip
/// `[FRAG]` markers and stray specials.
fn clean(tokenizer: &BpeTokenizer, output: DecodeOutput) -> Generation {
    let gen_ids = output.tokens_without_eos();
    let text = tokenizer.decode(&gen_ids);
    let code = defragmentize(&text)
        .replace("[PAD]", "")
        .replace("[BOS]", "")
        .replace("[IGNORE]", "");
    Generation { code, output }
}

/// A reasonable decode budget for a problem: twice the reference length
/// plus slack, capped. Tagged references are longer, so "Ours" gets a
/// proportionally larger raw-token budget.
pub fn token_budget(tokenizer: &BpeTokenizer, problem: &Problem, method: TrainMethod) -> usize {
    let reference = match method {
        TrainMethod::Ours => {
            // Tagged reference length.
            tokenizer.encode(&problem_reference_tagged(problem)).len()
        }
        _ => tokenizer.encode(&problem.module.source).len(),
    };
    (reference * 2 + 32).min(768)
}

fn problem_reference_tagged(problem: &Problem) -> String {
    use verispec_verilog::significant::SignificantTokens;
    let Ok(file) = verispec_verilog::parse(&problem.module.source) else {
        return problem.module.source.clone();
    };
    let sig = SignificantTokens::from_source_file(&file);
    verispec_verilog::fragment::fragmentize(&problem.module.source, &sig)
        .unwrap_or_else(|_| problem.module.source.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::rtllm_sim;

    fn tiny_pipeline() -> Pipeline {
        Pipeline::build(PipelineConfig {
            corpus_size: 48,
            vocab: 380,
            n_heads: 4,
            epochs: 1,
            ..Default::default()
        })
    }

    #[test]
    fn pipeline_builds_and_encodes() {
        let p = tiny_pipeline();
        assert!(p.corpus.stats.retained > 20);
        assert_eq!(p.plain_sequences.len(), p.corpus.items.len());
        assert_eq!(p.tagged_sequences.len(), p.corpus.items.len());
        // Tagged sequences contain FRAG ids; plain do not.
        assert!(p.tagged_sequences[0].contains(&special::FRAG));
        assert!(!p.plain_sequences[0].contains(&special::FRAG));
        // All end with EOS.
        assert_eq!(
            *p.plain_sequences[0].last().expect("nonempty"),
            special::EOS
        );
    }

    #[test]
    fn fractions_scale_dataset() {
        let p = tiny_pipeline();
        let full = p.sequences_for(TrainMethod::Medusa, (1, 1));
        let half = p.sequences_for(TrainMethod::Medusa, (1, 2));
        assert_eq!(half.len(), full.len() / 2);
    }

    #[test]
    fn training_and_generation_smoke() {
        let p = tiny_pipeline();
        let model = p.model_for(ModelScale::Small, TrainMethod::Ntp, (1, 2));
        let bench = rtllm_sim();
        let cfg = DecodeConfig {
            max_tokens: 48,
            ..Default::default()
        };
        let g = generate(
            &model,
            &p.tokenizer,
            &bench.problems[0],
            TrainMethod::Ntp,
            &cfg,
            &ModelScale::Small.cost_model(),
        );
        assert!(g.output.tokens.len() <= 48);
        assert!(!g.code.contains("[FRAG]"));
    }

    #[test]
    fn stateless_shim_generation_is_identical() {
        let p = tiny_pipeline();
        let model = p.model_for(ModelScale::Small, TrainMethod::Medusa, (1, 2));
        let bench = rtllm_sim();
        let cost = ModelScale::Small.cost_model();
        for (seed, problem) in bench.problems.iter().take(2).enumerate() {
            let cfg = DecodeConfig {
                max_tokens: 40,
                seed: seed as u64,
                ..Default::default()
            };
            let a = generate(
                &model,
                &p.tokenizer,
                problem,
                TrainMethod::Medusa,
                &cfg,
                &cost,
            );
            let b = generate_stateless(
                &model,
                &p.tokenizer,
                problem,
                TrainMethod::Medusa,
                &cfg,
                &cost,
            );
            assert_eq!(
                a.output.tokens, b.output.tokens,
                "session vs shim divergence"
            );
            assert_eq!(a.code, b.code);
        }
    }

    #[test]
    fn model_cache_round_trip() {
        let p = tiny_pipeline();
        let a = p.model_for(ModelScale::Small, TrainMethod::Ntp, (1, 4));
        let b = p.model_for(ModelScale::Small, TrainMethod::Ntp, (1, 4));
        // Second call loads the cached model: identical behaviour.
        assert_eq!(a.logits(&[1, 2, 3]), b.logits(&[1, 2, 3]));
    }

    #[test]
    fn shared_prefix_encoder_is_exact_on_all_benchmark_prompts() {
        let p = tiny_pipeline();
        let enc = SharedPrefixEncoder::new(&p.tokenizer);
        assert!(!enc.preamble_ids.is_empty());
        let mut checked = 0usize;
        for bench in [rtllm_sim(), crate::benchmarks::vgen_sim()] {
            for problem in &bench.problems {
                for prompt in [problem.prompt_plain(), problem.prompt_tagged()] {
                    assert_eq!(
                        enc.encode(&prompt),
                        p.tokenizer.encode(&prompt),
                        "split encode diverged on {}",
                        problem.id
                    );
                    assert!(enc.encode(&prompt).starts_with(&enc.preamble_ids));
                    checked += 1;
                }
            }
        }
        assert!(checked > 40, "covered both suites");
        // Non-preamble prompts fall back to a plain encode.
        assert_eq!(enc.encode("module m;"), p.tokenizer.encode("module m;"));
    }

    #[test]
    fn token_budget_scales_with_method() {
        let p = tiny_pipeline();
        let prob = &rtllm_sim().problems[0];
        let ours = token_budget(&p.tokenizer, prob, TrainMethod::Ours);
        let ntp = token_budget(&p.tokenizer, prob, TrainMethod::Ntp);
        assert!(ours > ntp, "tagged budget {ours} must exceed plain {ntp}");
    }
}
