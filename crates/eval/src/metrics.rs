//! Evaluation metrics: the unbiased pass@k estimator (paper Eq. 5), the
//! Pass Rate (Eq. 6), and generation speed/speedup (Eqs. 3–4).

use serde::{Deserialize, Serialize};

/// Unbiased pass@k for one prompt: `1 − C(n−c, k) / C(n, k)` where `n`
/// samples were drawn and `c` passed (VerilogEval's estimator, Eq. 5).
///
/// # Panics
///
/// Panics if `c > n` or `k == 0`.
pub fn pass_at_k(n: usize, c: usize, k: usize) -> f64 {
    assert!(c <= n, "passes {c} exceed samples {n}");
    assert!(k > 0, "k must be positive");
    if n == 0 {
        return 0.0;
    }
    if k >= n {
        // With every sample drawn, pass@k is 1 unless nothing passed.
        return if c > 0 { 1.0 } else { 0.0 };
    }
    if c == 0 {
        return 0.0;
    }
    // 1 - prod_{i=0}^{k-1} (n - c - i) / (n - i), the stable form.
    let mut prob_all_fail = 1.0f64;
    for i in 0..k {
        let numer = (n - c).saturating_sub(i) as f64;
        let denom = (n - i) as f64;
        prob_all_fail *= numer / denom;
    }
    1.0 - prob_all_fail
}

/// Mean pass@k over prompts, given per-prompt `(n, c)` counts.
pub fn mean_pass_at_k(counts: &[(usize, usize)], k: usize) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    counts.iter().map(|&(n, c)| pass_at_k(n, c, k)).sum::<f64>() / counts.len() as f64
}

/// Pass Rate (Eq. 6): fraction of prompts with at least one passing
/// sample.
pub fn pass_rate(counts: &[(usize, usize)]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    counts.iter().filter(|&&(_, c)| c > 0).count() as f64 / counts.len() as f64
}

/// Speed over a set of decode runs (Eq. 3): the mean of per-run
/// `tokens / seconds`.
pub fn mean_speed(runs: &[(usize, f64)]) -> f64 {
    if runs.is_empty() {
        return 0.0;
    }
    runs.iter()
        .filter(|&&(_, secs)| secs > 0.0)
        .map(|&(tokens, secs)| tokens as f64 / secs)
        .sum::<f64>()
        / runs.len() as f64
}

/// Speedup of a method relative to the NTP baseline (Eq. 4).
pub fn speedup(method_speed: f64, ntp_speed: f64) -> f64 {
    if ntp_speed <= 0.0 {
        0.0
    } else {
        method_speed / ntp_speed
    }
}

/// Quality counts for one prompt under one configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PromptCounts {
    /// Samples generated.
    pub n: usize,
    /// Samples passing the syntax check.
    pub syntax_passes: usize,
    /// Samples passing the functional check.
    pub functional_passes: usize,
}

/// Aggregated quality metrics over a benchmark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct QualityRow {
    /// pass@1 (%).
    pub pass_at_1: f64,
    /// pass@5 (%).
    pub pass_at_5: f64,
    /// pass@10 (%).
    pub pass_at_10: f64,
    /// Pass Rate (%).
    pub pass_rate: f64,
}

impl QualityRow {
    /// Builds a row from per-prompt counts using `extract` to choose the
    /// syntax or functional pass count.
    pub fn from_counts(
        counts: &[PromptCounts],
        extract: impl Fn(&PromptCounts) -> usize,
    ) -> QualityRow {
        let pairs: Vec<(usize, usize)> = counts.iter().map(|c| (c.n, extract(c))).collect();
        QualityRow {
            pass_at_1: 100.0 * mean_pass_at_k(&pairs, 1),
            pass_at_5: 100.0 * mean_pass_at_k(&pairs, 5),
            pass_at_10: 100.0 * mean_pass_at_k(&pairs, 10),
            pass_rate: 100.0 * pass_rate(&pairs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_at_k_boundary_cases() {
        assert_eq!(pass_at_k(20, 0, 1), 0.0);
        assert_eq!(pass_at_k(20, 20, 1), 1.0);
        assert_eq!(pass_at_k(20, 5, 20), 1.0);
        assert_eq!(pass_at_k(0, 0, 5), 0.0);
    }

    #[test]
    fn pass_at_1_equals_fraction() {
        // pass@1 is exactly c/n.
        assert!((pass_at_k(20, 5, 1) - 0.25).abs() < 1e-12);
        assert!((pass_at_k(10, 3, 1) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn pass_at_k_matches_closed_form() {
        // n=5, c=2, k=2: 1 - C(3,2)/C(5,2) = 1 - 3/10 = 0.7
        assert!((pass_at_k(5, 2, 2) - 0.7).abs() < 1e-12);
        // n=4, c=1, k=2: 1 - C(3,2)/C(4,2) = 1 - 3/6 = 0.5
        assert!((pass_at_k(4, 1, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pass_at_k_monotone_in_k_and_c() {
        for c in 0..=10 {
            for k in 1..10 {
                assert!(pass_at_k(10, c, k + 1) >= pass_at_k(10, c, k) - 1e-12);
            }
        }
        for k in [1, 5, 10] {
            for c in 0..10 {
                assert!(pass_at_k(10, c + 1, k) >= pass_at_k(10, c, k) - 1e-12);
            }
        }
    }

    #[test]
    fn pass_at_k_matches_monte_carlo() {
        // Estimator should equal the empirical probability of drawing at
        // least one pass among k distinct samples.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let (n, c, k) = (12, 4, 3);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        let mut pool: Vec<bool> = (0..n).map(|i| i < c).collect();
        let trials = 40_000;
        let mut hits = 0;
        for _ in 0..trials {
            pool.shuffle(&mut rng);
            if pool[..k].iter().any(|&b| b) {
                hits += 1;
            }
        }
        let mc = hits as f64 / trials as f64;
        let est = pass_at_k(n, c, k);
        assert!((mc - est).abs() < 0.01, "mc {mc} vs estimator {est}");
    }

    #[test]
    fn pass_rate_counts_any_pass() {
        let counts = [(20, 0), (20, 1), (20, 20)];
        assert!((pass_rate(&counts) - 2.0 / 3.0).abs() < 1e-12);
        // The 1/29 quantum of the paper's RTLLM pass rates.
        let mut rtllm = vec![(20usize, 0usize); 29];
        rtllm[0].1 = 3;
        assert!((pass_rate(&rtllm) - 1.0 / 29.0).abs() < 1e-12);
    }

    #[test]
    fn speed_and_speedup() {
        let runs = [(100usize, 1.0f64), (200, 1.0)];
        assert!((mean_speed(&runs) - 150.0).abs() < 1e-9);
        assert!((speedup(420.13, 83.13) - 5.054).abs() < 0.01);
        assert_eq!(speedup(10.0, 0.0), 0.0);
    }

    #[test]
    fn quality_row_percentages() {
        let counts = vec![
            PromptCounts {
                n: 20,
                syntax_passes: 20,
                functional_passes: 10,
            },
            PromptCounts {
                n: 20,
                syntax_passes: 0,
                functional_passes: 0,
            },
        ];
        let func = QualityRow::from_counts(&counts, |c| c.functional_passes);
        assert!((func.pass_at_1 - 25.0).abs() < 1e-9);
        assert!((func.pass_rate - 50.0).abs() < 1e-9);
        let syn = QualityRow::from_counts(&counts, |c| c.syntax_passes);
        assert!((syn.pass_at_1 - 50.0).abs() < 1e-9);
    }
}
