//! The judge: scores generated Verilog against a benchmark problem,
//! reproducing the paper's §IV-B2 protocol with the simulator standing in
//! for iverilog.
//!
//! * **Syntax** pass: the code parses, elaborates, and exposes the
//!   interface the testbench instantiates (module name, ports, widths) —
//!   everything iverilog would need to compile design + testbench
//!   together.
//! * **Functional** pass: syntax pass *and* the design matches the
//!   problem's golden model on all stimulus vectors.

use crate::benchmarks::Problem;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use verispec_data::Golden;
use verispec_sim::{elaborate, run_combinational, run_sequential, Design, ResetSpec, SeqSpec};

/// Judge outcome for one generated sample.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Parse/elaborate/interface failure (would not compile with the
    /// testbench).
    SyntaxFail(String),
    /// Compiles, but output mismatches or the simulation faulted.
    FunctionalFail(String),
    /// Matches the golden model on every vector.
    Pass,
}

impl Verdict {
    /// Whether the sample counts as syntactically correct.
    pub fn syntax_ok(&self) -> bool {
        !matches!(self, Verdict::SyntaxFail(_))
    }

    /// Whether the sample counts as functionally correct.
    pub fn functional_ok(&self) -> bool {
        matches!(self, Verdict::Pass)
    }
}

/// Number of stimulus vectors applied per functional check.
pub const JUDGE_VECTORS: usize = 24;

/// Scores one generated completion (code text, `[FRAG]` markers already
/// stripped) against a problem.
pub fn judge(code: &str, problem: &Problem, seed: u64) -> Verdict {
    // For VGen-style problems the header came from the prompt; the model
    // generated only the continuation.
    let full_source = format!("{}{}", problem.completion_prefix(), code);

    let file = match verispec_verilog::parse(&full_source) {
        Ok(f) => f,
        Err(e) => return Verdict::SyntaxFail(format!("parse: {e}")),
    };
    // The testbench instantiates the module by name; take the module with
    // the expected name, or fail syntax like a testbench compile would.
    let want = &problem.module.name;
    let Some(module) = file.modules.iter().find(|m| &m.name == want) else {
        return Verdict::SyntaxFail(format!(
            "testbench needs module `{want}`, generated `{}`",
            file.modules
                .first()
                .map(|m| m.name.as_str())
                .unwrap_or("<none>")
        ));
    };
    let design = match elaborate(module) {
        Ok(d) => d,
        Err(e) => return Verdict::SyntaxFail(format!("elaborate: {e}")),
    };
    if let Err(e) = check_interface(&design, problem) {
        return Verdict::SyntaxFail(e);
    }

    // Functional comparison against the golden model.
    let iface = &problem.module.interface;
    let mut rng = SmallRng::seed_from_u64(seed);
    let vectors = iface.random_stimuli(&mut rng, JUDGE_VECTORS);
    let result = match (&problem.module.golden, iface.clock.as_ref()) {
        (Golden::Comb(f), None) => run_combinational(&design, &vectors, |ins| f(ins)),
        (Golden::Seq(factory), Some(clock)) => {
            let spec = SeqSpec {
                clock: clock.clone(),
                reset: iface.reset.as_ref().map(|r| ResetSpec {
                    signal: r.signal.clone(),
                    active_low: r.active_low,
                    cycles: 2,
                }),
            };
            let mut golden = factory();
            run_sequential(&design, &spec, &vectors, |ins| golden(ins))
        }
        _ => return Verdict::FunctionalFail("inconsistent golden/clock".into()),
    };
    match result {
        Err(e) => Verdict::FunctionalFail(format!("simulation: {e}")),
        Ok(tb) if tb.passed => Verdict::Pass,
        Ok(tb) => {
            let m = tb.mismatches.first();
            Verdict::FunctionalFail(match m {
                Some(m) => format!(
                    "cycle {}: {} expected {:#x}, got {:#x}",
                    m.cycle, m.signal, m.expected, m.got
                ),
                None => "mismatch".into(),
            })
        }
    }
}

/// Checks that the design exposes every port the testbench drives and
/// observes, with the right directions and widths.
pub(crate) fn check_interface(design: &Design, problem: &Problem) -> Result<(), String> {
    use verispec_verilog::ast::Direction;
    let iface = &problem.module.interface;
    let mut required: Vec<(&str, u32, Direction)> = Vec::new();
    for p in &iface.inputs {
        required.push((&p.name, p.width, Direction::Input));
    }
    for p in &iface.outputs {
        required.push((&p.name, p.width, Direction::Output));
    }
    if let Some(clk) = &iface.clock {
        required.push((clk, 1, Direction::Input));
    }
    if let Some(rst) = &iface.reset {
        required.push((&rst.signal, 1, Direction::Input));
    }
    for (name, width, dir) in required {
        let Some(id) = design.signal_id(name) else {
            return Err(format!("missing port `{name}`"));
        };
        let sig = design.signal(id);
        if sig.dir != Some(dir) {
            return Err(format!("port `{name}` has wrong direction"));
        }
        if sig.width != width {
            return Err(format!(
                "port `{name}` is {} bits, testbench expects {width}",
                sig.width
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::{rtllm_sim, vgen_sim};

    /// The reference solution must always pass its own testbench.
    #[test]
    fn reference_solutions_pass() {
        for p in rtllm_sim().problems.iter().take(12) {
            let v = judge(&p.module.source, p, 7);
            assert_eq!(v, Verdict::Pass, "{}: {:?}", p.id, v);
        }
    }

    #[test]
    fn vgen_reference_body_passes_with_header_prefix() {
        for p in vgen_sim().problems.iter().take(8) {
            // The model would generate only the body; reconstruct it by
            // stripping the header from the reference.
            let header = p.plain_header.as_ref().expect("header");
            let body = p.module.source.strip_prefix(header).expect("prefix");
            let v = judge(body, p, 7);
            assert_eq!(v, Verdict::Pass, "{}: {:?}", p.id, v);
        }
    }

    #[test]
    fn garbage_is_syntax_fail() {
        let p = &rtllm_sim().problems[0];
        let v = judge("this is not verilog at all {{{", p, 7);
        assert!(matches!(v, Verdict::SyntaxFail(_)), "{v:?}");
        assert!(!v.syntax_ok());
    }

    #[test]
    fn wrong_module_name_is_syntax_fail() {
        let p = &rtllm_sim().problems[0];
        let code = p.module.source.replacen(&p.module.name, "totally_else", 1);
        let v = judge(&code, p, 7);
        assert!(matches!(v, Verdict::SyntaxFail(_)), "{v:?}");
    }

    #[test]
    fn wrong_logic_is_functional_fail() {
        // Find a problem whose source contains a flippable operator.
        let bench = rtllm_sim();
        let p = bench
            .problems
            .iter()
            .find(|p| p.module.source.contains(" + "))
            .expect("an arithmetic problem");
        let code = p.module.source.replacen(" + ", " - ", 1);
        let v = judge(&code, p, 7);
        assert!(
            matches!(v, Verdict::FunctionalFail(_)),
            "flipped operator must fail functionally: {v:?}"
        );
        assert!(v.syntax_ok(), "but it still compiles");
    }

    #[test]
    fn wrong_port_width_is_syntax_fail() {
        let bench = rtllm_sim();
        // A problem with a multi-bit port whose range text we can tweak.
        let p = bench
            .problems
            .iter()
            .find(|p| p.module.source.contains("[3:0]") || p.module.source.contains("[7:0]"))
            .expect("multi-bit problem");
        let code = if p.module.source.contains("[3:0]") {
            p.module.source.replace("[3:0]", "[14:0]")
        } else {
            p.module.source.replace("[7:0]", "[14:0]")
        };
        let v = judge(&code, p, 7);
        assert!(matches!(v, Verdict::SyntaxFail(_)), "{v:?}");
    }

    #[test]
    fn truncated_code_is_syntax_fail() {
        let p = &rtllm_sim().problems[0];
        let cut = &p.module.source[..p.module.source.len() / 2];
        let v = judge(cut, p, 7);
        assert!(matches!(v, Verdict::SyntaxFail(_)), "{v:?}");
    }
}
