//! Evaluation harness for VeriSpec: metrics, benchmark suites, the
//! generated-code judge, and experiment runners that regenerate every
//! table and figure of the paper.
//!
//! * [`metrics`] — pass@k (Eq. 5), Pass Rate (Eq. 6), speed/speedup
//!   (Eqs. 3–4);
//! * [`benchmarks`] — RTLLM-sim (29 problems) and VGen-sim (17
//!   problems), sized to the paper's Pass-Rate quanta;
//! * [`judge`](mod@judge) — the iverilog-substitute scoring protocol
//!   (compile = parse + elaborate + interface check; function =
//!   golden-model equivalence);
//! * [`pipeline`] — corpus → tokenizer → trained models (with on-disk
//!   caching) → generation;
//! * [`quality`] — the simulation-backed quality gate: per-engine
//!   parse/elaborate/sim-pass rates plus realized acceptance at equal
//!   candidate budget, with the grammar-constrained engine compared
//!   head-to-head against the unconstrained tree (`BENCH_quality.json`);
//! * [`experiments`] — Table I, Table II, Fig. 1, Fig. 5, Fig. 6
//!   runners with quick/full scales;
//! * [`load`] — the serve-aware Table II: latency percentiles under an
//!   open-loop arrival process at equal offered load (streaming
//!   admission, `BENCH_load.json`).
//!
//! # Examples
//!
//! Score a reference solution (it always passes):
//!
//! ```
//! use verispec_eval::benchmarks::rtllm_sim;
//! use verispec_eval::judge::{judge, Verdict};
//!
//! let bench = rtllm_sim();
//! let p = &bench.problems[0];
//! assert_eq!(judge(&p.module.source, p, 7), Verdict::Pass);
//! ```

#![deny(missing_docs)]

pub mod benchmarks;
pub mod experiments;
pub mod judge;
pub mod load;
pub mod metrics;
pub mod pipeline;
pub mod quality;

pub use benchmarks::{rtllm_sim, speed_prompts, vgen_sim, Benchmark, Problem, PromptStyle};
pub use experiments::{
    fig6_from_cells, render_serve_bench, render_session_bench, render_table1, render_table2,
    run_fig1, run_fig5, run_serve_bench, run_session_bench, run_table1, run_table2, QualityCell,
    Scale, ServeBenchRow, SessionBenchRow, SpeedRow, TraceSummary, TradeoffPoint,
};
pub use judge::{judge, Verdict};
pub use load::{
    dispatch_routes, load_families, load_methods, mean_budget, policy_menu, rates_for_utilizations,
    render_load_bench, run_load_bench, DISPATCH_LOAD_FACTOR, DISPATCH_WORKER_COUNTS,
};
pub use metrics::{mean_pass_at_k, pass_at_k, pass_rate, PromptCounts, QualityRow};
pub use pipeline::{
    generate, generate_grammar, generate_stateless, token_budget, Generation, ModelScale, Pipeline,
    PipelineConfig, SharedPrefixEncoder,
};
pub use quality::{
    render_quality_gate, run_quality_gate, stage_judge, QualityGateRow, StageOutcome, QUALITY_TREE,
};
