//! Experiment runners that regenerate every table and figure of the
//! paper's evaluation (§IV): Table I (quality), Table II (speed),
//! Fig. 1 (speed/quality trade-off), Fig. 5 (decode traces), and
//! Fig. 6 (quality vs. training-data size).

use crate::benchmarks::{rtllm_sim, speed_prompts, vgen_sim, Benchmark, Problem};
use crate::judge::judge;
use crate::metrics::{mean_speed, speedup, PromptCounts, QualityRow};
use crate::pipeline::{
    generate, generate_stateless, token_budget, ModelScale, Pipeline, PipelineConfig,
};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;
use verispec_core::{DecodeConfig, TrainMethod};
use verispec_lm::{MlpLm, Sampling};

/// The three training/decoding regimes compared throughout.
pub const METHODS: [TrainMethod; 3] = [TrainMethod::Ours, TrainMethod::Medusa, TrainMethod::Ntp];

/// Experiment scale knobs (quick for CI, full for the paper artifacts).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    /// Pipeline (corpus/tokenizer/training) configuration.
    pub pipeline: PipelineConfig,
    /// Samples per prompt (paper: 20).
    pub n_samples: usize,
    /// Sampling temperatures pooled across samples (paper: 0.2–0.8).
    pub temperatures: Vec<f32>,
    /// Training-data fractions (paper: 1/4, 1/2, 3/4, full).
    pub data_fractions: Vec<(usize, usize)>,
    /// Number of prompts in the speed evaluation (paper: 575).
    pub speed_prompt_count: usize,
    /// Optional cap on problems per benchmark (quick runs).
    pub problem_limit: Option<usize>,
    /// Worker threads.
    pub threads: usize,
}

impl Scale {
    /// A minutes-scale configuration regenerating every artifact.
    pub fn full() -> Scale {
        Scale {
            pipeline: PipelineConfig::default(),
            n_samples: 20,
            temperatures: vec![0.2, 0.4, 0.6, 0.8],
            data_fractions: vec![(1, 4), (1, 2), (3, 4), (1, 1)],
            speed_prompt_count: 64,
            problem_limit: None,
            threads: 2,
        }
    }

    /// A minutes-scale smoke configuration.
    pub fn quick() -> Scale {
        Scale {
            pipeline: PipelineConfig {
                corpus_size: 192,
                vocab: 480,
                n_heads: 6,
                epochs: 2,
                ..Default::default()
            },
            n_samples: 4,
            temperatures: vec![0.4, 0.8],
            data_fractions: vec![(1, 2), (1, 1)],
            speed_prompt_count: 8,
            problem_limit: Some(6),
            threads: 2,
        }
    }
}

/// Deterministic per-(problem, sample) seed.
pub(crate) fn sample_seed(problem_id: &str, sample: usize, salt: u64) -> u64 {
    let mut h = DefaultHasher::new();
    problem_id.hash(&mut h);
    sample.hash(&mut h);
    salt.hash(&mut h);
    h.finish()
}

/// Simple work-stealing parallel map over `items`.
pub(crate) fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let queue: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..threads.max(1) {
            s.spawn(|| loop {
                let job = queue.lock().expect("queue lock").pop();
                let Some((idx, item)) = job else { break };
                let r = f(item);
                results.lock().expect("results lock")[idx] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .expect("results lock")
        .into_iter()
        .map(|r| r.expect("job completed"))
        .collect()
}

// ---------------------------------------------------------------------
// Table I — quality
// ---------------------------------------------------------------------

/// One row of Table I: a (model, method, data-fraction, benchmark) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QualityCell {
    /// Model scale.
    pub model: ModelScale,
    /// Training/decoding method.
    pub method: &'static str,
    /// Data fraction as (numerator, denominator).
    pub fraction: (usize, usize),
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Functional-correctness metrics.
    pub function: QualityRow,
    /// Syntactic-correctness metrics.
    pub syntax: QualityRow,
}

/// Scores one trained model on one benchmark.
pub fn score_benchmark(
    pipe: &Pipeline,
    model: &MlpLm,
    model_scale: ModelScale,
    method: TrainMethod,
    bench: &Benchmark,
    scale: &Scale,
) -> (QualityRow, QualityRow) {
    let limit = scale.problem_limit.unwrap_or(usize::MAX);
    let cost = model_scale.cost_model();
    let problems: Vec<&Problem> = bench.problems.iter().take(limit).collect();
    let counts: Vec<PromptCounts> = problems
        .iter()
        .map(|problem| {
            let mut pc = PromptCounts {
                n: scale.n_samples,
                ..Default::default()
            };
            let budget = token_budget(&pipe.tokenizer, problem, method);
            for sample in 0..scale.n_samples {
                let temp = scale.temperatures[sample % scale.temperatures.len()];
                let cfg = DecodeConfig {
                    max_tokens: budget,
                    sampling: Sampling::Temperature {
                        temperature: temp,
                        top_k: 0,
                    },
                    seed: sample_seed(&problem.id, sample, 11),
                    ..Default::default()
                };
                let generation = generate(model, &pipe.tokenizer, problem, method, &cfg, &cost);
                let verdict = judge(&generation.code, problem, 0xBEEF);
                if verdict.syntax_ok() {
                    pc.syntax_passes += 1;
                }
                if verdict.functional_ok() {
                    pc.functional_passes += 1;
                }
            }
            pc
        })
        .collect();
    (
        QualityRow::from_counts(&counts, |c| c.functional_passes),
        QualityRow::from_counts(&counts, |c| c.syntax_passes),
    )
}

/// Regenerates Table I: the full quality grid.
pub fn run_table1(scale: &Scale, pipe: &Pipeline) -> Vec<QualityCell> {
    let mut jobs: Vec<(ModelScale, TrainMethod, (usize, usize))> = Vec::new();
    for model in [ModelScale::Large, ModelScale::Small] {
        for &fraction in &scale.data_fractions {
            for method in METHODS {
                jobs.push((model, method, fraction));
            }
        }
    }
    let cells = parallel_map(jobs, scale.threads, |(model_scale, method, fraction)| {
        let model = pipe.model_for(model_scale, method, fraction);
        let mut out = Vec::with_capacity(2);
        for bench in [rtllm_sim(), vgen_sim()] {
            let (function, syntax) =
                score_benchmark(pipe, &model, model_scale, method, &bench, scale);
            out.push(QualityCell {
                model: model_scale,
                method: method.name(),
                fraction,
                benchmark: bench.name,
                function,
                syntax,
            });
        }
        out
    });
    cells.into_iter().flatten().collect()
}

// ---------------------------------------------------------------------
// Table II — speed
// ---------------------------------------------------------------------

/// One row of Table II.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeedRow {
    /// Model scale.
    pub model: ModelScale,
    /// Method name.
    pub method: &'static str,
    /// Simulated tokens/second (Eq. 3).
    pub speed: f64,
    /// Speedup vs. the NTP baseline (Eq. 4).
    pub speedup: f64,
    /// Mean tokens committed per decoding step.
    pub tokens_per_step: f64,
}

/// Regenerates Table II: generation speed for both models × 3 methods,
/// greedy plus temperature-0.8 sampling per prompt (paper §IV-A3).
pub fn run_table2(scale: &Scale, pipe: &Pipeline) -> Vec<SpeedRow> {
    let prompts = speed_prompts(scale.speed_prompt_count, 0x5EED);
    let mut rows = Vec::new();
    for model_scale in [ModelScale::Large, ModelScale::Small] {
        let cost = model_scale.cost_model();
        let mut speeds: Vec<(TrainMethod, f64, f64)> = Vec::new();
        for method in METHODS {
            let model = pipe.model_for(model_scale, method, (1, 1));
            let runs: Vec<(usize, f64, f64)> = parallel_map(
                prompts.iter().collect::<Vec<_>>(),
                scale.threads,
                |problem| {
                    let budget = token_budget(&pipe.tokenizer, problem, method);
                    let mut tokens = 0usize;
                    let mut secs = 0.0f64;
                    let mut steps = 0usize;
                    for (i, sampling) in [
                        Sampling::Greedy,
                        Sampling::Temperature {
                            temperature: 0.8,
                            top_k: 0,
                        },
                    ]
                    .into_iter()
                    .enumerate()
                    {
                        let cfg = DecodeConfig {
                            max_tokens: budget,
                            sampling,
                            seed: sample_seed(&problem.id, i, 23),
                            ..Default::default()
                        };
                        let g = generate(&model, &pipe.tokenizer, problem, method, &cfg, &cost);
                        tokens += g.output.clock.tokens;
                        secs += g.output.clock.seconds;
                        steps += g.output.steps;
                    }
                    (tokens, secs, steps as f64)
                },
            );
            let speed_runs: Vec<(usize, f64)> = runs.iter().map(|&(t, s, _)| (t, s)).collect();
            let total_tokens: usize = runs.iter().map(|r| r.0).sum();
            let total_steps: f64 = runs.iter().map(|r| r.2).sum();
            let tps = if total_steps > 0.0 {
                total_tokens as f64 / total_steps
            } else {
                0.0
            };
            speeds.push((method, mean_speed(&speed_runs), tps));
        }
        let ntp_speed = speeds
            .iter()
            .find(|(m, _, _)| *m == TrainMethod::Ntp)
            .map(|(_, s, _)| *s)
            .unwrap_or(1.0);
        for (method, speed, tps) in speeds {
            rows.push(SpeedRow {
                model: model_scale,
                method: method.name(),
                speed,
                speedup: speedup(speed, ntp_speed),
                tokens_per_step: tps,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------
// Session-reuse wall-clock comparison (BENCH_decode.json)
// ---------------------------------------------------------------------

/// One row of the cached-session vs. stateless-shim wall-clock
/// comparison: the same engine, same outputs, different model-layer
/// backend. Unlike the simulated Table-II speeds, these are *real*
/// seconds of the Rust implementation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionBenchRow {
    /// Method name (NTP / Medusa / Ours).
    pub method: &'static str,
    /// Tokens generated (identical on both paths by construction).
    pub tokens: usize,
    /// Wall-clock seconds decoding through cached sessions.
    pub session_secs: f64,
    /// Wall-clock seconds decoding through the stateless shim.
    pub stateless_secs: f64,
    /// Tokens/second through cached sessions.
    pub session_tps: f64,
    /// Tokens/second through the stateless shim.
    pub stateless_tps: f64,
    /// `session_tps / stateless_tps`.
    pub speedup: f64,
}

/// Measures wall-clock decode throughput of the session-based model
/// layer against the stateless shim on the speed-prompt set, verifying
/// token-for-token identical outputs along the way.
///
/// # Panics
///
/// Panics if the two paths ever produce different tokens — that would
/// mean the session cache changed semantics, which the engines rely on
/// never happening.
pub fn run_session_bench(
    scale: &Scale,
    pipe: &Pipeline,
    model_scale: ModelScale,
) -> Vec<SessionBenchRow> {
    let prompts = speed_prompts(scale.speed_prompt_count, 0x5E55);
    let cost = model_scale.cost_model();
    METHODS
        .iter()
        .map(|&method| {
            let model = pipe.model_for(model_scale, method, (1, 1));
            let mut tokens = 0usize;
            let mut session_secs = 0.0f64;
            let mut stateless_secs = 0.0f64;
            for (i, problem) in prompts.iter().enumerate() {
                let cfg = DecodeConfig {
                    max_tokens: token_budget(&pipe.tokenizer, problem, method),
                    seed: sample_seed(&problem.id, i, 31),
                    ..Default::default()
                };
                let t0 = std::time::Instant::now();
                let with_session = generate(&model, &pipe.tokenizer, problem, method, &cfg, &cost);
                session_secs += t0.elapsed().as_secs_f64();
                let t1 = std::time::Instant::now();
                let with_shim =
                    generate_stateless(&model, &pipe.tokenizer, problem, method, &cfg, &cost);
                stateless_secs += t1.elapsed().as_secs_f64();
                assert_eq!(
                    with_session.output.tokens,
                    with_shim.output.tokens,
                    "session vs stateless divergence ({} on {})",
                    method.name(),
                    problem.id
                );
                tokens += with_session.output.tokens.len();
            }
            SessionBenchRow {
                method: method.name(),
                tokens,
                session_secs,
                stateless_secs,
                session_tps: tokens as f64 / session_secs.max(1e-12),
                stateless_tps: tokens as f64 / stateless_secs.max(1e-12),
                speedup: stateless_secs / session_secs.max(1e-12),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Served mode — continuous-batching throughput (BENCH_serve.json)
// ---------------------------------------------------------------------

/// One row of the serving-throughput sweep: the same mixed request set
/// served at one concurrency level vs. the serial one-request-at-a-time
/// baseline. Real wall-clock seconds, equal outputs asserted.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeBenchRow {
    /// Session-pool size and per-tick batch limit of the served run.
    pub concurrency: usize,
    /// Requests in the workload.
    pub requests: usize,
    /// Total generated tokens (identical on every path by construction).
    pub tokens: usize,
    /// Wall-clock seconds running each request alone, back to back.
    pub serial_secs: f64,
    /// Wall-clock seconds of the continuous-batching engine.
    pub serve_secs: f64,
    /// Wall-clock seconds of the `std::thread::scope` worker pool.
    pub threaded_secs: f64,
    /// Serial tokens/second.
    pub serial_tps: f64,
    /// Served tokens/second (single engine, fused batches).
    pub serve_tps: f64,
    /// Worker-pool tokens/second.
    pub threaded_tps: f64,
    /// `serve_tps / serial_tps`.
    pub speedup: f64,
    /// `threaded_tps / serial_tps`.
    pub threaded_speedup: f64,
    /// Worker threads in the pooled run.
    pub workers: usize,
    /// Candidate-tree nodes scored through fused cross-request passes.
    pub fused_verify_nodes: usize,
}

/// Builds the serving workload: a mixed request set over the speed
/// prompts — short comb modules and long seq modules, engines cycling
/// over the full per-request menu (syntax-aligned tree/chain, MEDUSA
/// tree/chain, NTP, draft-verify), greedy and sampled.
fn serve_workload(
    pipe: &Pipeline,
    enc: &crate::pipeline::SharedPrefixEncoder<'_>,
    count: usize,
) -> Vec<verispec_serve::Request> {
    use verispec_serve::{EngineChoice, Request};
    let engines = [
        EngineChoice::SyntaxAligned {
            tree: Some(vec![2, 2, 1]),
        },
        EngineChoice::MedusaChain,
        EngineChoice::SyntaxAligned { tree: None },
        EngineChoice::MedusaTree(vec![3, 2]),
        EngineChoice::Ntp,
        EngineChoice::DraftVerify { gamma: 4 },
    ];
    let prompts = speed_prompts(count, 0x5EB7E);
    prompts
        .iter()
        .enumerate()
        .map(|(i, problem)| {
            let prompt = enc.encode(&problem.prompt_tagged());
            let cfg = DecodeConfig {
                max_tokens: token_budget(&pipe.tokenizer, problem, TrainMethod::Ours),
                sampling: if i % 2 == 0 {
                    Sampling::Greedy
                } else {
                    Sampling::Temperature {
                        temperature: 0.8,
                        top_k: 0,
                    }
                },
                seed: sample_seed(&problem.id, i, 47),
                ..Default::default()
            };
            Request::new(i as u64, prompt, engines[i % engines.len()].clone(), cfg)
        })
        .collect()
}

/// Measures continuous-batching serving throughput against the serial
/// single-session baseline at each concurrency level, asserting every
/// request's served output token-for-token equal to the serial path.
///
/// The served runs admit each request by forking one ingested shared
/// Alpaca-preamble session ([`crate::pipeline::SharedPrefixEncoder`] +
/// [`verispec_lm::DecodeSession::fork`]) instead of re-ingesting the
/// preamble per request.
///
/// # Panics
///
/// Panics if any served output diverges from the serial engine's — the
/// serving layer is a performance mechanism, never a semantic one.
pub fn run_serve_bench(
    scale: &Scale,
    pipe: &Pipeline,
    model_scale: ModelScale,
    concurrencies: &[usize],
) -> Vec<ServeBenchRow> {
    use verispec_lm::LanguageModel;
    use verispec_serve::{serve_all_threaded, ServeConfig, ServeEngine};

    let model = pipe.model_for(model_scale, TrainMethod::Ours, (1, 1));
    let cost = model_scale.cost_model();
    // N-gram draft for the draft-verify requests, trained on the tagged
    // training sequences.
    let mut draft = verispec_lm::NgramLm::new(3, pipe.tokenizer.vocab_size());
    for seq in pipe.tagged_sequences.iter().take(48) {
        draft.train_sequence(seq);
    }
    let enc = crate::pipeline::SharedPrefixEncoder::new(&pipe.tokenizer);
    let requests = serve_workload(pipe, &enc, scale.speed_prompt_count.max(1));

    // Machine speed drifts over a run (shared cores, frequency
    // scaling), so measuring the serial baseline once up front would
    // bias whichever path runs later. Instead every concurrency row
    // measures its three paths **interleaved**, `REPEATS` rounds of
    // serial → served → pooled, keeping each path's fastest wall clock
    // (the min is the least noise-contaminated sample). Outputs are
    // asserted equal on every repetition.
    const REPEATS: usize = 3;

    // Serial baseline: each request alone through the public engines.
    let run_serial = || -> Vec<Vec<verispec_lm::TokenId>> {
        requests
            .iter()
            .map(|req| {
                use verispec_serve::EngineChoice;
                match &req.engine {
                    EngineChoice::Ntp => {
                        verispec_core::decode_ntp(
                            &model,
                            &req.prompt,
                            &req.engine.decode_config(&req.cfg),
                            &cost,
                        )
                        .tokens
                    }
                    EngineChoice::DraftVerify { .. } => {
                        let dcfg = req.engine.draft_config(&req.cfg).expect("draft engine");
                        verispec_core::decode_draft_speculative(
                            &model,
                            &draft,
                            &req.prompt,
                            &dcfg,
                            &cost,
                        )
                        .0
                        .tokens
                    }
                    _ => {
                        verispec_core::decode_speculative(
                            &model,
                            &req.prompt,
                            &req.engine.decode_config(&req.cfg),
                            &cost,
                        )
                        .tokens
                    }
                }
            })
            .collect()
    };
    let serial = run_serial();
    let tokens: usize = serial.iter().map(Vec::len).sum();

    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    concurrencies
        .iter()
        .map(|&c| {
            let serve_cfg = ServeConfig::concurrency(c);
            let workers = c.min(avail).max(1);
            let mut serial_secs = f64::INFINITY;
            let mut serve_secs = f64::INFINITY;
            let mut threaded_secs = f64::INFINITY;
            let mut fused_verify_nodes = 0usize;
            for _ in 0..REPEATS {
                // Serial baseline round.
                let t0 = std::time::Instant::now();
                let again = run_serial();
                serial_secs = serial_secs.min(t0.elapsed().as_secs_f64());
                assert_eq!(again, serial, "serial decode must be deterministic");

                // Single-engine continuous batching, prefix-forked
                // admission. The request clones are harness overhead
                // (prepared untimed), but engine construction, prefix
                // ingestion, forking, and submission are real serving
                // work and stay inside the timer — the serial timer
                // likewise pays per-request session setup inside the
                // decode calls.
                let cloned: Vec<verispec_serve::Request> = requests.clone();
                let t1 = std::time::Instant::now();
                let mut prefix_session = model.session();
                prefix_session.append(&enc.preamble_ids);
                let mut engine = ServeEngine::new(&model, serve_cfg.clone()).with_draft(&draft);
                for req in cloned {
                    match prefix_session.fork() {
                        Some(fork) if req.prompt.starts_with(prefix_session.tokens()) => {
                            engine.submit_with_session(req, fork)
                        }
                        _ => engine.submit(req),
                    }
                }
                let report = engine.run(&cost);
                serve_secs = serve_secs.min(t1.elapsed().as_secs_f64());
                fused_verify_nodes = report.stats.fused_verify_nodes;
                assert_eq!(
                    report.completions.len(),
                    requests.len(),
                    "served run lost requests (concurrency {c})"
                );
                for (completion, want) in report.completions.iter().zip(&serial) {
                    assert_eq!(
                        &completion.output.tokens, want,
                        "served output diverged from serial (request {}, concurrency {c})",
                        completion.id
                    );
                }

                // Worker-pool round: one engine per worker, shared
                // model (request clones again prepared untimed).
                let cloned: Vec<verispec_serve::Request> = requests.clone();
                let t2 = std::time::Instant::now();
                let pooled = serve_all_threaded(
                    &model,
                    Some(&draft),
                    cloned,
                    &ServeConfig::concurrency(c.div_ceil(workers)),
                    &cost,
                    workers,
                );
                threaded_secs = threaded_secs.min(t2.elapsed().as_secs_f64());
                assert_eq!(
                    pooled.completions.len(),
                    requests.len(),
                    "pooled run lost requests (concurrency {c})"
                );
                for (completion, want) in pooled.completions.iter().zip(&serial) {
                    assert_eq!(
                        &completion.output.tokens, want,
                        "pooled output diverged from serial (request {}, concurrency {c})",
                        completion.id
                    );
                }
            }

            let serial_tps = tokens as f64 / serial_secs.max(1e-12);
            let serve_tps = tokens as f64 / serve_secs.max(1e-12);
            let threaded_tps = tokens as f64 / threaded_secs.max(1e-12);
            ServeBenchRow {
                concurrency: c,
                requests: requests.len(),
                tokens,
                serial_secs,
                serve_secs,
                threaded_secs,
                serial_tps,
                serve_tps,
                threaded_tps,
                speedup: serve_tps / serial_tps.max(1e-12),
                threaded_speedup: threaded_tps / serial_tps.max(1e-12),
                workers,
                fused_verify_nodes,
            }
        })
        .collect()
}

/// Renders the serving-throughput sweep as a table.
pub fn render_serve_bench(rows: &[ServeBenchRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "Serve throughput: continuous batching vs serial single-session (equal outputs)\n",
    );
    out.push_str(
        "conc  reqs  tokens  serial tok/s  served tok/s  speedup  pooled tok/s  speedup  workers\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>4} {:>5} {:>7}  {:>12.0}  {:>12.0}  {:>6.2}x  {:>12.0}  {:>6.2}x  {:>7}\n",
            r.concurrency,
            r.requests,
            r.tokens,
            r.serial_tps,
            r.serve_tps,
            r.speedup,
            r.threaded_tps,
            r.threaded_speedup,
            r.workers
        ));
    }
    out
}

/// Renders the session-reuse comparison as a table.
pub fn render_session_bench(rows: &[SessionBenchRow]) -> String {
    let mut out = String::new();
    out.push_str("Decode wall-clock: cached session vs stateless shim\n");
    out.push_str("method   tokens   session tok/s   stateless tok/s   speedup\n");
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>6}  {:>13.0}  {:>16.0}  {:>7.2}x\n",
            r.method, r.tokens, r.session_tps, r.stateless_tps, r.speedup
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Fig. 1 — speed/quality scatter
// ---------------------------------------------------------------------

/// One point of Fig. 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TradeoffPoint {
    /// Method name.
    pub method: &'static str,
    /// Simulated tokens/second.
    pub speed: f64,
    /// Functional Pass Rate (%) on RTLLM-sim.
    pub pass_rate: f64,
    /// Syntactic Pass Rate (%) on RTLLM-sim (the informative axis at
    /// this substrate scale; see EXPERIMENTS.md).
    pub syntax_pass_rate: f64,
}

/// Regenerates Fig. 1 for the Large (CodeLlama-like) model at full data.
pub fn run_fig1(scale: &Scale, pipe: &Pipeline) -> Vec<TradeoffPoint> {
    let speed_rows = run_table2(scale, pipe);
    let bench = rtllm_sim();
    METHODS
        .iter()
        .map(|&method| {
            let model = pipe.model_for(ModelScale::Large, method, (1, 1));
            let (function, syntax) =
                score_benchmark(pipe, &model, ModelScale::Large, method, &bench, scale);
            let speed = speed_rows
                .iter()
                .find(|r| r.model == ModelScale::Large && r.method == method.name())
                .map(|r| r.speed)
                .unwrap_or(0.0);
            TradeoffPoint {
                method: method.name(),
                speed,
                pass_rate: function.pass_rate,
                syntax_pass_rate: syntax.pass_rate,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fig. 5 — decode trace comparison
// ---------------------------------------------------------------------

/// Per-method decode trace for the Fig.-5 example.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Method name.
    pub method: &'static str,
    /// Decoding steps to finish the module.
    pub steps: usize,
    /// Raw tokens generated.
    pub tokens: usize,
    /// The text committed at each step.
    pub step_texts: Vec<String>,
    /// Fraction of multi-token steps ending on a fragment boundary.
    pub fragment_complete_ratio: f64,
}

/// Regenerates Fig. 5: greedy decode traces of the `data_register`
/// example under the three methods.
pub fn run_fig5(pipe: &Pipeline, model_scale: ModelScale) -> Vec<TraceSummary> {
    let bench = rtllm_sim();
    let problem = bench
        .problems
        .iter()
        .find(|p| p.module.family == "data_register")
        .expect("RTLLM-sim includes the paper's data_register example");
    let cost = model_scale.cost_model();
    METHODS
        .iter()
        .map(|&method| {
            let model = pipe.model_for(model_scale, method, (1, 1));
            let cfg = DecodeConfig {
                max_tokens: token_budget(&pipe.tokenizer, problem, method),
                ..Default::default()
            };
            let g = generate(&model, &pipe.tokenizer, problem, method, &cfg, &cost);
            let step_texts: Vec<String> = g
                .output
                .trace
                .iter()
                .map(|st| pipe.tokenizer.decode(&st.committed))
                .collect();
            let multi: Vec<_> = g
                .output
                .trace
                .iter()
                .filter(|st| st.committed.len() > 1)
                .collect();
            let frag_ok = multi.iter().filter(|st| st.fragment_complete).count();
            TraceSummary {
                method: method.name(),
                steps: g.output.steps,
                tokens: g.output.tokens.len(),
                step_texts,
                fragment_complete_ratio: if multi.is_empty() {
                    1.0
                } else {
                    frag_ok as f64 / multi.len() as f64
                },
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fig. 6 — pass@5 vs data size
// ---------------------------------------------------------------------

/// One series point of Fig. 6.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataSizePoint {
    /// Method name.
    pub method: &'static str,
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Data fraction.
    pub fraction: (usize, usize),
    /// Functional pass@5 (%).
    pub function_pass5: f64,
    /// Syntax pass@5 (%).
    pub syntax_pass5: f64,
}

/// Extracts the Fig.-6 series (Small model, pass@5 vs data size) from
/// Table-I cells.
pub fn fig6_from_cells(cells: &[QualityCell]) -> Vec<DataSizePoint> {
    cells
        .iter()
        .filter(|c| c.model == ModelScale::Small)
        .map(|c| DataSizePoint {
            method: c.method,
            benchmark: c.benchmark,
            fraction: c.fraction,
            function_pass5: c.function.pass_at_5,
            syntax_pass5: c.syntax.pass_at_5,
        })
        .collect()
}

// ---------------------------------------------------------------------
// Rendering helpers (used by the bench harness binaries)
// ---------------------------------------------------------------------

/// Renders Table I in the paper's layout.
pub fn render_table1(cells: &[QualityCell]) -> String {
    let mut out = String::new();
    out.push_str(
        "Table I — quality of generated Verilog (Function / Syntax)\n\
         model      data   benchmark  | metric      Ours   Medusa      NTP\n",
    );
    for model in [ModelScale::Large, ModelScale::Small] {
        let fractions: Vec<(usize, usize)> = {
            let mut f: Vec<_> = cells
                .iter()
                .filter(|c| c.model == model)
                .map(|c| c.fraction)
                .collect();
            f.sort_by(|a, b| (a.0 * b.1).cmp(&(b.0 * a.1)));
            f.dedup();
            f
        };
        for fraction in fractions {
            for benchmark in ["RTLLM-sim", "VGen-sim"] {
                for (section, get) in [("func", true), ("syntax", false)] {
                    for (metric, field) in [
                        ("pass@1", 0usize),
                        ("pass@5", 1),
                        ("pass@10", 2),
                        ("PassRate", 3),
                    ] {
                        let mut vals = [f64::NAN; 3];
                        for (mi, mname) in ["Ours", "Medusa", "NTP"].iter().enumerate() {
                            if let Some(c) = cells.iter().find(|c| {
                                c.model == model
                                    && c.fraction == fraction
                                    && c.benchmark == benchmark
                                    && &c.method == mname
                            }) {
                                let row = if get { &c.function } else { &c.syntax };
                                vals[mi] = match field {
                                    0 => row.pass_at_1,
                                    1 => row.pass_at_5,
                                    2 => row.pass_at_10,
                                    _ => row.pass_rate,
                                };
                            }
                        }
                        out.push_str(&format!(
                            "{:<10} {:>2}/{:<2}  {:<10} | {:<6} {:<8} {:>7.2} {:>8.2} {:>8.2}\n",
                            model.name(),
                            fraction.0,
                            fraction.1,
                            benchmark,
                            section,
                            metric,
                            vals[0],
                            vals[1],
                            vals[2],
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Renders Table II in the paper's layout.
pub fn render_table2(rows: &[SpeedRow]) -> String {
    let mut out = String::new();
    out.push_str("Table II — generation speed\n");
    out.push_str("model      method   tokens/s   speedup   tokens/step\n");
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:<8} {:>8.2}  {:>7.2}x  {:>11.2}\n",
            r.model.name(),
            r.method,
            r.speed,
            r.speedup,
            r.tokens_per_step
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro_scale() -> Scale {
        Scale {
            pipeline: PipelineConfig {
                corpus_size: 48,
                vocab: 380,
                n_heads: 3,
                epochs: 1,
                ..Default::default()
            },
            n_samples: 2,
            temperatures: vec![0.5],
            data_fractions: vec![(1, 1)],
            speed_prompt_count: 2,
            problem_limit: Some(2),
            threads: 2,
        }
    }

    #[test]
    fn table2_has_all_rows_and_ntp_speedup_is_one() {
        let scale = micro_scale();
        let pipe = Pipeline::build(scale.pipeline);
        let rows = run_table2(&scale, &pipe);
        assert_eq!(rows.len(), 6);
        for r in rows.iter().filter(|r| r.method == "NTP") {
            assert!((r.speedup - 1.0).abs() < 1e-9, "NTP speedup {}", r.speedup);
            assert!(r.tokens_per_step <= 1.0 + 1e-9);
        }
        let rendered = render_table2(&rows);
        assert!(rendered.contains("CodeLlama"));
        assert!(rendered.contains("CodeT5p"));
    }

    #[test]
    fn table1_produces_full_grid() {
        let scale = micro_scale();
        let pipe = Pipeline::build(scale.pipeline);
        let cells = run_table1(&scale, &pipe);
        // 2 models × 1 fraction × 3 methods × 2 benchmarks.
        assert_eq!(cells.len(), 12);
        let rendered = render_table1(&cells);
        assert!(rendered.contains("pass@10"));
        let fig6 = fig6_from_cells(&cells);
        assert_eq!(fig6.len(), 6);
    }

    #[test]
    fn fig5_traces_follow_method_semantics() {
        let scale = micro_scale();
        let pipe = Pipeline::build(scale.pipeline);
        let traces = run_fig5(&pipe, ModelScale::Small);
        assert_eq!(traces.len(), 3);
        let ntp = traces.iter().find(|t| t.method == "NTP").expect("ntp");
        assert_eq!(ntp.steps, ntp.tokens, "NTP is one token per step");
        let ours = traces.iter().find(|t| t.method == "Ours").expect("ours");
        assert!(
            (ours.fragment_complete_ratio - 1.0).abs() < 1e-9,
            "Ours multi-token steps must end on fragment boundaries"
        );
    }

    #[test]
    fn serve_bench_verifies_parity_and_reports_throughput() {
        let scale = micro_scale();
        let pipe = Pipeline::build(scale.pipeline);
        // run_serve_bench panics on any served/serial divergence, so a
        // clean return is itself the parity assertion.
        let rows = run_serve_bench(&scale, &pipe, ModelScale::Small, &[1, 2]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.requests, 2);
            assert!(r.tokens > 0);
            assert!(r.serial_tps > 0.0 && r.serve_tps > 0.0 && r.threaded_tps > 0.0);
        }
        assert!(
            rows[1].fused_verify_nodes > 0,
            "fusion ran at concurrency 2"
        );
        let rendered = render_serve_bench(&rows);
        assert!(rendered.contains("speedup"));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..50).collect::<Vec<_>>(), 3, |x| x * 2);
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }
}
