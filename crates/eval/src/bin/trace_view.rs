//! Terminal viewer for saved `verispec-trace` event logs: renders the
//! per-request phase timeline, the top-N slowest-phase table, the
//! metrics-registry summary, and the flamegraph-style phase
//! attribution — and optionally re-exports the log as Chrome
//! trace-event JSON for Perfetto.
//!
//! Usage:
//!   cargo run -p verispec-eval --bin trace_view -- <events.json> \
//!     [--top N] [--chrome out.trace.json]
//!
//! `<events.json>` is a serialized event log
//! ([`verispec_trace::log_to_json`]), e.g. the committed golden log
//! `crates/load/tests/traces/eviction_churn.events.json`.

use verispec_trace::{
    attribute_phases, chrome_trace, log_from_json, render_flame, slowest_phases, timelines,
    MetricsRegistry, Phase, RequestTimeline,
};

/// Width of the timeline gutter in character cells.
const LANE_WIDTH: usize = 64;

fn usage() -> ! {
    eprintln!("usage: trace_view <events.json> [--top N] [--chrome out.trace.json]");
    std::process::exit(2);
}

/// One request's lane: a `LANE_WIDTH`-cell strip of the run's tick
/// range with each cell showing the phase occupying it (`.` queued,
/// `#` decode, `~` warmup, `=` parked, space = not alive).
fn lane(t: &RequestTimeline, horizon: u64) -> String {
    let scale = |tick: u64| ((tick as f64 / horizon.max(1) as f64) * LANE_WIDTH as f64) as usize;
    let mut cells = vec![' '; LANE_WIDTH + 1];
    for span in &t.phases {
        let glyph = match span.phase {
            Phase::Queued => '.',
            Phase::Warmup => '~',
            Phase::Decode => '#',
            Phase::Parked => '=',
        };
        let len = cells.len();
        let (a, b) = (
            scale(span.start),
            scale(span.end).max(scale(span.start) + 1),
        );
        for cell in cells.iter_mut().take(b.min(len)).skip(a) {
            *cell = glyph;
        }
    }
    cells.into_iter().collect::<String>().trim_end().to_string()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut top = 10usize;
    let mut chrome_out = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--top" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => top = n,
                None => usage(),
            },
            "--chrome" => match args.next() {
                Some(p) => chrome_out = Some(p),
                None => usage(),
            },
            _ if path.is_none() => path = Some(arg),
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    let body = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("trace_view: {path}: {e}");
        std::process::exit(1);
    });
    let events = log_from_json(&body).unwrap_or_else(|e| {
        eprintln!("trace_view: {path}: not an event log: {e}");
        std::process::exit(1);
    });

    if let Some(out) = chrome_out {
        std::fs::write(&out, chrome_trace(&events)).unwrap_or_else(|e| {
            eprintln!("trace_view: {out}: {e}");
            std::process::exit(1);
        });
        println!("wrote Chrome trace-event JSON to {out} (open in ui.perfetto.dev)");
    }

    let lines = timelines(&events);
    let horizon = lines.values().map(RequestTimeline::end).max().unwrap_or(0);
    println!("== request timelines (ticks 0..{horizon}; . queued  ~ warmup  # decode  = parked)");
    for t in lines.values() {
        let outcome = match (t.shed, t.finished) {
            (Some(s), _) => format!("shed @{s}"),
            (None, Some(f)) => format!("fin @{f}"),
            (None, None) => "open".to_string(),
        };
        println!(
            "  req {:>4} w{} [{:<width$}] {:>9}  q={} d={} p={} steps={} defers={}",
            t.request,
            t.worker,
            lane(t, horizon),
            outcome,
            t.ticks_in(Phase::Queued),
            t.ticks_in(Phase::Decode),
            t.ticks_in(Phase::Parked),
            t.steps,
            t.deferrals,
            width = LANE_WIDTH,
        );
    }

    println!("\n== top {top} slowest phases");
    println!(
        "  {:>5} {:>6} {:>7} {:>8} {:>8}",
        "ticks", "req", "worker", "phase", "start"
    );
    for p in slowest_phases(&events, top) {
        println!(
            "  {:>5} {:>6} {:>7} {:>8} {:>8}",
            p.ticks, p.request, p.worker, p.phase, p.start
        );
    }

    println!("\n== phase attribution");
    print!("{}", render_flame(&attribute_phases(&events)));

    println!("\n== metrics registry");
    print!("{}", MetricsRegistry::from_events(&events).render());
}
