//! Bench-trajectory guard: structural CI gate over the four committed
//! bench artifacts (`BENCH_decode.json`, `BENCH_serve.json`,
//! `BENCH_load.json`, `BENCH_quality.json`).
//!
//! The bench smokes regenerate the artifacts; this binary then fails
//! the build if their *shape* regressed — a column renamed or dropped,
//! a speedup that stopped parsing, a parity flag that is no longer
//! true, a method/policy/dispatch/fault-recovery cell that silently
//! vanished from a sweep. Numeric trajectories (is the speedup getting worse?) stay a
//! human judgment over the uploaded artifacts; the guard's job is to
//! make sure the numbers are still *there*, still finite, and still
//! produced under proven parity.
//!
//! Usage: `cargo run -p verispec-eval --bin bench_guard [--] [dir]`
//! where `dir` holds the four JSONs (default: the workspace root).
//! Exits non-zero listing every violated invariant.

use serde::Value;

/// Collects invariant violations instead of bailing at the first, so
/// one run reports everything that broke.
struct Guard {
    violations: Vec<String>,
    checks: usize,
}

impl Guard {
    fn new() -> Self {
        Guard {
            violations: Vec::new(),
            checks: 0,
        }
    }

    fn check(&mut self, ok: bool, what: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.violations.push(what());
        }
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match *v {
        Value::Int(i) => Some(i as f64),
        Value::UInt(u) => Some(u as f64),
        Value::Float(f) => Some(f),
        _ => None,
    }
}

fn field<'a>(row: &'a Value, name: &str) -> Option<&'a Value> {
    row.field(name).ok()
}

/// A required finite numeric field; records a violation otherwise.
fn number(g: &mut Guard, row: &Value, ctx: &str, name: &str) -> f64 {
    let v = field(row, name).and_then(as_f64);
    g.check(v.is_some_and(f64::is_finite), || {
        format!("{ctx}: field `{name}` missing or not a finite number")
    });
    v.unwrap_or(f64::NAN)
}

fn string<'a>(g: &mut Guard, row: &'a Value, ctx: &str, name: &str) -> &'a str {
    let v = field(row, name).and_then(Value::as_str);
    g.check(v.is_some(), || {
        format!("{ctx}: field `{name}` missing or not a string")
    });
    v.unwrap_or("")
}

fn rows<'a>(g: &mut Guard, doc: &'a Value, file: &str) -> &'a [Value] {
    match doc {
        Value::Seq(items) if !items.is_empty() => items,
        Value::Seq(_) => {
            g.violations.push(format!("{file}: empty row array"));
            &[]
        }
        _ => {
            g.violations.push(format!("{file}: not a JSON array"));
            &[]
        }
    }
}

/// The six quantile summaries every load row must carry, each with
/// sane order statistics (nearest-rank quantiles are monotone).
fn check_quantiles(g: &mut Guard, row: &Value, ctx: &str) {
    let Some(q) = field(row, "quantiles") else {
        g.violations
            .push(format!("{ctx}: field `quantiles` missing"));
        return;
    };
    for dist in [
        "queue_ticks",
        "ttft_ticks",
        "e2e_ticks",
        "gap_ticks",
        "ttft_secs",
        "e2e_secs",
    ] {
        let Some(d) = field(q, dist) else {
            g.violations
                .push(format!("{ctx}: quantile summary `{dist}` missing"));
            continue;
        };
        let dctx = format!("{ctx}.quantiles.{dist}");
        let p50 = number(g, d, &dctx, "p50");
        let p90 = number(g, d, &dctx, "p90");
        let p99 = number(g, d, &dctx, "p99");
        let max = number(g, d, &dctx, "max");
        number(g, d, &dctx, "mean");
        number(g, d, &dctx, "n");
        g.check(p50 <= p90 && p90 <= p99 && p99 <= max, || {
            format!("{dctx}: order statistics not monotone ({p50}/{p90}/{p99}/max {max})")
        });
    }
}

fn check_decode(g: &mut Guard, doc: &Value) {
    let mut methods = Vec::new();
    for (i, row) in rows(g, doc, "BENCH_decode.json").iter().enumerate() {
        let ctx = format!("BENCH_decode.json[{i}]");
        methods.push(string(g, row, &ctx, "method").to_string());
        let tokens = number(g, row, &ctx, "tokens");
        g.check(tokens > 0.0, || format!("{ctx}: zero tokens measured"));
        for col in ["session_tps", "stateless_tps", "speedup"] {
            let v = number(g, row, &ctx, col);
            g.check(v > 0.0, || format!("{ctx}: `{col}` must be positive ({v})"));
        }
    }
    for want in ["Ours", "Medusa", "NTP"] {
        g.check(methods.iter().any(|m| m == want), || {
            format!("BENCH_decode.json: method `{want}` vanished from the sweep")
        });
    }
}

fn check_serve(g: &mut Guard, doc: &Value) {
    for (i, row) in rows(g, doc, "BENCH_serve.json").iter().enumerate() {
        let ctx = format!("BENCH_serve.json[{i}]");
        let conc = number(g, row, &ctx, "concurrency");
        g.check(conc >= 1.0, || format!("{ctx}: concurrency < 1"));
        let tokens = number(g, row, &ctx, "tokens");
        g.check(tokens > 0.0, || format!("{ctx}: zero tokens measured"));
        for col in [
            "serial_tps",
            "serve_tps",
            "threaded_tps",
            "speedup",
            "threaded_speedup",
        ] {
            let v = number(g, row, &ctx, col);
            g.check(v > 0.0, || format!("{ctx}: `{col}` must be positive ({v})"));
        }
    }
}

/// One cell of the Zipf shared-stem cache sweep, as read back from the
/// artifact: cache state, fleet shape, TTFT order statistics, and the
/// prefix hit-rate.
struct ZipfCell {
    cache: String,
    workers: usize,
    route: String,
    ttft_p99: f64,
    ttft_mean: f64,
    hit_rate: Option<f64>,
}

/// One fault-injected recovery cell, as read back from the artifact:
/// the scenario (in the `policy` column), fleet shape, and the
/// recovery columns the guard gates.
struct FaultCell {
    scenario: String,
    crashes: f64,
    migrations: f64,
    replay_tokens: f64,
    recovery_ttft_p99: Option<f64>,
}

fn check_load(g: &mut Guard, doc: &Value) {
    let mut methods = Vec::new();
    let mut policies = Vec::new();
    let mut dispatch_cells = Vec::new();
    let mut zipf_cells: Vec<ZipfCell> = Vec::new();
    let mut fault_cells: Vec<FaultCell> = Vec::new();
    for (i, row) in rows(g, doc, "BENCH_load.json").iter().enumerate() {
        let ctx = format!("BENCH_load.json[{i}]");
        methods.push(string(g, row, &ctx, "method").to_string());
        let policy = string(g, row, &ctx, "policy").to_string();
        policies.push(policy.clone());
        let process = string(g, row, &ctx, "process").to_string();
        let route = string(g, row, &ctx, "route").to_string();
        let workers = number(g, row, &ctx, "workers");
        g.check(workers >= 1.0, || format!("{ctx}: workers < 1"));
        if process == "zipf" {
            let ttft = |stat: &str| {
                field(row, "quantiles")
                    .and_then(|q| field(q, "ttft_ticks"))
                    .and_then(|d| field(d, stat))
                    .and_then(as_f64)
                    .unwrap_or(f64::NAN)
            };
            zipf_cells.push(ZipfCell {
                cache: policy.clone(),
                workers: workers as usize,
                route: route.clone(),
                ttft_p99: ttft("p99"),
                ttft_mean: ttft("mean"),
                hit_rate: field(row, "prefix_hit_rate").and_then(as_f64),
            });
        } else if route != "single" {
            dispatch_cells.push((workers as usize, route.clone()));
        }
        if policy == "worker-crash" || policy == "crash-storm" {
            fault_cells.push(FaultCell {
                scenario: policy.clone(),
                crashes: number(g, row, &ctx, "worker_crashes"),
                migrations: number(g, row, &ctx, "migrations"),
                replay_tokens: number(g, row, &ctx, "replay_tokens"),
                recovery_ttft_p99: field(row, "recovery_ttft_p99").and_then(as_f64),
            });
        }

        // The parity flag is the guard's core promise: every recorded
        // row was produced under a proven streamed==batch (or
        // dispatched==single-engine) assertion.
        let parity = field(row, "parity");
        g.check(matches!(parity, Some(Value::Bool(true))), || {
            format!("{ctx}: `parity` missing or not true")
        });

        // The threaded-runtime columns: every dispatched cell must
        // carry the threaded twin's wall clock, recorded under a
        // proven schedule-parity assertion; single-engine rows have no
        // twin. At one worker the threaded runtime is the lockstep
        // schedule plus channel hops, so its wall time must stay
        // within a sane overhead envelope of the lockstep drive's
        // (tick-space work is identical by construction — only
        // coordination cost may differ).
        let threaded_wall = field(row, "threaded_wall_secs").and_then(as_f64);
        if route == "single" {
            g.check(threaded_wall.is_none(), || {
                format!("{ctx}: single-engine row carries `threaded_wall_secs`")
            });
        } else {
            let threaded_parity = field(row, "threaded_parity");
            g.check(matches!(threaded_parity, Some(Value::Bool(true))), || {
                format!("{ctx}: `threaded_parity` missing or not true")
            });
            g.check(
                threaded_wall.is_some_and(|w| w.is_finite() && w >= 0.0),
                || format!("{ctx}: `threaded_wall_secs` missing or not a finite duration"),
            );
            if workers == 1.0 {
                let wall = number(g, row, &ctx, "wall_secs");
                if let Some(tw) = threaded_wall {
                    g.check(tw <= 10.0 * wall + 0.25, || {
                        format!(
                            "{ctx}: one-worker threaded wall time ({tw}s) far exceeds \
                             the lockstep drive's ({wall}s)"
                        )
                    });
                }
            }
        }

        let tokens = number(g, row, &ctx, "tokens");
        g.check(tokens > 0.0, || format!("{ctx}: zero tokens measured"));
        let ticks = number(g, row, &ctx, "ticks");
        g.check(ticks > 0.0, || format!("{ctx}: zero ticks measured"));
        number(g, row, &ctx, "offered_rate");
        number(g, row, &ctx, "tokens_per_tick");
        number(g, row, &ctx, "tokens_per_step");
        check_quantiles(g, row, &ctx);

        // Routed requests account for everything served or shed; a
        // crash-migrated request passes the router once per placement,
        // so fault cells carry one extra routing per migration.
        let requests = number(g, row, &ctx, "requests");
        let shed = number(g, row, &ctx, "shed_requests");
        let migrations = field(row, "migrations").and_then(as_f64).unwrap_or(0.0);
        match field(row, "worker_requests") {
            Some(Value::Seq(per)) => {
                g.check(per.len() == workers as usize, || {
                    format!(
                        "{ctx}: worker_requests has {} entries for {workers} workers",
                        per.len()
                    )
                });
                let sum: f64 = per.iter().filter_map(as_f64).sum();
                g.check(sum == requests + shed + migrations, || {
                    format!(
                        "{ctx}: routed requests ({sum}) != served ({requests}) + \
                         shed ({shed}) + migrated ({migrations})"
                    )
                });
            }
            _ => g
                .violations
                .push(format!("{ctx}: field `worker_requests` missing")),
        }

        // Event-stream cross-check: the per-request `Finished` events
        // the row was derived from must respect `accepted <= proposed`
        // (lifetime acceptance-history sums), both request by request
        // (violations counter) and in aggregate.
        let ev_proposed = number(g, row, &ctx, "event_proposed_tokens");
        let ev_accepted = number(g, row, &ctx, "event_accepted_tokens");
        let ev_violations = number(g, row, &ctx, "event_accept_violations");
        g.check(ev_violations == 0.0, || {
            format!(
                "{ctx}: {ev_violations} request(s) violated accepted <= proposed \
                 in the event stream"
            )
        });
        g.check(ev_accepted <= ev_proposed, || {
            format!(
                "{ctx}: event-stream accepted tokens ({ev_accepted}) exceed \
                 proposed ({ev_proposed})"
            )
        });
    }
    for want in ["Ours-tree", "Medusa-tree", "NTP"] {
        g.check(methods.iter().any(|m| m == want), || {
            format!("BENCH_load.json: method `{want}` vanished from the sweep")
        });
    }
    for want in ["static", "adaptive", "budgeted"] {
        g.check(policies.iter().any(|p| p == want), || {
            format!("BENCH_load.json: policy `{want}` vanished from the A/B")
        });
    }
    for workers in [1usize, 2, 4] {
        for route in ["rr", "jsq", "least-loaded"] {
            g.check(
                dispatch_cells
                    .iter()
                    .any(|(w, r)| *w == workers && r == route),
                || format!("BENCH_load.json: dispatch cell {route}@{workers} vanished"),
            );
        }
    }

    // The fault-injected recovery cells: both deterministic failure
    // scenarios present, each with its crashes actually fired
    // (single-worker crash vs whole-fleet storm), real migration work
    // (crash recovery routed stranded requests through the live
    // fleet — a cell whose crash strands nothing measures nothing),
    // replay accounting finite, and the recovery-window TTFT tail
    // measured over the fault-affected completions. Together with the
    // per-row `event_accept_violations == 0` and `threaded_parity`
    // gates above, this pins the headline recovery claim: faults move
    // ticks, never tokens.
    for (want, min_crashes) in [("worker-crash", 1.0), ("crash-storm", 2.0)] {
        let cell = fault_cells.iter().find(|c| c.scenario == want);
        g.check(cell.is_some(), || {
            format!("BENCH_load.json: fault-recovery cell `{want}` vanished from the sweep")
        });
        let Some(cell) = cell else {
            continue;
        };
        g.check(cell.crashes >= min_crashes, || {
            format!(
                "BENCH_load.json: `{want}` fired {} crash(es), expected >= {min_crashes}",
                cell.crashes
            )
        });
        g.check(cell.migrations > 0.0, || {
            format!("BENCH_load.json: `{want}` recorded no migrations — the crash stranded nothing")
        });
        g.check(
            cell.replay_tokens.is_finite() && cell.replay_tokens >= 0.0,
            || format!("BENCH_load.json: `{want}`: `replay_tokens` not a finite count"),
        );
        g.check(
            cell.recovery_ttft_p99
                .is_some_and(|v| v.is_finite() && v >= 0.0),
            || {
                format!(
                    "BENCH_load.json: `{want}`: `recovery_ttft_p99` missing or not a \
                     finite duration"
                )
            },
        );
    }

    // The Zipf shared-stem cache sweep: every cache-state x worker x
    // route cell present; cache-on rows carry a finite hit-rate in
    // [0, 1]; cache-on never loses to cache-off on TTFT p99, and wins
    // somewhere on p99 or mean (small CI-smoke runs pin the nearest-
    // rank p99 at the cold-miss warmup in every cell, but the mean
    // still has to move — a cache that shifts neither has stopped
    // working); and at fleets of >= 2 workers the cache-aware
    // prefix-affine route out-hits load-blind round-robin, which
    // scatters each hot stem across the fleet and pays its cold miss
    // once per worker.
    let zipf = |cache: &str, workers: usize, route: &str| {
        zipf_cells
            .iter()
            .find(|c| c.cache == cache && c.workers == workers && c.route == route)
    };
    let mut cache_on_won_somewhere = false;
    for workers in [1usize, 2, 4] {
        for route in ["rr", "least-loaded", "prefix-affine"] {
            let (on, off) = (
                zipf("cache-on", workers, route),
                zipf("cache-off", workers, route),
            );
            g.check(on.is_some() && off.is_some(), || {
                format!("BENCH_load.json: zipf cache cell {route}@{workers} vanished")
            });
            let (Some(on), Some(off)) = (on, off) else {
                continue;
            };
            g.check(
                on.hit_rate
                    .is_some_and(|h| h.is_finite() && (0.0..=1.0).contains(&h)),
                || {
                    format!(
                        "BENCH_load.json: zipf cache-on {route}@{workers}: \
                         `prefix_hit_rate` missing or not a finite rate"
                    )
                },
            );
            g.check(on.ttft_p99 <= off.ttft_p99, || {
                format!(
                    "BENCH_load.json: zipf {route}@{workers}: cache-on TTFT p99 \
                     ({}) worse than cache-off ({})",
                    on.ttft_p99, off.ttft_p99
                )
            });
            cache_on_won_somewhere |= on.ttft_p99 < off.ttft_p99 || on.ttft_mean < off.ttft_mean;
        }
    }
    if !zipf_cells.is_empty() {
        g.check(cache_on_won_somewhere, || {
            "BENCH_load.json: zipf sweep: cache-on never beat cache-off on TTFT (p99 or mean)"
                .to_string()
        });
        for workers in [2usize, 4] {
            let (affine, rr) = (
                zipf("cache-on", workers, "prefix-affine"),
                zipf("cache-on", workers, "rr"),
            );
            g.check(
                affine.zip(rr).is_some_and(|(a, r)| {
                    a.hit_rate.unwrap_or(f64::NAN) > r.hit_rate.unwrap_or(f64::NAN)
                }),
                || {
                    format!(
                        "BENCH_load.json: zipf @{workers} workers: prefix-affine \
                         hit-rate does not exceed round-robin's"
                    )
                },
            );
        }
    }
}

/// One engine's row of the quality gate, as read back from the
/// artifact.
struct QualityCell {
    engine: String,
    parse: f64,
    elaborate: f64,
    acceptance: f64,
    speculated: f64,
}

/// `BENCH_quality.json`: all four engines present, every rate finite
/// and in [0, 1] with the parse >= elaborate >= sim-pass staging
/// monotone, NTP never speculating, and the grammar engine's headline
/// result intact — realized acceptance strictly above the unconstrained
/// (grammar-free) tree it builds on, at parse/elaborate rates no worse.
fn check_quality(g: &mut Guard, doc: &Value) {
    let mut cells: Vec<QualityCell> = Vec::new();
    for (i, row) in rows(g, doc, "BENCH_quality.json").iter().enumerate() {
        let ctx = format!("BENCH_quality.json[{i}]");
        let engine = string(g, row, &ctx, "engine").to_string();
        let samples = number(g, row, &ctx, "samples");
        g.check(samples > 0.0, || format!("{ctx}: zero samples scored"));
        let mut rate = |name: &str| {
            let v = number(g, row, &ctx, name);
            g.check((0.0..=1.0).contains(&v), || {
                format!("{ctx}: `{name}` not a rate in [0, 1] ({v})")
            });
            v
        };
        let parse = rate("parse_rate");
        let elaborate = rate("elaborate_rate");
        let sim = rate("sim_pass_rate");
        let acceptance = rate("realized_acceptance");
        g.check(parse >= elaborate && elaborate >= sim, || {
            format!(
                "{ctx}: stage rates not monotone (parse {parse} / elab {elaborate} / sim {sim})"
            )
        });
        let speculated = number(g, row, &ctx, "speculated_tokens");
        let accepted = number(g, row, &ctx, "accepted_spec_tokens");
        g.check(accepted <= speculated, || {
            format!("{ctx}: accepted spec tokens ({accepted}) exceed speculated ({speculated})")
        });
        cells.push(QualityCell {
            engine,
            parse,
            elaborate,
            acceptance,
            speculated,
        });
    }
    for want in ["NTP", "Medusa-tree", "Ours-tree", "Grammar-tree"] {
        g.check(cells.iter().any(|c| c.engine == want), || {
            format!("BENCH_quality.json: engine `{want}` vanished from the gate")
        });
    }
    if let Some(ntp) = cells.iter().find(|c| c.engine == "NTP") {
        g.check(ntp.speculated == 0.0 && ntp.acceptance == 0.0, || {
            format!(
                "BENCH_quality.json: NTP row speculates ({} tokens, acceptance {})",
                ntp.speculated, ntp.acceptance
            )
        });
    }
    // The headline comparison: `Grammar-tree` is `Ours-tree` plus the
    // propose-time grammar layer (same trained model, same prompts,
    // same candidate budget), so the gate pins the layer's effect
    // directly.
    let (grammar, ours) = (
        cells.iter().find(|c| c.engine == "Grammar-tree"),
        cells.iter().find(|c| c.engine == "Ours-tree"),
    );
    if let Some((grammar, ours)) = grammar.zip(ours) {
        g.check(grammar.acceptance > ours.acceptance, || {
            format!(
                "BENCH_quality.json: grammar realized acceptance ({}) not strictly \
                 above the unconstrained tree's ({})",
                grammar.acceptance, ours.acceptance
            )
        });
        g.check(grammar.parse >= ours.parse, || {
            format!(
                "BENCH_quality.json: grammar parse rate ({}) below the \
                 unconstrained tree's ({})",
                grammar.parse, ours.parse
            )
        });
        g.check(grammar.elaborate >= ours.elaborate, || {
            format!(
                "BENCH_quality.json: grammar elaborate rate ({}) below the \
                 unconstrained tree's ({})",
                grammar.elaborate, ours.elaborate
            )
        });
    }
}

/// One artifact's structural checker.
type Checker = fn(&mut Guard, &Value);

fn main() {
    let dir = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));
    let mut g = Guard::new();
    let checkers: [(&str, Checker); 4] = [
        ("BENCH_decode.json", check_decode),
        ("BENCH_serve.json", check_serve),
        ("BENCH_load.json", check_load),
        ("BENCH_quality.json", check_quality),
    ];
    for (file, check) in checkers {
        let path = dir.join(file);
        let body = match std::fs::read_to_string(&path) {
            Ok(b) => b,
            Err(e) => {
                g.violations
                    .push(format!("{}: unreadable: {e}", path.display()));
                continue;
            }
        };
        match serde_json::from_str::<Value>(&body) {
            Ok(doc) => check(&mut g, &doc),
            Err(e) => g
                .violations
                .push(format!("{}: does not parse as JSON: {e}", path.display())),
        }
    }
    if g.violations.is_empty() {
        println!(
            "bench guard OK: {} structural invariants hold across the four artifacts",
            g.checks
        );
    } else {
        eprintln!(
            "bench guard FAILED: {} of {} invariants violated",
            g.violations.len(),
            g.checks.max(g.violations.len())
        );
        for v in &g.violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
}
