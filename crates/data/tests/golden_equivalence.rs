//! Every corpus generator's Verilog must parse, elaborate, and match its
//! golden reference model on random stimuli — the contract the whole
//! evaluation pipeline rests on.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use verispec_data::families::all_families;
use verispec_data::{GeneratedModule, Golden};
use verispec_sim::{elaborate, run_combinational, run_sequential, ResetSpec, SeqSpec};

/// Checks one generated module against its golden model.
fn check(gm: &GeneratedModule, seed: u64) {
    let file = verispec_verilog::parse(&gm.source)
        .unwrap_or_else(|e| panic!("[{}] parse failed: {e}\n{}", gm.family, gm.source));
    let design = elaborate(&file.modules[0])
        .unwrap_or_else(|e| panic!("[{}] elab failed: {e}\n{}", gm.family, gm.source));

    let mut rng = SmallRng::seed_from_u64(seed);
    let vectors = gm.interface.random_stimuli(&mut rng, 32);

    let result = match (&gm.golden, gm.interface.clock.as_ref()) {
        (Golden::Comb(f), None) => run_combinational(&design, &vectors, |ins| f(ins)),
        (Golden::Seq(factory), Some(clock)) => {
            let spec = SeqSpec {
                clock: clock.clone(),
                reset: gm.interface.reset.as_ref().map(|r| ResetSpec {
                    signal: r.signal.clone(),
                    active_low: r.active_low,
                    cycles: 2,
                }),
            };
            let mut golden = factory();
            run_sequential(&design, &spec, &vectors, |ins| golden(ins))
        }
        (g, c) => panic!(
            "[{}] inconsistent golden/clock combo: {g:?} clock={c:?}",
            gm.family
        ),
    }
    .unwrap_or_else(|e| panic!("[{}] simulation fault: {e}\n{}", gm.family, gm.source));

    assert!(
        result.passed,
        "[{}] golden mismatch {:?}\n{}",
        gm.family, result.mismatches, gm.source
    );
}

#[test]
fn every_family_matches_its_golden_model() {
    let mut rng = SmallRng::seed_from_u64(2024);
    for (name, gen) in all_families() {
        for round in 0..4u64 {
            let gm = gen(&mut rng);
            assert_eq!(gm.family, name);
            check(&gm, 1000 + round);
        }
    }
}

#[test]
fn corpus_items_simulate() {
    // End-to-end: items that survive the pipeline still elaborate.
    let corpus = verispec_data::Corpus::build(&verispec_data::CorpusConfig {
        size: 64,
        ..Default::default()
    });
    for item in corpus.items.iter().take(32) {
        let file = verispec_verilog::parse(&item.source).expect("parse");
        elaborate(&file.modules[0])
            .unwrap_or_else(|e| panic!("[{}] elab failed: {e}\n{}", item.family, item.source));
    }
}
