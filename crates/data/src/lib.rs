//! Synthetic Verilog corpus generation for VeriSpec.
//!
//! The paper trains on 136K Verilog modules scraped from GitHub plus the
//! MG-Verilog and RTLCoder datasets, with GPT-4-written descriptions
//! (§III-A). None of that is available offline, so this crate implements
//! the substitution documented in DESIGN.md §2: **parameterized RTL
//! module families** — muxes, adders, ALUs, counters, FSMs, FIFOs, RAMs,
//! and more — each paired with
//!
//! * randomized but always-well-formed Verilog source,
//! * a templated natural-language description, and
//! * a **golden reference model** the behavioral simulator can check
//!   generated code against.
//!
//! The full Fig.-2 refinement pipeline is reproduced: structure filter,
//! comment-ratio filter, syntax check, MinHash/Jaccard dedup, `[FRAG]`
//! tagging, and Alpaca-style instruction formatting.
//!
//! # Examples
//!
//! ```
//! use verispec_data::{Corpus, CorpusConfig};
//!
//! let corpus = Corpus::build(&CorpusConfig { size: 32, ..Default::default() });
//! assert!(corpus.stats.retained > 0);
//! let item = &corpus.items[0];
//! assert!(item.tagged_source.contains("[FRAG]"));
//! ```

#![deny(missing_docs)]

pub mod corpus;
pub mod dedup;
pub mod families;
pub mod iface;
pub mod naming;
pub mod style;

pub use corpus::{
    alpaca_format, alpaca_preamble, alpaca_prompt, Corpus, CorpusConfig, CorpusItem, CorpusStats,
};
pub use dedup::{dedup_indices, jaccard, MinHash};
pub use iface::{
    input, mask, GeneratedModule, Golden, InputVector, Interface, OutputVector, PortSpec,
    ResetWiring,
};
pub use naming::with_naming_tail;
pub use style::{restyle, StyleProfile};
