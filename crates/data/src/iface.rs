//! Interfaces between generated modules, golden reference models, and
//! the testbench harness.
//!
//! Every corpus generator produces a [`GeneratedModule`]: Verilog source,
//! a natural-language description (the GPT-4 substitution of paper
//! §III-A), and a [`Golden`] reference model the simulator harness can
//! drive. Benchmark problems in `verispec-eval` reuse the same shapes.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// `(signal name, value)` pairs applied per cycle (mirrors
/// `verispec_sim::InputVector` without creating a hard dependency).
pub type InputVector = Vec<(String, u64)>;

/// Expected `(signal name, value)` pairs.
pub type OutputVector = Vec<(String, u64)>;

/// One data input/output of a module.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortSpec {
    /// Signal name.
    pub name: String,
    /// Width in bits.
    pub width: u32,
}

impl PortSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, width: u32) -> Self {
        Self {
            name: name.into(),
            width,
        }
    }
}

/// Reset wiring (mirrors `verispec_sim::ResetSpec`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResetWiring {
    /// Reset signal name.
    pub signal: String,
    /// Active-low flag.
    pub active_low: bool,
}

/// The testable interface of a module: data ports plus clock/reset
/// wiring. Clock and reset are *not* listed among `inputs`; the harness
/// drives them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interface {
    /// Data inputs.
    pub inputs: Vec<PortSpec>,
    /// Observed outputs.
    pub outputs: Vec<PortSpec>,
    /// Clock signal, when sequential.
    pub clock: Option<String>,
    /// Reset wiring, when present.
    pub reset: Option<ResetWiring>,
}

impl Interface {
    /// A purely combinational interface.
    pub fn comb(inputs: Vec<PortSpec>, outputs: Vec<PortSpec>) -> Self {
        Self {
            inputs,
            outputs,
            clock: None,
            reset: None,
        }
    }

    /// A clocked interface.
    pub fn seq(
        inputs: Vec<PortSpec>,
        outputs: Vec<PortSpec>,
        clock: impl Into<String>,
        reset: Option<ResetWiring>,
    ) -> Self {
        Self {
            inputs,
            outputs,
            clock: Some(clock.into()),
            reset,
        }
    }

    /// Whether the module is sequential.
    pub fn is_sequential(&self) -> bool {
        self.clock.is_some()
    }

    /// Generates `n` random stimulus vectors (uniform per input width,
    /// with all-zeros and all-ones corners injected first).
    pub fn random_stimuli(&self, rng: &mut SmallRng, n: usize) -> Vec<InputVector> {
        let mut vectors = Vec::with_capacity(n);
        for i in 0..n {
            let vec: InputVector = self
                .inputs
                .iter()
                .map(|p| {
                    let max = if p.width == 64 {
                        u64::MAX
                    } else {
                        (1u64 << p.width) - 1
                    };
                    let v = match i {
                        0 => 0,
                        1 => max,
                        _ => rng.gen::<u64>() & max,
                    };
                    (p.name.clone(), v)
                })
                .collect();
            vectors.push(vec);
        }
        vectors
    }
}

/// A golden reference model.
///
/// Sequential factories return a fresh stateful closure per run; the
/// closure models *post-clock-edge* outputs given the cycle's inputs
/// (see `verispec_sim::run_sequential`).
#[derive(Clone)]
pub enum Golden {
    /// Pure function of the inputs.
    Comb(Arc<dyn Fn(&InputVector) -> OutputVector + Send + Sync>),
    /// Factory of fresh per-run sequential models.
    #[allow(clippy::type_complexity)]
    Seq(Arc<dyn Fn() -> Box<dyn FnMut(&InputVector) -> OutputVector + Send> + Send + Sync>),
}

impl std::fmt::Debug for Golden {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Golden::Comb(_) => f.write_str("Golden::Comb(..)"),
            Golden::Seq(_) => f.write_str("Golden::Seq(..)"),
        }
    }
}

/// Looks up an input by name in a stimulus vector (helper for golden
/// closures).
pub fn input(ins: &InputVector, name: &str) -> u64 {
    ins.iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("stimulus vector missing input `{name}`"))
}

/// Masks `v` to `width` bits.
pub fn mask(v: u64, width: u32) -> u64 {
    if width >= 64 {
        v
    } else {
        v & ((1u64 << width) - 1)
    }
}

/// A generated corpus/benchmark module.
#[derive(Debug, Clone)]
pub struct GeneratedModule {
    /// Module name as it appears in the source.
    pub name: String,
    /// Family identifier (e.g. `"mux2"`, `"counter_up"`).
    pub family: &'static str,
    /// Verilog source text.
    pub source: String,
    /// Natural-language description (instruction text).
    pub description: String,
    /// Testable interface.
    pub interface: Interface,
    /// Reference model.
    pub golden: Golden,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn stimuli_respect_widths_and_corners() {
        let iface = Interface::comb(
            vec![PortSpec::new("a", 4), PortSpec::new("b", 64)],
            vec![PortSpec::new("y", 4)],
        );
        let mut rng = SmallRng::seed_from_u64(1);
        let v = iface.random_stimuli(&mut rng, 10);
        assert_eq!(v.len(), 10);
        assert!(
            v[0].iter().all(|(_, x)| *x == 0),
            "first vector is all zeros"
        );
        assert_eq!(v[1][0].1, 0xF, "second vector is all ones (masked)");
        assert_eq!(v[1][1].1, u64::MAX);
        for vec in &v {
            assert!(vec[0].1 <= 0xF);
        }
    }

    #[test]
    fn input_lookup() {
        let v: InputVector = vec![("a".into(), 3), ("b".into(), 9)];
        assert_eq!(input(&v, "b"), 9);
    }

    #[test]
    #[should_panic(expected = "missing input")]
    fn input_lookup_missing_panics() {
        let v: InputVector = vec![("a".into(), 3)];
        let _ = input(&v, "zz");
    }

    #[test]
    fn mask_behaviour() {
        assert_eq!(mask(0xFFFF, 8), 0xFF);
        assert_eq!(mask(u64::MAX, 64), u64::MAX);
        assert_eq!(mask(5, 1), 1);
    }
}
