//! The corpus construction pipeline (paper §III-A, Fig. 2):
//! generate → structure filter → comment filter → syntax check
//! (Stagira substitute) → dedup → `[FRAG]` tagging → Alpaca formatting.

use crate::dedup::dedup_indices;
use crate::families::all_families;
use crate::iface::GeneratedModule;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use verispec_verilog::fragment::fragmentize;
use verispec_verilog::significant::SignificantTokens;
use verispec_verilog::{check, parse};

/// One cleaned corpus entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusItem {
    /// Module name.
    pub name: String,
    /// Family identifier.
    pub family: String,
    /// Natural-language instruction.
    pub description: String,
    /// Cleaned Verilog source.
    pub source: String,
    /// `[FRAG]`-tagged source (for the paper's method).
    pub tagged_source: String,
}

/// Pipeline statistics, mirroring the filters of Fig. 2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Modules generated before filtering.
    pub generated: usize,
    /// Dropped by the `module`/`endmodule` structure filter.
    pub dropped_structure: usize,
    /// Dropped as mostly-comments.
    pub dropped_comments: usize,
    /// Dropped by the syntax check.
    pub dropped_syntax: usize,
    /// Dropped as near-duplicates.
    pub dropped_duplicates: usize,
    /// Items retained.
    pub retained: usize,
}

/// Configuration of the corpus builder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Number of raw modules to generate.
    pub size: usize,
    /// RNG seed.
    pub seed: u64,
    /// Near-duplicate similarity threshold.
    pub dedup_threshold: f64,
    /// Maximum comment fraction.
    pub max_comment_ratio: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            size: 512,
            seed: 0xC0FFEE,
            dedup_threshold: 0.95,
            max_comment_ratio: 0.8,
        }
    }
}

/// A cleaned, deduplicated corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    /// Retained items.
    pub items: Vec<CorpusItem>,
    /// Pipeline statistics.
    pub stats: CorpusStats,
}

impl Corpus {
    /// Runs the full pipeline of Fig. 2.
    pub fn build(cfg: &CorpusConfig) -> Corpus {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let families = all_families();
        let mut raw: Vec<GeneratedModule> = Vec::with_capacity(cfg.size);
        for i in 0..cfg.size {
            let (_, gen) = families[i % families.len()];
            let mut gm = gen(&mut rng);
            // Formatting entropy: scraped corpora mix styles.
            let profile = crate::style::StyleProfile::sample(&mut rng);
            gm.source = crate::style::restyle(&gm.source, profile);
            raw.push(gm);
        }
        Self::refine(raw, cfg)
    }

    /// Refines pre-generated modules (exposed for tests and for mixing in
    /// externally supplied raw code).
    pub fn refine(raw: Vec<GeneratedModule>, cfg: &CorpusConfig) -> Corpus {
        let mut stats = CorpusStats {
            generated: raw.len(),
            ..Default::default()
        };
        let mut cleaned: Vec<(GeneratedModule, String)> = Vec::new();

        for gm in raw {
            // Structure filter: complete module/endmodule pairs.
            if !check::structure_ok(&gm.source) {
                stats.dropped_structure += 1;
                continue;
            }
            // Comment filter.
            if check::comment_ratio(&gm.source) > cfg.max_comment_ratio {
                stats.dropped_comments += 1;
                continue;
            }
            // Syntax check (Stagira substitute) + AST for significant
            // tokens.
            let Ok(file) = parse(&gm.source) else {
                stats.dropped_syntax += 1;
                continue;
            };
            let sig = SignificantTokens::from_source_file(&file);
            let Ok(tagged) = fragmentize(&gm.source, &sig) else {
                stats.dropped_syntax += 1;
                continue;
            };
            cleaned.push((gm, tagged));
        }

        // Dedup on the cleaned source text.
        let docs: Vec<&str> = cleaned.iter().map(|(gm, _)| gm.source.as_str()).collect();
        let kept = dedup_indices(&docs, cfg.dedup_threshold);
        stats.dropped_duplicates = cleaned.len() - kept.len();

        let mut items = Vec::with_capacity(kept.len());
        for idx in kept {
            let (gm, tagged) = &cleaned[idx];
            items.push(CorpusItem {
                name: gm.name.clone(),
                family: gm.family.to_string(),
                // End every instruction with the standardized naming
                // sentence (see `crate::naming`).
                description: crate::naming::with_naming_tail(&gm.description, &gm.name),
                source: gm.source.clone(),
                tagged_source: tagged.clone(),
            });
        }
        stats.retained = items.len();
        Corpus { items, stats }
    }

    /// The paper's data-size sweep: a prefix fraction of the corpus
    /// (1/4, 1/2, 3/4, 1 of the items, deterministically).
    pub fn subset(&self, numerator: usize, denominator: usize) -> Vec<&CorpusItem> {
        let n = self.items.len() * numerator / denominator;
        self.items.iter().take(n).collect()
    }
}

/// The fixed Alpaca instruction preamble every formatted item and
/// prompt starts with. Exposed so serving paths can ingest (tokenize +
/// session-append) it **once** and share it across requests: it ends
/// in a lone `\n` and descriptions start with a non-whitespace
/// character, so the boundary is a pre-tokenization word boundary and
/// splitting the encode there is exact.
const ALPACA_PREAMBLE: &str = "Below is an instruction that describes a task. Write a response that appropriately completes the request.\n\n### Instruction:\n";

/// The shared Alpaca preamble (see [`alpaca_format`] /
/// [`alpaca_prompt`], which both start with it).
pub fn alpaca_preamble() -> &'static str {
    ALPACA_PREAMBLE
}

/// Formats an item in Alpaca instruction style (paper §IV-A1).
pub fn alpaca_format(description: &str, code: &str) -> String {
    format!("{ALPACA_PREAMBLE}{description}\n\n### Response:\n{code}")
}

/// The instruction-only prefix used at inference time (the prompt).
pub fn alpaca_prompt(description: &str) -> String {
    format!("{ALPACA_PREAMBLE}{description}\n\n### Response:\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::{Golden, Interface};
    use std::sync::Arc;

    fn fake(src: &str) -> GeneratedModule {
        GeneratedModule {
            name: "m".into(),
            family: "fake",
            source: src.to_string(),
            description: "desc".into(),
            interface: Interface::comb(vec![], vec![]),
            golden: Golden::Comb(Arc::new(|_| vec![])),
        }
    }

    #[test]
    fn build_produces_items_across_families() {
        let corpus = Corpus::build(&CorpusConfig {
            size: 96,
            ..Default::default()
        });
        assert!(corpus.stats.retained > 48, "stats: {:?}", corpus.stats);
        let families: std::collections::HashSet<&str> =
            corpus.items.iter().map(|i| i.family.as_str()).collect();
        assert!(families.len() >= 20, "family coverage {}", families.len());
        for item in &corpus.items {
            assert!(item.tagged_source.contains("[FRAG]"));
            assert_eq!(
                verispec_verilog::fragment::defragmentize(&item.tagged_source),
                item.source
            );
        }
    }

    #[test]
    fn refine_drops_malformed_sources() {
        let raw = vec![
            fake("module good(input a, output y); assign y = a; endmodule"),
            fake("module broken(input a, output y); assign y = a;"), // no endmodule
            fake("// nothing but comments\n// more comments"),
            fake("module bad_syntax(input a output y); endmodule"), // missing comma
        ];
        let corpus = Corpus::refine(raw, &CorpusConfig::default());
        assert_eq!(corpus.stats.generated, 4);
        assert_eq!(corpus.stats.retained, 1);
        assert!(corpus.stats.dropped_structure >= 2, "{:?}", corpus.stats);
        assert_eq!(corpus.stats.dropped_syntax, 1);
    }

    #[test]
    fn refine_dedups_identical_modules() {
        let src = "module dup(input a, output y); assign y = a; endmodule";
        let raw = vec![fake(src), fake(src), fake(src)];
        let corpus = Corpus::refine(raw, &CorpusConfig::default());
        assert_eq!(corpus.stats.retained, 1);
        assert_eq!(corpus.stats.dropped_duplicates, 2);
    }

    #[test]
    fn subsets_are_prefixes() {
        let corpus = Corpus::build(&CorpusConfig {
            size: 64,
            ..Default::default()
        });
        let half = corpus.subset(1, 2);
        let full = corpus.subset(1, 1);
        assert_eq!(full.len(), corpus.items.len());
        assert_eq!(half.len(), corpus.items.len() / 2);
        for (a, b) in half.iter().zip(&full) {
            assert_eq!(a.name, b.name);
        }
    }

    #[test]
    fn alpaca_round_trip_prompt_is_prefix() {
        let full = alpaca_format("Do a thing.", "module m; endmodule");
        let prompt = alpaca_prompt("Do a thing.");
        assert!(full.starts_with(&prompt));
    }

    #[test]
    fn build_is_deterministic() {
        let cfg = CorpusConfig {
            size: 40,
            ..Default::default()
        };
        let a = Corpus::build(&cfg);
        let b = Corpus::build(&cfg);
        assert_eq!(a.items.len(), b.items.len());
        for (x, y) in a.items.iter().zip(&b.items) {
            assert_eq!(x.source, y.source);
        }
    }
}
