//! Seeded formatting diversity for generated modules.
//!
//! Real scraped corpora mix indentation and spacing styles; our
//! generators emit one canonical style. This module applies a
//! per-module style profile (indent width, comma padding, operator
//! padding) so the training distribution has realistic formatting
//! entropy. Restyling is token-safe: it only rewrites whitespace, so the
//! AST is unchanged (asserted in tests).

use rand::rngs::SmallRng;
use rand::Rng;

/// A formatting profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StyleProfile {
    /// What one indentation level looks like.
    pub indent: &'static str,
    /// Whether commas carry a trailing space.
    pub comma_space: bool,
    /// Whether binary `=` / `<=` keep surrounding spaces.
    pub op_space: bool,
}

impl StyleProfile {
    /// Samples a profile.
    pub fn sample(rng: &mut SmallRng) -> StyleProfile {
        const INDENTS: [&str; 4] = ["    ", "  ", "   ", "\t"];
        StyleProfile {
            indent: INDENTS[rng.gen_range(0..INDENTS.len())],
            comma_space: rng.gen_bool(0.7),
            op_space: rng.gen_bool(0.8),
        }
    }
}

/// Rewrites the canonical generator formatting (4-space indents,
/// `", "` commas, spaced operators) into the profile's style.
pub fn restyle(source: &str, profile: StyleProfile) -> String {
    let mut out = String::with_capacity(source.len());
    for (i, line) in source.split('\n').enumerate() {
        if i > 0 {
            out.push('\n');
        }
        // Re-indent: count leading 4-space units.
        let mut rest = line;
        let mut levels = 0;
        while let Some(r) = rest.strip_prefix("    ") {
            rest = r;
            levels += 1;
        }
        for _ in 0..levels {
            out.push_str(profile.indent);
        }
        let mut body = rest.to_string();
        if !profile.comma_space {
            body = body.replace(", ", ",");
        }
        if !profile.op_space {
            body = body.replace(" <= ", "<=").replace(" = ", "=");
        }
        out.push_str(&body);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    const SRC: &str = "module m (\n    input [3:0] a, b,\n    output reg [3:0] y\n);\n    always @(*) begin\n        y = a + b;\n    end\nendmodule\n";

    #[test]
    fn restyle_preserves_the_ast() {
        let mut rng = SmallRng::seed_from_u64(3);
        let original = verispec_verilog::parse(SRC).expect("parse");
        for _ in 0..16 {
            let p = StyleProfile::sample(&mut rng);
            let styled = restyle(SRC, p);
            let reparsed = verispec_verilog::parse(&styled)
                .unwrap_or_else(|e| panic!("style broke parse: {e}\n{styled}"));
            assert_eq!(reparsed, original, "{p:?}\n{styled}");
        }
    }

    #[test]
    fn tab_indent_profile_applies() {
        let p = StyleProfile {
            indent: "\t",
            comma_space: false,
            op_space: false,
        };
        let styled = restyle(SRC, p);
        assert!(styled.contains("\n\talways"));
        assert!(styled.contains("\t\ty=a + b;") || styled.contains("y=a + b;"));
        assert!(styled.contains("a,b"));
    }

    #[test]
    fn default_like_profile_is_identity() {
        let p = StyleProfile {
            indent: "    ",
            comma_space: true,
            op_space: true,
        };
        assert_eq!(restyle(SRC, p), SRC);
    }

    #[test]
    fn profiles_vary() {
        let mut rng = SmallRng::seed_from_u64(1);
        let set: std::collections::HashSet<String> = (0..24)
            .map(|_| restyle(SRC, StyleProfile::sample(&mut rng)))
            .collect();
        assert!(
            set.len() >= 4,
            "expected style diversity, got {}",
            set.len()
        );
    }
}
