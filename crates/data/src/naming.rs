//! Description finalization: every instruction ends with a short naming
//! sentence so the module's name sits at the *tail* of the prompt.
//!
//! Rationale (DESIGN.md §2): the laptop-scale LMs condition on a bounded
//! context window, so the token span immediately preceding
//! `### Response:` carries the most signal. Real instruction datasets
//! commonly restate the required module name at the end; we standardize
//! that convention across both the training corpus and the benchmark
//! prompts (the same convention, so there is no train/test mismatch).

/// Appends the naming sentence to a description, choosing one of three
/// stable phrasings by name hash (diversity without prompt instability).
pub fn with_naming_tail(description: &str, module_name: &str) -> String {
    let h = module_name
        .bytes()
        .fold(0u64, |a, b| a.wrapping_mul(31).wrapping_add(b as u64));
    let tail = match h % 3 {
        0 => format!(" Name the module \"{module_name}\"."),
        1 => format!(" The module must be named \"{module_name}\"."),
        _ => format!(" Call the module \"{module_name}\"."),
    };
    let mut out = description.trim_end().to_string();
    out.push_str(&tail);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_contains_name_and_is_stable() {
        let a = with_naming_tail("Build a counter.", "counter_3");
        let b = with_naming_tail("Build a counter.", "counter_3");
        assert_eq!(a, b);
        assert!(a.ends_with('.'));
        assert!(a.contains("\"counter_3\""));
        assert!(a.starts_with("Build a counter."));
    }

    #[test]
    fn different_names_may_choose_different_phrasings() {
        let set: std::collections::HashSet<String> = ["a", "b", "c", "d", "e", "f"]
            .iter()
            .map(|n| {
                with_naming_tail("X.", n)
                    .trim_start_matches("X.")
                    .to_string()
            })
            .collect();
        assert!(set.len() >= 2, "expected phrasing diversity, got {set:?}");
    }
}
