//! Parameterized RTL module generators with golden reference models.
//!
//! Each family function takes a seeded RNG and produces a
//! [`crate::iface::GeneratedModule`] with randomized
//! module/signal names, widths, and description phrasing — the synthetic
//! substitute for the paper's GitHub + MG-Verilog + RTLCoder corpus.
//!
//! The emitted Verilog deliberately uses width-explicit idioms (e.g.
//! `{1'b0, a} + {1'b0, b}` for carry capture) so that the behavioral
//! simulator's self-determined width evaluation matches real Verilog
//! semantics; see DESIGN.md §5.

pub mod comb;
pub mod seq;

use crate::iface::GeneratedModule;
use rand::rngs::SmallRng;
use rand::Rng;

/// A corpus family: its name and generator function.
pub type Family = (&'static str, fn(&mut SmallRng) -> GeneratedModule);

/// Every registered family, combinational and sequential.
pub fn all_families() -> Vec<Family> {
    let mut v = comb::families();
    v.extend(seq::families());
    v
}

/// Picks one item from a slice.
pub(crate) fn pick<'a, T: ?Sized>(rng: &mut SmallRng, items: &[&'a T]) -> &'a T {
    items[rng.gen_range(0..items.len())]
}

/// Picks a width in `[lo, hi]`.
pub(crate) fn pick_width(rng: &mut SmallRng, lo: u32, hi: u32) -> u32 {
    rng.gen_range(lo..=hi)
}

/// Occasionally appends a numeric suffix to diversify module names.
pub(crate) fn vary_name(rng: &mut SmallRng, base: &str) -> String {
    match rng.gen_range(0..4u8) {
        0 => base.to_string(),
        1 => format!("{base}_{}", rng.gen_range(0..8u8)),
        2 => format!("my_{base}"),
        _ => format!("{base}_unit"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn registry_is_populated_and_distinct() {
        let fams = all_families();
        assert!(
            fams.len() >= 20,
            "expect at least 20 families, got {}",
            fams.len()
        );
        let mut names: Vec<&str> = fams.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), fams.len(), "family names must be unique");
    }

    #[test]
    fn every_family_generates_parseable_verilog() {
        let mut rng = SmallRng::seed_from_u64(42);
        for (name, gen) in all_families() {
            for _ in 0..3 {
                let m = gen(&mut rng);
                assert!(
                    verispec_verilog::parse(&m.source).is_ok(),
                    "family {name} generated unparseable code:\n{}",
                    m.source
                );
                assert!(!m.description.is_empty(), "family {name} lacks description");
                assert_eq!(m.family, name);
            }
        }
    }
}
