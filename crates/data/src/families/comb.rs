//! Combinational module families: muxes, adders, comparators, decoders,
//! encoders, ALUs, shifters, parity, bit tricks.

use super::{pick, pick_width, vary_name};
use crate::iface::{input, mask, GeneratedModule, Golden, Interface, PortSpec};
use rand::rngs::SmallRng;
use rand::Rng;
use std::sync::Arc;

/// Registered combinational families.
pub fn families() -> Vec<super::Family> {
    vec![
        ("mux2", gen_mux2 as fn(&mut SmallRng) -> GeneratedModule),
        ("mux4", gen_mux4),
        ("adder", gen_adder),
        ("subtractor", gen_subtractor),
        ("addsub", gen_addsub),
        ("comparator", gen_comparator),
        ("decoder", gen_decoder),
        ("priority_encoder", gen_priority_encoder),
        ("parity", gen_parity),
        ("alu", gen_alu),
        ("shifter", gen_shifter),
        ("bit_reverse", gen_bit_reverse),
        ("popcount", gen_popcount),
        ("bin2gray", gen_bin2gray),
        ("absdiff", gen_absdiff),
        ("minmax", gen_minmax),
        ("sign_extend", gen_sign_extend),
        ("majority", gen_majority),
    ]
}

fn gen_mux2(rng: &mut SmallRng) -> GeneratedModule {
    let w = pick_width(rng, 2, 8);
    let name = {
        let base = pick(rng, &["mux2to1", "mux2", "two_way_mux"]);
        vary_name(rng, base)
    };
    let (a, b) = (
        pick(rng, &["a", "in0"]).to_string(),
        pick(rng, &["b", "in1"]).to_string(),
    );
    let sel = pick(rng, &["sel", "select"]).to_string();
    let y = pick(rng, &["y", "out"]).to_string();
    let source = format!(
        "module {name} (\n    input [{m}:0] {a},\n    input [{m}:0] {b},\n    input {sel},\n    output [{m}:0] {y}\n);\n    assign {y} = {sel} ? {b} : {a};\nendmodule\n",
        m = w - 1
    );
    let description = match rng.gen_range(0..3u8) {
        0 => format!(
            "Write a Verilog module named \"{name}\" implementing a {w}-bit 2-to-1 multiplexer: output {y} equals {b} when {sel} is high, otherwise {a}."
        ),
        1 => format!(
            "Please act as a professional Verilog designer. Create a module \"{name}\" that selects between two {w}-bit inputs {a} and {b} using select signal {sel}, driving the result on {y}."
        ),
        _ => format!(
            "Design a {w}-bit wide 2:1 mux called \"{name}\" with data inputs {a}, {b}, select {sel} and output {y}."
        ),
    };
    let (an, bn, sn, yn) = (a.clone(), b.clone(), sel.clone(), y.clone());
    GeneratedModule {
        name: name.clone(),
        family: "mux2",
        source,
        description,
        interface: Interface::comb(
            vec![
                PortSpec::new(a, w),
                PortSpec::new(b, w),
                PortSpec::new(sel, 1),
            ],
            vec![PortSpec::new(y, w)],
        ),
        golden: Golden::Comb(Arc::new(move |ins| {
            let v = if input(ins, &sn) != 0 {
                input(ins, &bn)
            } else {
                input(ins, &an)
            };
            vec![(yn.clone(), mask(v, w))]
        })),
    }
}

fn gen_mux4(rng: &mut SmallRng) -> GeneratedModule {
    let w = pick_width(rng, 2, 8);
    let name = {
        let base = pick(rng, &["mux4to1", "mux4", "four_way_mux"]);
        vary_name(rng, base)
    };
    let y = pick(rng, &["y", "dout"]).to_string();
    let source = format!(
        "module {name} (\n    input [{m}:0] d0,\n    input [{m}:0] d1,\n    input [{m}:0] d2,\n    input [{m}:0] d3,\n    input [1:0] sel,\n    output reg [{m}:0] {y}\n);\n    always @(*) begin\n        case (sel)\n            2'b00: {y} = d0;\n            2'b01: {y} = d1;\n            2'b10: {y} = d2;\n            default: {y} = d3;\n        endcase\n    end\nendmodule\n",
        m = w - 1
    );
    let description = match rng.gen_range(0..2u8) {
        0 => format!(
            "Write a Verilog module named \"{name}\": a {w}-bit 4-to-1 multiplexer over inputs d0..d3 with 2-bit select sel and output {y}, implemented with a case statement."
        ),
        _ => format!(
            "Create a 4:1 multiplexer module \"{name}\" choosing among four {w}-bit inputs (d0, d1, d2, d3) based on sel[1:0]; the chosen value appears on {y}."
        ),
    };
    let yn = y.clone();
    GeneratedModule {
        name: name.clone(),
        family: "mux4",
        source,
        description,
        interface: Interface::comb(
            vec![
                PortSpec::new("d0", w),
                PortSpec::new("d1", w),
                PortSpec::new("d2", w),
                PortSpec::new("d3", w),
                PortSpec::new("sel", 2),
            ],
            vec![PortSpec::new(y, w)],
        ),
        golden: Golden::Comb(Arc::new(move |ins| {
            let sel = input(ins, "sel") & 3;
            let v = input(ins, ["d0", "d1", "d2", "d3"][sel as usize]);
            vec![(yn.clone(), mask(v, w))]
        })),
    }
}

fn gen_adder(rng: &mut SmallRng) -> GeneratedModule {
    let w = pick_width(rng, 2, 8);
    let name = {
        let base = pick(rng, &["adder", "add_unit", "full_adder_vec"]);
        vary_name(rng, base)
    };
    let (a, b) = ("a".to_string(), "b".to_string());
    let s = pick(rng, &["sum", "result"]).to_string();
    let co = pick(rng, &["cout", "carry"]).to_string();
    let source = format!(
        "module {name} (\n    input [{m}:0] {a},\n    input [{m}:0] {b},\n    output [{m}:0] {s},\n    output {co}\n);\n    wire [{w}:0] total;\n    assign total = {{1'b0, {a}}} + {{1'b0, {b}}};\n    assign {s} = total[{m}:0];\n    assign {co} = total[{w}];\nendmodule\n",
        m = w - 1
    );
    let description = match rng.gen_range(0..3u8) {
        0 => format!(
            "Write a Verilog module \"{name}\" that adds two {w}-bit unsigned numbers {a} and {b}, producing the {w}-bit sum {s} and a carry-out bit {co}."
        ),
        1 => format!(
            "Please act as a professional Verilog designer and implement \"{name}\", a {w}-bit adder with carry output: {{{co}, {s}}} = {a} + {b}."
        ),
        _ => format!(
            "Design an unsigned {w}-bit adder module named \"{name}\". Outputs: sum {s} and carry flag {co}."
        ),
    };
    let (sn, con) = (s.clone(), co.clone());
    GeneratedModule {
        name: name.clone(),
        family: "adder",
        source,
        description,
        interface: Interface::comb(
            vec![PortSpec::new(a, w), PortSpec::new(b, w)],
            vec![PortSpec::new(s, w), PortSpec::new(co, 1)],
        ),
        golden: Golden::Comb(Arc::new(move |ins| {
            let t = input(ins, "a") + input(ins, "b");
            vec![(sn.clone(), mask(t, w)), (con.clone(), (t >> w) & 1)]
        })),
    }
}

fn gen_subtractor(rng: &mut SmallRng) -> GeneratedModule {
    let w = pick_width(rng, 2, 8);
    let name = {
        let base = pick(rng, &["subtractor", "sub_unit", "minus"]);
        vary_name(rng, base)
    };
    let source = format!(
        "module {name} (\n    input [{m}:0] a,\n    input [{m}:0] b,\n    output [{m}:0] diff,\n    output borrow\n);\n    wire [{w}:0] total;\n    assign total = {{1'b0, a}} - {{1'b0, b}};\n    assign diff = total[{m}:0];\n    assign borrow = total[{w}];\nendmodule\n",
        m = w - 1
    );
    let description = format!(
        "Write a Verilog module \"{name}\" computing the {w}-bit difference diff = a - b with a borrow flag that is high when a < b."
    );
    GeneratedModule {
        name: name.clone(),
        family: "subtractor",
        source,
        description,
        interface: Interface::comb(
            vec![PortSpec::new("a", w), PortSpec::new("b", w)],
            vec![PortSpec::new("diff", w), PortSpec::new("borrow", 1)],
        ),
        golden: Golden::Comb(Arc::new(move |ins| {
            let (a, b) = (input(ins, "a"), input(ins, "b"));
            vec![
                ("diff".to_string(), mask(a.wrapping_sub(b), w)),
                ("borrow".to_string(), (a < b) as u64),
            ]
        })),
    }
}

fn gen_addsub(rng: &mut SmallRng) -> GeneratedModule {
    let w = pick_width(rng, 2, 8);
    let name = {
        let base = pick(rng, &["addsub", "add_sub", "arith_unit"]);
        vary_name(rng, base)
    };
    let source = format!(
        "module {name} (\n    input [{m}:0] a,\n    input [{m}:0] b,\n    input mode,\n    output reg [{m}:0] y\n);\n    always @(*) begin\n        if (mode)\n            y = a - b;\n        else\n            y = a + b;\n    end\nendmodule\n",
        m = w - 1
    );
    let description = format!(
        "Create a Verilog module \"{name}\": a {w}-bit adder/subtractor. When mode is 1 it outputs y = a - b, otherwise y = a + b."
    );
    GeneratedModule {
        name: name.clone(),
        family: "addsub",
        source,
        description,
        interface: Interface::comb(
            vec![
                PortSpec::new("a", w),
                PortSpec::new("b", w),
                PortSpec::new("mode", 1),
            ],
            vec![PortSpec::new("y", w)],
        ),
        golden: Golden::Comb(Arc::new(move |ins| {
            let (a, b) = (input(ins, "a"), input(ins, "b"));
            let y = if input(ins, "mode") != 0 {
                a.wrapping_sub(b)
            } else {
                a.wrapping_add(b)
            };
            vec![("y".to_string(), mask(y, w))]
        })),
    }
}

fn gen_comparator(rng: &mut SmallRng) -> GeneratedModule {
    let w = pick_width(rng, 2, 8);
    let name = {
        let base = pick(rng, &["comparator", "cmp", "compare_unit"]);
        vary_name(rng, base)
    };
    let source = format!(
        "module {name} (\n    input [{m}:0] a,\n    input [{m}:0] b,\n    output eq,\n    output lt,\n    output gt\n);\n    assign eq = (a == b);\n    assign lt = (a < b);\n    assign gt = (a > b);\nendmodule\n",
        m = w - 1
    );
    let description = format!(
        "Write a Verilog module \"{name}\" comparing two {w}-bit unsigned values a and b with three 1-bit outputs: eq (a equals b), lt (a less than b) and gt (a greater than b)."
    );
    GeneratedModule {
        name: name.clone(),
        family: "comparator",
        source,
        description,
        interface: Interface::comb(
            vec![PortSpec::new("a", w), PortSpec::new("b", w)],
            vec![
                PortSpec::new("eq", 1),
                PortSpec::new("lt", 1),
                PortSpec::new("gt", 1),
            ],
        ),
        golden: Golden::Comb(Arc::new(move |ins| {
            let (a, b) = (input(ins, "a"), input(ins, "b"));
            vec![
                ("eq".to_string(), (a == b) as u64),
                ("lt".to_string(), (a < b) as u64),
                ("gt".to_string(), (a > b) as u64),
            ]
        })),
    }
}

fn gen_decoder(rng: &mut SmallRng) -> GeneratedModule {
    // n-to-2^n decoder with enable, n in 2..=3.
    let n = rng.gen_range(2..=3u32);
    let outw = 1u32 << n;
    let name = vary_name(rng, if n == 2 { "decoder2to4" } else { "decoder3to8" });
    let shift_style = rng.gen_bool(0.5);
    let body = if shift_style {
        format!("    assign y = en ? ({outw}'d1 << sel) : {outw}'d0;\n")
    } else {
        let mut arms = String::new();
        for i in 0..outw {
            arms.push_str(&format!(
                "            {n}'d{i}: y = {outw}'d{};\n",
                1u64 << i
            ));
        }
        format!(
            "    always @(*) begin\n        if (!en) y = {outw}'d0;\n        else case (sel)\n{arms}            default: y = {outw}'d0;\n        endcase\n    end\n"
        )
    };
    let reg_kw = if shift_style { "" } else { "reg " };
    let source = format!(
        "module {name} (\n    input en,\n    input [{sm}:0] sel,\n    output {reg_kw}[{om}:0] y\n);\n{body}endmodule\n",
        sm = n - 1,
        om = outw - 1
    );
    let description = format!(
        "Write a Verilog module \"{name}\": a {n}-to-{outw} one-hot decoder with enable. When en is high, output bit y[sel] is 1 and all others 0; when en is low, y is all zeros."
    );
    GeneratedModule {
        name: name.clone(),
        family: "decoder",
        source,
        description,
        interface: Interface::comb(
            vec![PortSpec::new("en", 1), PortSpec::new("sel", n)],
            vec![PortSpec::new("y", outw)],
        ),
        golden: Golden::Comb(Arc::new(move |ins| {
            let y = if input(ins, "en") != 0 {
                1u64 << (input(ins, "sel") & ((1 << n) - 1))
            } else {
                0
            };
            vec![("y".to_string(), mask(y, outw))]
        })),
    }
}

fn gen_priority_encoder(rng: &mut SmallRng) -> GeneratedModule {
    let name = {
        let base = pick(rng, &["priority_encoder", "prio_enc", "arbiter_enc"]);
        vary_name(rng, base)
    };
    let source = format!(
        "module {name} (\n    input [3:0] req,\n    output reg [1:0] grant,\n    output reg valid\n);\n    always @(*) begin\n        valid = 1'b1;\n        casez (req)\n            4'b1???: grant = 2'd3;\n            4'b01??: grant = 2'd2;\n            4'b001?: grant = 2'd1;\n            4'b0001: grant = 2'd0;\n            default: begin\n                grant = 2'd0;\n                valid = 1'b0;\n            end\n        endcase\n    end\nendmodule\n"
    );
    let description = format!(
        "Write a Verilog module \"{name}\": a 4-bit priority encoder. grant reports the index of the highest-priority set bit of req (bit 3 highest); valid is low only when req is all zeros."
    );
    GeneratedModule {
        name: name.clone(),
        family: "priority_encoder",
        source,
        description,
        interface: Interface::comb(
            vec![PortSpec::new("req", 4)],
            vec![PortSpec::new("grant", 2), PortSpec::new("valid", 1)],
        ),
        golden: Golden::Comb(Arc::new(move |ins| {
            let req = input(ins, "req") & 0xF;
            let (grant, valid) = if req & 0b1000 != 0 {
                (3, 1)
            } else if req & 0b0100 != 0 {
                (2, 1)
            } else if req & 0b0010 != 0 {
                (1, 1)
            } else if req & 0b0001 != 0 {
                (0, 1)
            } else {
                (0, 0)
            };
            vec![("grant".to_string(), grant), ("valid".to_string(), valid)]
        })),
    }
}

fn gen_parity(rng: &mut SmallRng) -> GeneratedModule {
    let w = pick_width(rng, 3, 10);
    let name = {
        let base = pick(rng, &["parity_gen", "parity", "parity_checker"]);
        vary_name(rng, base)
    };
    let source = format!(
        "module {name} (\n    input [{m}:0] data,\n    output odd,\n    output even\n);\n    assign odd = ^data;\n    assign even = ~^data;\nendmodule\n",
        m = w - 1
    );
    let description = format!(
        "Write a Verilog module \"{name}\" computing parity of a {w}-bit input data: odd is the XOR reduction of all bits, even is its complement."
    );
    GeneratedModule {
        name: name.clone(),
        family: "parity",
        source,
        description,
        interface: Interface::comb(
            vec![PortSpec::new("data", w)],
            vec![PortSpec::new("odd", 1), PortSpec::new("even", 1)],
        ),
        golden: Golden::Comb(Arc::new(move |ins| {
            let p = (input(ins, "data").count_ones() % 2) as u64;
            vec![("odd".to_string(), p), ("even".to_string(), 1 - p)]
        })),
    }
}

fn gen_alu(rng: &mut SmallRng) -> GeneratedModule {
    let w = pick_width(rng, 4, 8);
    let name = {
        let base = pick(rng, &["alu", "simple_alu", "alu_core"]);
        vary_name(rng, base)
    };
    let source = format!(
        "module {name} (\n    input [2:0] op,\n    input [{m}:0] a,\n    input [{m}:0] b,\n    output reg [{m}:0] y,\n    output zero\n);\n    assign zero = (y == {w}'d0);\n    always @(*) begin\n        case (op)\n            3'b000: y = a + b;\n            3'b001: y = a - b;\n            3'b010: y = a & b;\n            3'b011: y = a | b;\n            3'b100: y = a ^ b;\n            3'b101: y = ~a;\n            3'b110: y = a << 1;\n            default: y = a >> 1;\n        endcase\n    end\nendmodule\n",
        m = w - 1
    );
    let description = format!(
        "Design a Verilog ALU module \"{name}\" on {w}-bit operands a and b selected by a 3-bit opcode op: 000 add, 001 subtract, 010 AND, 011 OR, 100 XOR, 101 NOT a, 110 shift a left by one, 111 shift a right by one. Output y plus a zero flag."
    );
    GeneratedModule {
        name: name.clone(),
        family: "alu",
        source,
        description,
        interface: Interface::comb(
            vec![
                PortSpec::new("op", 3),
                PortSpec::new("a", w),
                PortSpec::new("b", w),
            ],
            vec![PortSpec::new("y", w), PortSpec::new("zero", 1)],
        ),
        golden: Golden::Comb(Arc::new(move |ins| {
            let (a, b) = (input(ins, "a"), input(ins, "b"));
            let y = match input(ins, "op") & 7 {
                0 => a.wrapping_add(b),
                1 => a.wrapping_sub(b),
                2 => a & b,
                3 => a | b,
                4 => a ^ b,
                5 => !a,
                6 => a << 1,
                _ => mask(a, w) >> 1,
            };
            let y = mask(y, w);
            vec![("y".to_string(), y), ("zero".to_string(), (y == 0) as u64)]
        })),
    }
}

fn gen_shifter(rng: &mut SmallRng) -> GeneratedModule {
    let w = 8u32;
    let name = {
        let base = pick(rng, &["barrel_shifter", "shifter", "shift_unit"]);
        vary_name(rng, base)
    };
    let source = format!(
        "module {name} (\n    input [{m}:0] data,\n    input [2:0] amount,\n    input dir,\n    output [{m}:0] y\n);\n    assign y = dir ? (data >> amount) : (data << amount);\nendmodule\n",
        m = w - 1
    );
    let description = format!(
        "Write a Verilog module \"{name}\": an {w}-bit shifter. When dir is 1 the data input shifts right by amount, otherwise it shifts left."
    );
    GeneratedModule {
        name: name.clone(),
        family: "shifter",
        source,
        description,
        interface: Interface::comb(
            vec![
                PortSpec::new("data", w),
                PortSpec::new("amount", 3),
                PortSpec::new("dir", 1),
            ],
            vec![PortSpec::new("y", w)],
        ),
        golden: Golden::Comb(Arc::new(move |ins| {
            let d = input(ins, "data");
            let amt = input(ins, "amount") & 7;
            let y = if input(ins, "dir") != 0 {
                mask(d, w) >> amt
            } else {
                d << amt
            };
            vec![("y".to_string(), mask(y, w))]
        })),
    }
}

fn gen_bit_reverse(rng: &mut SmallRng) -> GeneratedModule {
    let w = pick_width(rng, 4, 8);
    let name = {
        let base = pick(rng, &["bit_reverse", "reverser", "bitrev"]);
        vary_name(rng, base)
    };
    let source = format!(
        "module {name} (\n    input [{m}:0] din,\n    output reg [{m}:0] dout\n);\n    integer i;\n    always @(*) begin\n        for (i = 0; i < {w}; i = i + 1)\n            dout[i] = din[{m} - i];\n    end\nendmodule\n",
        m = w - 1
    );
    let description = format!(
        "Write a Verilog module \"{name}\" that reverses the bit order of a {w}-bit input din using a for loop, producing dout."
    );
    GeneratedModule {
        name: name.clone(),
        family: "bit_reverse",
        source,
        description,
        interface: Interface::comb(
            vec![PortSpec::new("din", w)],
            vec![PortSpec::new("dout", w)],
        ),
        golden: Golden::Comb(Arc::new(move |ins| {
            let d = input(ins, "din");
            let mut y = 0u64;
            for i in 0..w {
                y |= ((d >> (w - 1 - i)) & 1) << i;
            }
            vec![("dout".to_string(), y)]
        })),
    }
}

fn gen_popcount(rng: &mut SmallRng) -> GeneratedModule {
    let w = pick_width(rng, 4, 8);
    let cw = 32 - (w.leading_zeros()) + 1; // enough bits for count
    let cw = cw.clamp(4, 8);
    let name = {
        let base = pick(rng, &["popcount", "ones_counter", "bit_counter"]);
        vary_name(rng, base)
    };
    let source = format!(
        "module {name} (\n    input [{m}:0] din,\n    output reg [{cm}:0] count\n);\n    integer i;\n    always @(*) begin\n        count = {cw}'d0;\n        for (i = 0; i < {w}; i = i + 1)\n            count = count + din[i];\n    end\nendmodule\n",
        m = w - 1,
        cm = cw - 1
    );
    let description = format!(
        "Write a Verilog module \"{name}\" counting the number of set bits in a {w}-bit input din; the population count appears on count."
    );
    GeneratedModule {
        name: name.clone(),
        family: "popcount",
        source,
        description,
        interface: Interface::comb(
            vec![PortSpec::new("din", w)],
            vec![PortSpec::new("count", cw)],
        ),
        golden: Golden::Comb(Arc::new(move |ins| {
            vec![("count".to_string(), input(ins, "din").count_ones() as u64)]
        })),
    }
}

fn gen_bin2gray(rng: &mut SmallRng) -> GeneratedModule {
    let w = pick_width(rng, 3, 8);
    let name = {
        let base = pick(rng, &["bin2gray", "gray_encoder", "binary_to_gray"]);
        vary_name(rng, base)
    };
    let source = format!(
        "module {name} (\n    input [{m}:0] bin,\n    output [{m}:0] gray\n);\n    assign gray = bin ^ (bin >> 1);\nendmodule\n",
        m = w - 1
    );
    let description = format!(
        "Write a Verilog module \"{name}\" converting a {w}-bit binary value bin to Gray code: gray = bin XOR (bin >> 1)."
    );
    GeneratedModule {
        name: name.clone(),
        family: "bin2gray",
        source,
        description,
        interface: Interface::comb(
            vec![PortSpec::new("bin", w)],
            vec![PortSpec::new("gray", w)],
        ),
        golden: Golden::Comb(Arc::new(move |ins| {
            let b = mask(input(ins, "bin"), w);
            vec![("gray".to_string(), b ^ (b >> 1))]
        })),
    }
}

fn gen_absdiff(rng: &mut SmallRng) -> GeneratedModule {
    let w = pick_width(rng, 3, 8);
    let name = {
        let base = pick(rng, &["absdiff", "abs_difference", "delta"]);
        vary_name(rng, base)
    };
    let source = format!(
        "module {name} (\n    input [{m}:0] a,\n    input [{m}:0] b,\n    output [{m}:0] y\n);\n    assign y = (a > b) ? (a - b) : (b - a);\nendmodule\n",
        m = w - 1
    );
    let description = format!(
        "Write a Verilog module \"{name}\" computing the absolute difference of two {w}-bit unsigned inputs: y = |a - b|."
    );
    GeneratedModule {
        name: name.clone(),
        family: "absdiff",
        source,
        description,
        interface: Interface::comb(
            vec![PortSpec::new("a", w), PortSpec::new("b", w)],
            vec![PortSpec::new("y", w)],
        ),
        golden: Golden::Comb(Arc::new(move |ins| {
            let (a, b) = (input(ins, "a"), input(ins, "b"));
            vec![("y".to_string(), a.abs_diff(b))]
        })),
    }
}

fn gen_minmax(rng: &mut SmallRng) -> GeneratedModule {
    let w = pick_width(rng, 3, 8);
    let name = {
        let base = pick(rng, &["minmax", "min_max", "extrema"]);
        vary_name(rng, base)
    };
    let source = format!(
        "module {name} (\n    input [{m}:0] a,\n    input [{m}:0] b,\n    output [{m}:0] min_val,\n    output [{m}:0] max_val\n);\n    assign min_val = (a < b) ? a : b;\n    assign max_val = (a < b) ? b : a;\nendmodule\n",
        m = w - 1
    );
    let description = format!(
        "Write a Verilog module \"{name}\" that outputs both the minimum (min_val) and maximum (max_val) of two {w}-bit unsigned inputs a and b."
    );
    GeneratedModule {
        name: name.clone(),
        family: "minmax",
        source,
        description,
        interface: Interface::comb(
            vec![PortSpec::new("a", w), PortSpec::new("b", w)],
            vec![PortSpec::new("min_val", w), PortSpec::new("max_val", w)],
        ),
        golden: Golden::Comb(Arc::new(move |ins| {
            let (a, b) = (input(ins, "a"), input(ins, "b"));
            vec![
                ("min_val".to_string(), a.min(b)),
                ("max_val".to_string(), a.max(b)),
            ]
        })),
    }
}

fn gen_sign_extend(rng: &mut SmallRng) -> GeneratedModule {
    let w = pick_width(rng, 3, 6);
    let w2 = w + pick_width(rng, 2, 6);
    let name = {
        let base = pick(rng, &["sign_extend", "sext", "sign_ext_unit"]);
        vary_name(rng, base)
    };
    let source = format!(
        "module {name} (\n    input [{m}:0] a,\n    output [{m2}:0] y\n);\n    assign y = {{{{{rep}{{a[{m}]}}}}, a}};\nendmodule\n",
        m = w - 1,
        m2 = w2 - 1,
        rep = w2 - w
    );
    let description = format!(
        "Write a Verilog module \"{name}\" sign-extending a {w}-bit input a to {w2} bits by replicating the sign bit, output y."
    );
    GeneratedModule {
        name: name.clone(),
        family: "sign_extend",
        source,
        description,
        interface: Interface::comb(vec![PortSpec::new("a", w)], vec![PortSpec::new("y", w2)]),
        golden: Golden::Comb(Arc::new(move |ins| {
            let a = mask(input(ins, "a"), w);
            let sign = (a >> (w - 1)) & 1;
            let y = if sign == 1 {
                a | (mask(u64::MAX, w2) & !mask(u64::MAX, w))
            } else {
                a
            };
            vec![("y".to_string(), mask(y, w2))]
        })),
    }
}

fn gen_majority(rng: &mut SmallRng) -> GeneratedModule {
    let name = {
        let base = pick(rng, &["majority3", "voter", "majority_gate"]);
        vary_name(rng, base)
    };
    let source = format!(
        "module {name} (\n    input a,\n    input b,\n    input c,\n    output y\n);\n    assign y = (a & b) | (a & c) | (b & c);\nendmodule\n"
    );
    let description = format!(
        "Write a Verilog module \"{name}\": a 3-input majority voter whose output y is high when at least two of the inputs a, b, c are high."
    );
    GeneratedModule {
        name: name.clone(),
        family: "majority",
        source,
        description,
        interface: Interface::comb(
            vec![
                PortSpec::new("a", 1),
                PortSpec::new("b", 1),
                PortSpec::new("c", 1),
            ],
            vec![PortSpec::new("y", 1)],
        ),
        golden: Golden::Comb(Arc::new(move |ins| {
            let s = input(ins, "a") + input(ins, "b") + input(ins, "c");
            vec![("y".to_string(), (s >= 2) as u64)]
        })),
    }
}
