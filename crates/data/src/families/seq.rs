//! Sequential module families: registers, counters, shift registers,
//! FSMs, FIFOs, and friends.
//!
//! Golden models mirror the RTL exactly (same state variables, same
//! two-state initialization) and return *post-clock-edge* outputs, per
//! the harness protocol.

use super::{pick, pick_width, vary_name};
use crate::iface::{input, mask, GeneratedModule, Golden, Interface, PortSpec, ResetWiring};
use rand::rngs::SmallRng;
use rand::Rng;
use std::sync::Arc;

/// Registered sequential families.
pub fn families() -> Vec<super::Family> {
    vec![
        (
            "data_register",
            gen_data_register as fn(&mut SmallRng) -> GeneratedModule,
        ),
        ("register_en", gen_register_en),
        ("counter_up", gen_counter_up),
        ("counter_updown", gen_counter_updown),
        ("counter_load", gen_counter_load),
        ("shift_register", gen_shift_register),
        ("edge_detector", gen_edge_detector),
        ("clock_divider", gen_clock_divider),
        ("fsm_detector", gen_fsm_detector),
        ("fifo", gen_fifo),
        ("pwm", gen_pwm),
        ("lfsr", gen_lfsr),
        ("accumulator", gen_accumulator),
        ("ram", gen_ram),
    ]
}

fn gen_data_register(rng: &mut SmallRng) -> GeneratedModule {
    // The paper's Fig. 3 / Fig. 5 example family.
    let w = pick_width(rng, 2, 8);
    let name = {
        let base = pick(rng, &["data_register", "dff_vec", "register"]);
        vary_name(rng, base)
    };
    let (din, dout) = (
        pick(rng, &["data_in", "din"]).to_string(),
        pick(rng, &["data_out", "q"]).to_string(),
    );
    let source = format!(
        "module {name} (\n    input clk,\n    input [{m}:0] {din},\n    output reg [{m}:0] {dout}\n);\n    always @(posedge clk) begin\n        {dout} <= {din};\n    end\nendmodule\n",
        m = w - 1
    );
    let description = match rng.gen_range(0..3u8) {
        0 => format!(
            "Create a simple Verilog module named \"{name}\" that takes a {w}-bit input {din} and assigns it to a {w}-bit output {dout} using a non-blocking assignment on the positive edge of the clock."
        ),
        1 => format!(
            "Write a Verilog module \"{name}\": a {w}-bit data register capturing {din} into {dout} on every rising clock edge."
        ),
        _ => format!(
            "Please act as a professional Verilog designer. Implement \"{name}\", a {w}-bit D-type register with clock clk, input {din} and registered output {dout}."
        ),
    };
    let (di, do_) = (din.clone(), dout.clone());
    GeneratedModule {
        name: name.clone(),
        family: "data_register",
        source,
        description,
        interface: Interface::seq(
            vec![PortSpec::new(din, w)],
            vec![PortSpec::new(dout, w)],
            "clk",
            None,
        ),
        golden: Golden::Seq(Arc::new(move || {
            let (di, do_) = (di.clone(), do_.clone());
            Box::new(move |ins| vec![(do_.clone(), mask(input(ins, &di), w))])
        })),
    }
}

fn gen_register_en(rng: &mut SmallRng) -> GeneratedModule {
    let w = pick_width(rng, 2, 8);
    let name = {
        let base = pick(rng, &["register_en", "en_reg", "dff_en"]);
        vary_name(rng, base)
    };
    let source = format!(
        "module {name} (\n    input clk,\n    input rst_n,\n    input en,\n    input [{m}:0] d,\n    output reg [{m}:0] q\n);\n    always @(posedge clk or negedge rst_n) begin\n        if (!rst_n)\n            q <= {w}'d0;\n        else if (en)\n            q <= d;\n    end\nendmodule\n",
        m = w - 1
    );
    let description = format!(
        "Write a Verilog module \"{name}\": a {w}-bit register with asynchronous active-low reset rst_n and clock enable en; q captures d on rising clk only when en is high."
    );
    GeneratedModule {
        name: name.clone(),
        family: "register_en",
        source,
        description,
        interface: Interface::seq(
            vec![PortSpec::new("en", 1), PortSpec::new("d", w)],
            vec![PortSpec::new("q", w)],
            "clk",
            Some(ResetWiring {
                signal: "rst_n".into(),
                active_low: true,
            }),
        ),
        golden: Golden::Seq(Arc::new(move || {
            let mut q = 0u64;
            Box::new(move |ins| {
                if input(ins, "en") != 0 {
                    q = mask(input(ins, "d"), w);
                }
                vec![("q".to_string(), q)]
            })
        })),
    }
}

fn gen_counter_up(rng: &mut SmallRng) -> GeneratedModule {
    let w = pick_width(rng, 3, 8);
    let name = {
        let base = pick(rng, &["counter", "up_counter", "counter_up"]);
        vary_name(rng, base)
    };
    let source = format!(
        "module {name} (\n    input clk,\n    input rst,\n    input en,\n    output reg [{m}:0] count\n);\n    always @(posedge clk) begin\n        if (rst)\n            count <= {w}'d0;\n        else if (en)\n            count <= count + 1;\n    end\nendmodule\n",
        m = w - 1
    );
    let description = match rng.gen_range(0..2u8) {
        0 => format!(
            "Write a Verilog module \"{name}\": a {w}-bit up counter with synchronous reset rst and enable en, incrementing count on each rising clock edge."
        ),
        _ => format!(
            "Design a {w}-bit binary counter named \"{name}\". On posedge clk: reset to zero when rst is high, else increment when en is high."
        ),
    };
    GeneratedModule {
        name: name.clone(),
        family: "counter_up",
        source,
        description,
        interface: Interface::seq(
            vec![PortSpec::new("en", 1)],
            vec![PortSpec::new("count", w)],
            "clk",
            Some(ResetWiring {
                signal: "rst".into(),
                active_low: false,
            }),
        ),
        golden: Golden::Seq(Arc::new(move || {
            let mut count = 0u64;
            Box::new(move |ins| {
                if input(ins, "en") != 0 {
                    count = mask(count + 1, w);
                }
                vec![("count".to_string(), count)]
            })
        })),
    }
}

fn gen_counter_updown(rng: &mut SmallRng) -> GeneratedModule {
    let w = pick_width(rng, 3, 8);
    let name = {
        let base = pick(rng, &["updown_counter", "counter_updown", "bidir_counter"]);
        vary_name(rng, base)
    };
    let source = format!(
        "module {name} (\n    input clk,\n    input rst,\n    input up,\n    output reg [{m}:0] count\n);\n    always @(posedge clk) begin\n        if (rst)\n            count <= {w}'d0;\n        else if (up)\n            count <= count + 1;\n        else\n            count <= count - 1;\n    end\nendmodule\n",
        m = w - 1
    );
    let description = format!(
        "Write a Verilog module \"{name}\": a {w}-bit up/down counter with synchronous reset. When up is 1 it increments, otherwise it decrements (wrapping)."
    );
    GeneratedModule {
        name: name.clone(),
        family: "counter_updown",
        source,
        description,
        interface: Interface::seq(
            vec![PortSpec::new("up", 1)],
            vec![PortSpec::new("count", w)],
            "clk",
            Some(ResetWiring {
                signal: "rst".into(),
                active_low: false,
            }),
        ),
        golden: Golden::Seq(Arc::new(move || {
            let mut count = 0u64;
            Box::new(move |ins| {
                count = if input(ins, "up") != 0 {
                    mask(count + 1, w)
                } else {
                    mask(count.wrapping_sub(1), w)
                };
                vec![("count".to_string(), count)]
            })
        })),
    }
}

fn gen_counter_load(rng: &mut SmallRng) -> GeneratedModule {
    let w = pick_width(rng, 3, 8);
    let name = {
        let base = pick(rng, &["loadable_counter", "counter_load", "preset_counter"]);
        vary_name(rng, base)
    };
    let source = format!(
        "module {name} (\n    input clk,\n    input rst,\n    input load,\n    input [{m}:0] din,\n    output reg [{m}:0] count\n);\n    always @(posedge clk) begin\n        if (rst)\n            count <= {w}'d0;\n        else if (load)\n            count <= din;\n        else\n            count <= count + 1;\n    end\nendmodule\n",
        m = w - 1
    );
    let description = format!(
        "Write a Verilog module \"{name}\": a {w}-bit counter with synchronous reset and parallel load. When load is high, count takes din; otherwise it increments each clock."
    );
    GeneratedModule {
        name: name.clone(),
        family: "counter_load",
        source,
        description,
        interface: Interface::seq(
            vec![PortSpec::new("load", 1), PortSpec::new("din", w)],
            vec![PortSpec::new("count", w)],
            "clk",
            Some(ResetWiring {
                signal: "rst".into(),
                active_low: false,
            }),
        ),
        golden: Golden::Seq(Arc::new(move || {
            let mut count = 0u64;
            Box::new(move |ins| {
                count = if input(ins, "load") != 0 {
                    mask(input(ins, "din"), w)
                } else {
                    mask(count + 1, w)
                };
                vec![("count".to_string(), count)]
            })
        })),
    }
}

fn gen_shift_register(rng: &mut SmallRng) -> GeneratedModule {
    let w = pick_width(rng, 3, 8);
    let name = {
        let base = pick(rng, &["shift_register", "sipo", "shift_reg"]);
        vary_name(rng, base)
    };
    let source = format!(
        "module {name} (\n    input clk,\n    input rst,\n    input din,\n    output reg [{m}:0] q\n);\n    always @(posedge clk) begin\n        if (rst)\n            q <= {w}'d0;\n        else\n            q <= {{q[{m2}:0], din}};\n    end\nendmodule\n",
        m = w - 1,
        m2 = w - 2
    );
    let description = format!(
        "Write a Verilog module \"{name}\": a {w}-bit serial-in parallel-out shift register with synchronous reset; on each clock, q shifts left by one and din enters at the LSB."
    );
    GeneratedModule {
        name: name.clone(),
        family: "shift_register",
        source,
        description,
        interface: Interface::seq(
            vec![PortSpec::new("din", 1)],
            vec![PortSpec::new("q", w)],
            "clk",
            Some(ResetWiring {
                signal: "rst".into(),
                active_low: false,
            }),
        ),
        golden: Golden::Seq(Arc::new(move || {
            let mut q = 0u64;
            Box::new(move |ins| {
                q = mask((q << 1) | (input(ins, "din") & 1), w);
                vec![("q".to_string(), q)]
            })
        })),
    }
}

fn gen_edge_detector(rng: &mut SmallRng) -> GeneratedModule {
    let name = {
        let base = pick(rng, &["edge_detector", "rising_edge", "pulse_gen"]);
        vary_name(rng, base)
    };
    let source = format!(
        "module {name} (\n    input clk,\n    input rst,\n    input din,\n    output reg pulse\n);\n    reg prev;\n    always @(posedge clk) begin\n        if (rst) begin\n            prev <= 1'b0;\n            pulse <= 1'b0;\n        end else begin\n            pulse <= din & ~prev;\n            prev <= din;\n        end\n    end\nendmodule\n"
    );
    let description = format!(
        "Write a Verilog module \"{name}\" that detects rising edges of din: the registered output pulse is high for one cycle after din transitions from 0 to 1."
    );
    GeneratedModule {
        name: name.clone(),
        family: "edge_detector",
        source,
        description,
        interface: Interface::seq(
            vec![PortSpec::new("din", 1)],
            vec![PortSpec::new("pulse", 1)],
            "clk",
            Some(ResetWiring {
                signal: "rst".into(),
                active_low: false,
            }),
        ),
        golden: Golden::Seq(Arc::new(move || {
            let mut prev = 0u64;
            Box::new(move |ins| {
                let d = input(ins, "din") & 1;
                let pulse = d & !prev & 1;
                prev = d;
                vec![("pulse".to_string(), pulse)]
            })
        })),
    }
}

fn gen_clock_divider(rng: &mut SmallRng) -> GeneratedModule {
    let bits = pick_width(rng, 2, 4);
    let period = 1u64 << bits;
    let name = {
        let base = pick(rng, &["clock_divider", "tick_gen", "divider"]);
        vary_name(rng, base)
    };
    let source = format!(
        "module {name} (\n    input clk,\n    input rst,\n    output reg tick\n);\n    reg [{m}:0] cnt;\n    always @(posedge clk) begin\n        if (rst) begin\n            cnt <= {bits}'d0;\n            tick <= 1'b0;\n        end else begin\n            cnt <= cnt + 1;\n            tick <= (cnt == {bits}'d{last});\n        end\n    end\nendmodule\n",
        m = bits - 1,
        last = period - 1
    );
    let description = format!(
        "Write a Verilog module \"{name}\" producing a single-cycle tick output every {period} clock cycles using a {bits}-bit internal counter with synchronous reset."
    );
    GeneratedModule {
        name: name.clone(),
        family: "clock_divider",
        source,
        description,
        interface: Interface::seq(
            vec![],
            vec![PortSpec::new("tick", 1)],
            "clk",
            Some(ResetWiring {
                signal: "rst".into(),
                active_low: false,
            }),
        ),
        golden: Golden::Seq(Arc::new(move || {
            let mut cnt = 0u64;
            Box::new(move |_ins| {
                let tick = (cnt == period - 1) as u64;
                cnt = (cnt + 1) % period;
                vec![("tick".to_string(), tick)]
            })
        })),
    }
}

fn gen_fsm_detector(rng: &mut SmallRng) -> GeneratedModule {
    // Moore FSM detecting the serial pattern 101 (with overlap).
    let name = {
        let base = pick(rng, &["seq_detector", "fsm_101", "pattern_fsm"]);
        vary_name(rng, base)
    };
    let source = format!(
        "module {name} (\n    input clk,\n    input rst,\n    input din,\n    output detected\n);\n    localparam [1:0] S_IDLE = 2'd0, S_1 = 2'd1, S_10 = 2'd2, S_101 = 2'd3;\n    reg [1:0] state;\n    assign detected = (state == S_101);\n    always @(posedge clk) begin\n        if (rst)\n            state <= S_IDLE;\n        else begin\n            case (state)\n                S_IDLE: state <= din ? S_1 : S_IDLE;\n                S_1:    state <= din ? S_1 : S_10;\n                S_10:   state <= din ? S_101 : S_IDLE;\n                S_101:  state <= din ? S_1 : S_10;\n                default: state <= S_IDLE;\n            endcase\n        end\n    end\nendmodule\n"
    );
    let description = format!(
        "Write a Verilog module \"{name}\": a Moore FSM that detects the overlapping serial bit pattern 101 on din; detected goes high for the cycle after the pattern completes."
    );
    GeneratedModule {
        name: name.clone(),
        family: "fsm_detector",
        source,
        description,
        interface: Interface::seq(
            vec![PortSpec::new("din", 1)],
            vec![PortSpec::new("detected", 1)],
            "clk",
            Some(ResetWiring {
                signal: "rst".into(),
                active_low: false,
            }),
        ),
        golden: Golden::Seq(Arc::new(move || {
            let mut state = 0u64; // S_IDLE
            Box::new(move |ins| {
                let d = input(ins, "din") & 1;
                state = match (state, d) {
                    (0, 1) => 1,
                    (0, 0) => 0,
                    (1, 1) => 1,
                    (1, 0) => 2,
                    (2, 1) => 3,
                    (2, 0) => 0,
                    (3, 1) => 1,
                    (3, 0) => 2,
                    _ => 0,
                };
                vec![("detected".to_string(), (state == 3) as u64)]
            })
        })),
    }
}

fn gen_fifo(rng: &mut SmallRng) -> GeneratedModule {
    let w = pick_width(rng, 4, 8);
    let depth_bits = rng.gen_range(2..=3u32);
    let depth = 1u64 << depth_bits;
    let name = {
        let base = pick(rng, &["sync_fifo", "fifo", "queue"]);
        vary_name(rng, base)
    };
    let source = format!(
        "module {name} (\n    input clk,\n    input rst,\n    input wr,\n    input rd,\n    input [{m}:0] din,\n    output [{m}:0] dout,\n    output full,\n    output empty\n);\n    reg [{m}:0] mem [0:{dm}];\n    reg [{cb}:0] count;\n    reg [{pb}:0] wptr;\n    reg [{pb}:0] rptr;\n    assign full = (count == {cw}'d{depth});\n    assign empty = (count == {cw}'d0);\n    assign dout = mem[rptr];\n    always @(posedge clk) begin\n        if (rst) begin\n            count <= {cw}'d0;\n            wptr <= {pw}'d0;\n            rptr <= {pw}'d0;\n        end else begin\n            if (wr && !full) begin\n                mem[wptr] <= din;\n                wptr <= wptr + 1;\n            end\n            if (rd && !empty)\n                rptr <= rptr + 1;\n            case ({{wr && !full, rd && !empty}})\n                2'b10: count <= count + 1;\n                2'b01: count <= count - 1;\n                default: count <= count;\n            endcase\n        end\n    end\nendmodule\n",
        m = w - 1,
        dm = depth - 1,
        cb = depth_bits, // count needs depth_bits+1 bits
        pb = depth_bits - 1,
        cw = depth_bits + 1,
        pw = depth_bits,
    );
    let description = format!(
        "Write a Verilog module \"{name}\": a synchronous FIFO of depth {depth} storing {w}-bit words, with write enable wr, read enable rd, data ports din/dout, and full/empty flags. Reads and writes are gated by the flags."
    );
    GeneratedModule {
        name: name.clone(),
        family: "fifo",
        source,
        description,
        interface: Interface::seq(
            vec![
                PortSpec::new("wr", 1),
                PortSpec::new("rd", 1),
                PortSpec::new("din", w),
            ],
            vec![
                PortSpec::new("dout", w),
                PortSpec::new("full", 1),
                PortSpec::new("empty", 1),
            ],
            "clk",
            Some(ResetWiring {
                signal: "rst".into(),
                active_low: false,
            }),
        ),
        golden: Golden::Seq(Arc::new(move || {
            // Mirror the RTL state exactly (two-state memory initialized 0).
            let mut mem = vec![0u64; depth as usize];
            let mut count = 0u64;
            let mut wptr = 0u64;
            let mut rptr = 0u64;
            Box::new(move |ins| {
                let full = count == depth;
                let empty = count == 0;
                let do_wr = input(ins, "wr") != 0 && !full;
                let do_rd = input(ins, "rd") != 0 && !empty;
                if do_wr {
                    mem[wptr as usize] = mask(input(ins, "din"), w);
                    wptr = (wptr + 1) % depth;
                }
                if do_rd {
                    rptr = (rptr + 1) % depth;
                }
                match (do_wr, do_rd) {
                    (true, false) => count += 1,
                    (false, true) => count -= 1,
                    _ => {}
                }
                vec![
                    ("dout".to_string(), mem[rptr as usize]),
                    ("full".to_string(), (count == depth) as u64),
                    ("empty".to_string(), (count == 0) as u64),
                ]
            })
        })),
    }
}

fn gen_pwm(rng: &mut SmallRng) -> GeneratedModule {
    let bits = pick_width(rng, 3, 6);
    let name = {
        let base = pick(rng, &["pwm", "pwm_gen", "pulse_width_mod"]);
        vary_name(rng, base)
    };
    let source = format!(
        "module {name} (\n    input clk,\n    input rst,\n    input [{m}:0] duty,\n    output reg pwm_out\n);\n    reg [{m}:0] cnt;\n    always @(posedge clk) begin\n        if (rst) begin\n            cnt <= {bits}'d0;\n            pwm_out <= 1'b0;\n        end else begin\n            cnt <= cnt + 1;\n            pwm_out <= (cnt < duty);\n        end\n    end\nendmodule\n",
        m = bits - 1
    );
    let description = format!(
        "Write a Verilog module \"{name}\": a PWM generator with a free-running {bits}-bit counter; pwm_out is high while the counter is below the duty input."
    );
    GeneratedModule {
        name: name.clone(),
        family: "pwm",
        source,
        description,
        interface: Interface::seq(
            vec![PortSpec::new("duty", bits)],
            vec![PortSpec::new("pwm_out", 1)],
            "clk",
            Some(ResetWiring {
                signal: "rst".into(),
                active_low: false,
            }),
        ),
        golden: Golden::Seq(Arc::new(move || {
            let mut cnt = 0u64;
            Box::new(move |ins| {
                let out = (cnt < mask(input(ins, "duty"), bits)) as u64;
                cnt = mask(cnt + 1, bits);
                vec![("pwm_out".to_string(), out)]
            })
        })),
    }
}

fn gen_lfsr(rng: &mut SmallRng) -> GeneratedModule {
    let name = {
        let base = pick(rng, &["lfsr4", "lfsr", "prbs_gen"]);
        vary_name(rng, base)
    };
    // 4-bit Fibonacci LFSR, taps 4 and 3, seeded to 1 on reset.
    let source = format!(
        "module {name} (\n    input clk,\n    input rst,\n    output reg [3:0] q\n);\n    always @(posedge clk) begin\n        if (rst)\n            q <= 4'd1;\n        else\n            q <= {{q[2:0], q[3] ^ q[2]}};\n    end\nendmodule\n"
    );
    let description = format!(
        "Write a Verilog module \"{name}\": a 4-bit Fibonacci LFSR with taps at bits 3 and 2, shifting left each clock and reseeding to 1 on synchronous reset."
    );
    GeneratedModule {
        name: name.clone(),
        family: "lfsr",
        source,
        description,
        interface: Interface::seq(
            vec![],
            vec![PortSpec::new("q", 4)],
            "clk",
            Some(ResetWiring {
                signal: "rst".into(),
                active_low: false,
            }),
        ),
        golden: Golden::Seq(Arc::new(move || {
            let mut q = 1u64; // post-reset value
            Box::new(move |_| {
                let fb = ((q >> 3) ^ (q >> 2)) & 1;
                q = mask((q << 1) | fb, 4);
                vec![("q".to_string(), q)]
            })
        })),
    }
}

fn gen_accumulator(rng: &mut SmallRng) -> GeneratedModule {
    let w = pick_width(rng, 4, 8);
    let name = {
        let base = pick(rng, &["accumulator", "acc", "running_sum"]);
        vary_name(rng, base)
    };
    let source = format!(
        "module {name} (\n    input clk,\n    input rst,\n    input en,\n    input [{m}:0] din,\n    output reg [{m}:0] acc\n);\n    always @(posedge clk) begin\n        if (rst)\n            acc <= {w}'d0;\n        else if (en)\n            acc <= acc + din;\n    end\nendmodule\n",
        m = w - 1
    );
    let description = format!(
        "Write a Verilog module \"{name}\": a {w}-bit accumulator that adds din into acc on each enabled rising clock edge, with synchronous reset."
    );
    GeneratedModule {
        name: name.clone(),
        family: "accumulator",
        source,
        description,
        interface: Interface::seq(
            vec![PortSpec::new("en", 1), PortSpec::new("din", w)],
            vec![PortSpec::new("acc", w)],
            "clk",
            Some(ResetWiring {
                signal: "rst".into(),
                active_low: false,
            }),
        ),
        golden: Golden::Seq(Arc::new(move || {
            let mut acc = 0u64;
            Box::new(move |ins| {
                if input(ins, "en") != 0 {
                    acc = mask(acc + input(ins, "din"), w);
                }
                vec![("acc".to_string(), acc)]
            })
        })),
    }
}

fn gen_ram(rng: &mut SmallRng) -> GeneratedModule {
    let w = pick_width(rng, 4, 8);
    let abits = rng.gen_range(2..=4u32);
    let depth = 1u64 << abits;
    let name = {
        let base = pick(rng, &["single_port_ram", "ram", "scratchpad"]);
        vary_name(rng, base)
    };
    let source = format!(
        "module {name} (\n    input clk,\n    input we,\n    input [{am}:0] addr,\n    input [{m}:0] din,\n    output [{m}:0] dout\n);\n    reg [{m}:0] mem [0:{dm}];\n    assign dout = mem[addr];\n    always @(posedge clk) begin\n        if (we)\n            mem[addr] <= din;\n    end\nendmodule\n",
        m = w - 1,
        am = abits - 1,
        dm = depth - 1
    );
    let description = format!(
        "Write a Verilog module \"{name}\": a single-port RAM with {depth} words of {w} bits, synchronous write (we) and asynchronous read (dout = mem[addr])."
    );
    GeneratedModule {
        name: name.clone(),
        family: "ram",
        source,
        description,
        interface: Interface::seq(
            vec![
                PortSpec::new("we", 1),
                PortSpec::new("addr", abits),
                PortSpec::new("din", w),
            ],
            vec![PortSpec::new("dout", w)],
            "clk",
            None,
        ),
        golden: Golden::Seq(Arc::new(move || {
            let mut mem = vec![0u64; depth as usize];
            Box::new(move |ins| {
                let addr = (input(ins, "addr") & (depth - 1)) as usize;
                if input(ins, "we") != 0 {
                    mem[addr] = mask(input(ins, "din"), w);
                }
                vec![("dout".to_string(), mem[addr])]
            })
        })),
    }
}
