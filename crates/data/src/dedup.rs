//! MinHash/Jaccard near-duplicate removal (paper §III-A: "duplicates are
//! removed using MinHash and Jaccard similarity metrics").
//!
//! Documents are shingled into token 3-grams; each document keeps the
//! minimum hash of its shingle set under `k` independent hash functions.
//! The MinHash signature similarity estimates the Jaccard similarity of
//! the shingle sets; pairs above the threshold are deduplicated keeping
//! the first occurrence.

use std::collections::HashSet;

/// Number of hash permutations in a signature.
const SIGNATURE_SIZE: usize = 64;

/// Shingle width in tokens.
const SHINGLE: usize = 3;

/// A MinHash signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinHash {
    sig: [u64; SIGNATURE_SIZE],
}

/// 64-bit mix (splitmix64 finalizer).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Cheap whitespace/punctuation tokenization for shingling.
fn shingle_tokens(text: &str) -> Vec<&str> {
    text.split(|c: char| c.is_whitespace() || matches!(c, '(' | ')' | ';' | ','))
        .filter(|s| !s.is_empty())
        .collect()
}

impl MinHash {
    /// Computes the signature of a document.
    pub fn of(text: &str) -> Self {
        let tokens = shingle_tokens(text);
        let mut sig = [u64::MAX; SIGNATURE_SIZE];
        if tokens.is_empty() {
            return Self { sig };
        }
        let n = tokens.len().saturating_sub(SHINGLE - 1).max(1);
        for i in 0..n {
            let end = (i + SHINGLE).min(tokens.len());
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
            for t in &tokens[i..end] {
                for b in t.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                h ^= 0xff;
            }
            for (k, s) in sig.iter_mut().enumerate() {
                let hk = mix(h ^ mix(k as u64));
                if hk < *s {
                    *s = hk;
                }
            }
        }
        Self { sig }
    }

    /// Estimated Jaccard similarity between two signatures.
    pub fn similarity(&self, other: &MinHash) -> f64 {
        let same = self
            .sig
            .iter()
            .zip(&other.sig)
            .filter(|(a, b)| a == b)
            .count();
        same as f64 / SIGNATURE_SIZE as f64
    }
}

/// Exact Jaccard similarity over token shingles (reference metric used
/// in tests to validate the MinHash estimate).
pub fn jaccard(a: &str, b: &str) -> f64 {
    let sh = |t: &str| -> HashSet<String> {
        let toks = shingle_tokens(t);
        if toks.len() < SHINGLE {
            return toks.iter().map(|s| s.to_string()).collect();
        }
        toks.windows(SHINGLE).map(|w| w.join("\u{1}")).collect()
    };
    let (sa, sb) = (sh(a), sh(b));
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

/// Removes near-duplicates from `docs`, keeping first occurrences.
/// Returns the indices of retained documents.
pub fn dedup_indices(docs: &[&str], threshold: f64) -> Vec<usize> {
    let sigs: Vec<MinHash> = docs.iter().map(|d| MinHash::of(d)).collect();
    let mut kept: Vec<usize> = Vec::new();
    'outer: for (i, sig) in sigs.iter().enumerate() {
        for &j in &kept {
            if sig.similarity(&sigs[j]) >= threshold {
                continue 'outer;
            }
        }
        kept.push(i);
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    const MOD_A: &str = "module a(input x, output y); assign y = ~x; endmodule";
    const MOD_A2: &str = "module a(input x, output y);  assign y = ~x;  endmodule";
    const MOD_B: &str =
        "module counter(input clk, rst, output reg [7:0] q); always @(posedge clk) q <= q + 1; endmodule";

    #[test]
    fn identical_documents_have_similarity_one() {
        let s = MinHash::of(MOD_A);
        assert_eq!(s.similarity(&MinHash::of(MOD_A)), 1.0);
        // Whitespace-only differences do not change the shingles.
        assert_eq!(s.similarity(&MinHash::of(MOD_A2)), 1.0);
    }

    #[test]
    fn different_documents_have_low_similarity() {
        let a = MinHash::of(MOD_A);
        let b = MinHash::of(MOD_B);
        assert!(a.similarity(&b) < 0.3, "similarity {}", a.similarity(&b));
    }

    #[test]
    fn minhash_tracks_exact_jaccard() {
        let variants = [
            MOD_A.to_string(),
            MOD_A.replace('y', "z"),
            MOD_A.replace("~x", "x & 1'b1"),
            MOD_B.to_string(),
        ];
        for a in &variants {
            for b in &variants {
                let est = MinHash::of(a).similarity(&MinHash::of(b));
                let exact = jaccard(a, b);
                assert!(
                    (est - exact).abs() < 0.25,
                    "estimate {est} too far from exact {exact}\n  a: {a}\n  b: {b}"
                );
            }
        }
    }

    #[test]
    fn dedup_keeps_first_of_near_duplicates() {
        let docs = vec![MOD_A, MOD_A2, MOD_B, MOD_A];
        let kept = dedup_indices(&docs, 0.9);
        assert_eq!(kept, vec![0, 2]);
    }

    #[test]
    fn dedup_with_low_threshold_keeps_only_one_similar() {
        let near = MOD_A.replace('y', "w");
        let docs = vec![MOD_A, near.as_str(), MOD_B];
        let kept = dedup_indices(&docs, 0.5);
        assert!(kept.contains(&0));
        assert!(kept.contains(&2));
    }

    #[test]
    fn empty_documents() {
        assert_eq!(jaccard("", ""), 1.0);
        let kept = dedup_indices(&["", ""], 0.9);
        assert_eq!(kept, vec![0]);
    }
}
