//! Pins the conservativeness of [`dead_tail_prune`] against the
//! post-hoc syntax-integrity rule ([`syntax_keep_len`]): the pruner
//! never removes a candidate token the unpruned engine would have
//! committed, for *any* deterministic acceptance function.
//!
//! The commit model mirrors `commit_spec` in `verispec-core`:
//! acceptance is a pure function of (prefix-so-far, offered token) —
//! the same walk every path sharing a prefix sees — the longest
//! accepted prefix wins (first on ties), EOS stops a walk, and the
//! committed span `[base] + best` is cut to `syntax_keep_len`.

use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use verispec_grammar::{dead_tail_prune, syntax_keep_len};
use verispec_tokenizer::special;

type TokenId = u32;

const FRAG: TokenId = special::FRAG;
const EOS: TokenId = special::EOS;

/// Deterministic acceptance: a pure function of the acceptance seed,
/// the base token, the path prefix already accepted, and the offered
/// token — never of the path's tail.
fn accepts(seed: u64, base: TokenId, prefix: &[TokenId], tok: TokenId) -> bool {
    let mut h = DefaultHasher::new();
    (seed, base, prefix, tok).hash(&mut h);
    !h.finish().is_multiple_of(4)
}

/// Length of the accepted prefix of `path` (EOS, once accepted,
/// terminates the walk).
fn accepted_len(seed: u64, base: TokenId, path: &[TokenId]) -> usize {
    let mut n = 0;
    for (i, &t) in path.iter().enumerate() {
        if !accepts(seed, base, &path[..i], t) {
            break;
        }
        n = i + 1;
        if t == EOS {
            break;
        }
    }
    n
}

/// The committed span (base token included) the engine produces from a
/// candidate path set, post-hoc syntax cut applied.
fn committed(seed: u64, base: TokenId, paths: &[Vec<TokenId>]) -> Vec<TokenId> {
    let mut best: &[TokenId] = &[];
    for p in paths {
        let n = accepted_len(seed, base, p);
        if n > best.len() {
            best = &p[..n];
        }
        if best.last() == Some(&EOS) {
            break;
        }
    }
    let mut span = vec![base];
    span.extend_from_slice(best);
    let keep = syntax_keep_len(&span, FRAG, EOS);
    span.truncate(keep);
    span
}

/// The kept (post-cut) candidate count a single path contributes when
/// it wins verification.
fn kept_len(seed: u64, base: TokenId, path: &[TokenId]) -> usize {
    let n = accepted_len(seed, base, path);
    let mut span = vec![base];
    span.extend_from_slice(&path[..n]);
    syntax_keep_len(&span, FRAG, EOS) - 1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn prune_never_kills_a_committable_token(
        paths in prop::collection::vec(prop::collection::vec(0u32..8, 0..6), 0..8),
        base in 5u32..8,
        seed in any::<u64>(),
    ) {
        let mut pruned = paths.clone();
        let rec = dead_tail_prune(&mut pruned, FRAG, EOS);

        // Accounting is exact and pruning only shrinks.
        let before: usize = paths.iter().map(Vec::len).sum();
        let after: usize = pruned.iter().map(Vec::len).sum();
        prop_assert_eq!(rec.considered, before);
        prop_assert_eq!(rec.surviving, after);
        prop_assert_eq!(rec.pruned, before - after);

        // Structural invariants: every survivor ends at FRAG/EOS, is a
        // prefix of some original path (nothing invented), no path is a
        // duplicate or strict prefix of another survivor.
        for (i, p) in pruned.iter().enumerate() {
            prop_assert!(matches!(p.last(), Some(&t) if t == FRAG || t == EOS));
            prop_assert!(paths.iter().any(|o| o.starts_with(p)));
            for (j, q) in pruned.iter().enumerate() {
                if i != j {
                    prop_assert!(!q.starts_with(p), "{p:?} within {q:?}");
                }
            }
        }

        // Idempotence: re-pruning changes nothing.
        let mut twice = pruned.clone();
        let rec2 = dead_tail_prune(&mut twice, FRAG, EOS);
        prop_assert_eq!(&twice, &pruned);
        prop_assert_eq!(rec2.pruned, 0);

        // Conservativeness: the prune is acceptance-blind, so ONE
        // pruned set must preserve the unpruned engine's committed
        // span under MANY different acceptance functions.
        for round in 0..8u64 {
            let s = seed.wrapping_add(round.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let old = committed(s, base, &paths);
            if old.len() > 1 {
                prop_assert!(
                    pruned.iter().any(|p| p.starts_with(&old[1..])),
                    "seed {s}: committed {old:?} lost from {pruned:?}"
                );
            }
            // Per-path kept-length invariance: truncation only removes
            // acceptance decisions *beyond* the last FRAG/EOS, which
            // the post-hoc cut discards anyway.
            for p in &paths {
                let cut = match p.iter().rposition(|&t| t == FRAG || t == EOS) {
                    Some(i) => &p[..i + 1],
                    None => &p[..0],
                };
                if !cut.is_empty() {
                    prop_assert_eq!(
                        kept_len(s, base, p),
                        kept_len(s, base, cut),
                        "path {:?} vs cut {:?}", p, cut
                    );
                } else {
                    prop_assert_eq!(kept_len(s, base, p), 0);
                }
            }
        }
    }
}
