//! Cross-checks [`ViabilityState`] against the real
//! `verispec-verilog` lexer: viability must be *complete* — it never
//! declares dead a byte stream the actual downstream pipeline (lexing
//! plus prefix-wise bracket balance) accepts. Soundness of individual
//! dead transitions is unit-tested in the crate.

use proptest::prelude::*;
use verispec_grammar::ViabilityState;
use verispec_verilog::{lex, TokenKind};

/// A pool of lexemes covering every token class of the subset;
/// space-joined sequences of these always lex.
const POOL: &[&str] = &[
    "module",
    "assign",
    "endmodule",
    "x",
    "y1",
    "_w$2",
    "4'b1010",
    "8'hFF",
    "'b0",
    "12'o77",
    "4'sd3",
    "16'hDE_AD",
    "3'b1?1",
    "123",
    "1_000",
    "\"str\"",
    "\"e\\\"s\"",
    "$display",
    "\\esc[0] ",
    "// line\n",
    "/* blk */",
    "`dir\n",
    "+",
    "-",
    "==",
    "===",
    "<<<",
    "<=",
    ";",
    ",",
    ".",
    "@",
    "#",
    "?",
    ":",
    "~^",
    "**",
    "&&",
];

fn state_of(text: &str) -> ViabilityState {
    let mut s = ViabilityState::new();
    s.feed_str(text);
    s
}

/// Whether running depth of each bracket kind stays non-negative over
/// the *lexed* token stream (so brackets inside comments, strings, and
/// escaped identifiers don't count — exactly the streams for which a
/// syntactically valid continuation can exist).
fn prefix_balanced(src: &str) -> bool {
    let Ok(tokens) = lex(src) else { return false };
    let (mut p, mut b, mut c) = (0i64, 0i64, 0i64);
    for t in &tokens {
        match t.kind {
            TokenKind::LParen => p += 1,
            TokenKind::RParen => p -= 1,
            TokenKind::LBracket => b += 1,
            TokenKind::RBracket => b -= 1,
            TokenKind::LBrace => c += 1,
            TokenKind::RBrace => c -= 1,
            _ => {}
        }
        if p < 0 || b < 0 || c < 0 {
            return false;
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Space-joined pool lexemes, wrapped in balanced brackets, always
    /// lex — and every byte prefix must stay lexically viable.
    #[test]
    fn pool_sequences_and_all_their_prefixes_stay_alive(
        picks in prop::collection::vec(0usize..POOL.len(), 0..12),
        wraps in prop::collection::vec(0usize..3, 0..4),
    ) {
        let mut src: String = picks
            .iter()
            .map(|&i| POOL[i])
            .collect::<Vec<_>>()
            .join(" ");
        for &w in &wraps {
            let (open, close) = [("(", ")"), ("[", "]"), ("{", "}")][w];
            src = format!("{open} {src} {close}");
        }
        prop_assert!(lex(&src).is_ok(), "pool text must lex: {src:?}");
        let mut s = ViabilityState::new();
        for (i, &byte) in src.as_bytes().iter().enumerate() {
            s.feed_byte(byte);
            prop_assert!(!s.is_dead(), "dead at byte {i} of {src:?}");
        }
    }

    /// Completeness on arbitrary ASCII soup: whenever the real lexer
    /// accepts the text and its bracket depths never go negative, the
    /// viability state must be alive.
    #[test]
    fn viability_is_complete_for_lexable_balanced_text(
        src in "[ -~\n\t]{0,40}",
    ) {
        if prefix_balanced(&src) {
            prop_assert!(
                !state_of(&src).is_dead(),
                "lexable balanced text declared dead: {src:?}"
            );
        }
    }
}
