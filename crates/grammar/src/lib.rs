//! Grammar-side support for speculative decoding: incremental Verilog
//! lexical viability plus candidate-tree pruning.
//!
//! # Viability-state design
//!
//! [`ViabilityState`] is a tiny `Copy` byte machine that answers one
//! question cheaply and incrementally: *can the byte stream emitted so
//! far still be extended into text the `verispec-verilog` lexer
//! accepts?* It is **not** a tokenizer — it never materialises tokens —
//! it only tracks the mode the hand-written lexer would be in mid-way
//! through the stream:
//!
//! ```text
//! Normal ──'/'──▶ AfterSlash ──'/'──▶ LineComment ──'\n'──▶ Normal
//!    │                │'*'──▶ BlockComment ──"*/"──▶ Normal
//!    │──'"'──▶ Str (── '\\' escapes ──) ──'"'──▶ Normal
//!    │──'`'──▶ Directive ──'\n'──▶ Normal
//!    │──'\\'─▶ EscapedIdentStart ──non-ws──▶ EscapedIdent ──ws──▶ Normal
//!    │──'\''─▶ BaseAwait ──[sS]?[bodh]──▶ BasedDigits ──digit*──▶ Normal
//!    └── everything else: stays Normal (every ASCII graphic byte
//!        starts or continues some valid token in the subset)
//! ```
//!
//! On top of the lexer modes the state keeps three nesting depths
//! (`()`, `[]`, `{}`) — a parser-level refinement: the lexer itself
//! happily tokenizes an unmatched `)` but no syntactically valid
//! continuation exists for it, so a closer at depth zero kills the
//! path. A state is **dead** when no byte suffix can make the stream
//! lexable (invalid based-literal digit, control byte, non-ASCII
//! outside comments/strings, unmatched closer); it is merely
//! *incomplete* — and still alive — inside an unterminated comment,
//! string, or based literal, because a suffix can always finish those.
//!
//! [`GrammarOracle`] lifts the byte machine to token ids: it caches
//! every vocabulary entry's exact decoded bytes (special ids
//! contribute nothing, mirroring `strip_specials`) so engines can ask
//! "is token `t` lexically viable after this state?" in O(token bytes).
//!
//! # Tree pruning
//!
//! [`dead_tail_prune`] is the *conservative* propose-time filter the
//! grammar engine applies to its candidate tree, and
//! [`syntax_keep_len`] is the post-hoc syntax-integrity rule the
//! baseline engines apply at commit time (keep through the last
//! `[FRAG]`, or everything when EOS landed). The two are linked by the
//! soundness argument the proptests in this crate pin:
//!
//! A candidate token at path position `p` can only survive the
//! post-hoc check if some `[FRAG]` exists at a position `>= p` in the
//! accepted span, or EOS was committed. Therefore truncating every
//! path *strictly after its last `[FRAG]`/EOS* (and dropping paths
//! with neither) can never remove a token the post-hoc check would
//! have committed — for **any** acceptance outcome. Deduplication and
//! strict-prefix elimination are additionally safe because acceptance
//! is deterministic per (prefix, position): a surviving extension
//! exercises every prefix it covers.

#![deny(missing_docs)]

use verispec_tokenizer::{BpeTokenizer, TokenId};

/// Lexer mode component of [`ViabilityState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Mode {
    /// Between tokens / inside an ordinary token.
    #[default]
    Normal,
    /// Saw `/`; next byte decides comment vs the `/` operator.
    AfterSlash,
    /// Inside `// …` (until newline).
    LineComment,
    /// Inside `/* … */`; `star` = previous byte was `*`.
    BlockComment {
        /// Whether the previous byte was `*` (a following `/` closes).
        star: bool,
    },
    /// Inside a string literal; `escape` = previous byte was `\`.
    Str {
        /// Whether the next byte is escaped.
        escape: bool,
    },
    /// Inside a compiler directive (`` ` `` … newline).
    Directive,
    /// Saw `'`; awaiting optional `s`/`S` then a base letter.
    BaseAwait {
        /// Whether the optional signed marker was already consumed.
        signed_seen: bool,
    },
    /// Inside a based literal's digit run.
    BasedDigits {
        /// Lower-cased base letter (`b`/`o`/`d`/`h`).
        base: u8,
        /// Whether at least one digit-run byte was consumed.
        any: bool,
    },
    /// Saw `\` in normal mode; an escaped identifier must follow.
    EscapedIdentStart,
    /// Inside `\escaped_identifier` (until whitespace).
    EscapedIdent,
}

/// Incremental lexical viability of a byte stream.
///
/// Fold bytes in with [`feed_byte`](Self::feed_byte); once
/// [`is_dead`](Self::is_dead) reports `true` no suffix can make the
/// stream lexable and the state stays dead forever. The state is a
/// pure fold: feeding a string in any chunking yields the same state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ViabilityState {
    mode: Mode,
    parens: u32,
    brackets: u32,
    braces: u32,
    dead: bool,
}

/// Whether `b` may appear in a based literal's digit run at all
/// (validity per base is checked separately).
fn digit_run_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'?'
}

/// Whether digit-run byte `b` is legal for (lower-cased) `base`.
fn digit_ok(base: u8, b: u8) -> bool {
    if b == b'_' || b == b'?' {
        return true;
    }
    let d = b.to_ascii_lowercase();
    match base {
        b'b' => matches!(d, b'0' | b'1' | b'x' | b'z'),
        b'o' => matches!(d, b'0'..=b'7' | b'x' | b'z'),
        b'd' => d.is_ascii_digit(),
        b'h' => d.is_ascii_hexdigit() || d == b'x' || d == b'z',
        _ => false,
    }
}

impl ViabilityState {
    /// A fresh state: normal mode, zero nesting, alive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether no byte suffix can make the stream lexable.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Current `(paren, bracket, brace)` nesting depths.
    pub fn depths(&self) -> (u32, u32, u32) {
        (self.parens, self.brackets, self.braces)
    }

    /// Folds one byte into the state. Dead states stay dead.
    pub fn feed_byte(&mut self, b: u8) {
        if self.dead {
            return;
        }
        // A mode may terminate its token and hand the byte back to
        // normal mode (e.g. `;` ending a based literal), hence the loop.
        loop {
            match self.mode {
                Mode::Normal => {
                    self.normal_byte(b);
                    return;
                }
                Mode::AfterSlash => match b {
                    b'/' => {
                        self.mode = Mode::LineComment;
                        return;
                    }
                    b'*' => {
                        self.mode = Mode::BlockComment { star: false };
                        return;
                    }
                    // The `/` was the division operator; reprocess.
                    _ => self.mode = Mode::Normal,
                },
                Mode::LineComment => {
                    if b == b'\n' {
                        self.mode = Mode::Normal;
                    }
                    return;
                }
                Mode::BlockComment { star } => {
                    if star && b == b'/' {
                        self.mode = Mode::Normal;
                    } else {
                        self.mode = Mode::BlockComment { star: b == b'*' };
                    }
                    return;
                }
                Mode::Str { escape } => {
                    self.mode = match (escape, b) {
                        (true, _) => Mode::Str { escape: false },
                        (false, b'"') => Mode::Normal,
                        (false, b'\\') => Mode::Str { escape: true },
                        (false, _) => Mode::Str { escape: false },
                    };
                    return;
                }
                Mode::Directive => {
                    if b == b'\n' {
                        self.mode = Mode::Normal;
                    }
                    return;
                }
                Mode::BaseAwait { signed_seen } => {
                    if !signed_seen && (b == b's' || b == b'S') {
                        self.mode = Mode::BaseAwait { signed_seen: true };
                    } else if matches!(b.to_ascii_lowercase(), b'b' | b'o' | b'd' | b'h') {
                        self.mode = Mode::BasedDigits {
                            base: b.to_ascii_lowercase(),
                            any: false,
                        };
                    } else {
                        self.dead = true; // invalid number base
                    }
                    return;
                }
                Mode::BasedDigits { base, any } => {
                    if digit_run_byte(b) {
                        if digit_ok(base, b) {
                            self.mode = Mode::BasedDigits { base, any: true };
                        } else {
                            self.dead = true; // digit not valid for base
                        }
                        return;
                    }
                    if !any {
                        self.dead = true; // based literal has no digits
                        return;
                    }
                    // Literal complete; reprocess the terminator.
                    self.mode = Mode::Normal;
                }
                Mode::EscapedIdentStart => {
                    if b.is_ascii_whitespace() {
                        self.dead = true; // empty escaped identifier
                    } else {
                        self.mode = Mode::EscapedIdent;
                    }
                    return;
                }
                Mode::EscapedIdent => {
                    if b.is_ascii_whitespace() {
                        self.mode = Mode::Normal;
                    }
                    return;
                }
            }
        }
    }

    /// One byte in normal (between-tokens) mode.
    fn normal_byte(&mut self, b: u8) {
        match b {
            b' ' | b'\t' | b'\n' | b'\r' | b'\x0c' => {}
            b'/' => self.mode = Mode::AfterSlash,
            b'`' => self.mode = Mode::Directive,
            b'"' => self.mode = Mode::Str { escape: false },
            b'\\' => self.mode = Mode::EscapedIdentStart,
            b'\'' => self.mode = Mode::BaseAwait { signed_seen: false },
            b'(' => self.parens += 1,
            b'[' => self.brackets += 1,
            b'{' => self.braces += 1,
            b')' => match self.parens.checked_sub(1) {
                Some(d) => self.parens = d,
                None => self.dead = true,
            },
            b']' => match self.brackets.checked_sub(1) {
                Some(d) => self.brackets = d,
                None => self.dead = true,
            },
            b'}' => match self.braces.checked_sub(1) {
                Some(d) => self.braces = d,
                None => self.dead = true,
            },
            // Every remaining ASCII graphic byte starts or continues a
            // valid token (identifier, number, operator, `$sysident`).
            0x21..=0x7e => {}
            // Control bytes and non-ASCII cannot begin a token.
            _ => self.dead = true,
        }
    }

    /// Folds a byte slice into the state.
    pub fn feed_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            if self.dead {
                return;
            }
            self.feed_byte(b);
        }
    }

    /// Folds a string's bytes into the state.
    pub fn feed_str(&mut self, text: &str) {
        self.feed_bytes(text.as_bytes());
    }
}

/// Token-level view of [`ViabilityState`]: caches every vocabulary
/// entry's exact decoded bytes so viability queries cost O(token
/// bytes), with special ids contributing nothing (they never reach
/// the plain-text stream — mirrors `strip_specials`/defragmentation).
#[derive(Debug, Clone)]
pub struct GrammarOracle {
    tokens: Vec<Vec<u8>>,
}

impl GrammarOracle {
    /// Builds an oracle over an explicit per-id byte table (ids that
    /// should contribute nothing — specials — use an empty entry).
    /// Primarily for tests; production callers use
    /// [`from_tokenizer`](Self::from_tokenizer).
    pub fn new(tokens: Vec<Vec<u8>>) -> Self {
        GrammarOracle { tokens }
    }

    /// Builds an oracle from a tokenizer's vocabulary.
    pub fn from_tokenizer(tok: &BpeTokenizer) -> Self {
        let tokens = (0..tok.vocab_size() as TokenId)
            .map(|id| {
                if tok.is_special(id) {
                    Vec::new()
                } else {
                    tok.token_bytes(id).expect("id < vocab_size").to_vec()
                }
            })
            .collect();
        GrammarOracle { tokens }
    }

    /// Number of ids the oracle knows byte contributions for.
    pub fn vocab_size(&self) -> usize {
        self.tokens.len()
    }

    /// The bytes `id` contributes to the plain-text stream (empty for
    /// specials and out-of-vocabulary ids).
    pub fn token_bytes(&self, id: TokenId) -> &[u8] {
        self.tokens.get(id as usize).map_or(&[], Vec::as_slice)
    }

    /// The state after appending `token` (specials and unknown ids
    /// leave the state unchanged).
    pub fn advance(&self, mut state: ViabilityState, token: TokenId) -> ViabilityState {
        state.feed_bytes(self.token_bytes(token));
        state
    }

    /// The state after appending a whole token sequence.
    pub fn advance_all(&self, mut state: ViabilityState, tokens: &[TokenId]) -> ViabilityState {
        for &t in tokens {
            if state.is_dead() {
                break;
            }
            state.feed_bytes(self.token_bytes(t));
        }
        state
    }

    /// Like [`advance_all`](Self::advance_all), but death-recovering: a
    /// byte that would kill the state instead restarts the fold from a
    /// fresh state *after* that byte. Real decode streams mix prose and
    /// code — instruction wrappers around a Verilog tail, or a sampled
    /// token the base-constraint scan could not steer — and a literal
    /// lexer fold dies at the first non-Verilog byte, permanently
    /// disabling the grammar layer for the request. Recovery re-arms it
    /// at every such boundary while remaining a pure function of the
    /// token stream (so parked/resumed sessions rebuild the exact same
    /// state). Nesting depths accumulated before a reset are dropped
    /// with it; that only ever *loosens* the filter, never rejects a
    /// continuation a fresh lexer would accept.
    pub fn advance_recovering(
        &self,
        mut state: ViabilityState,
        tokens: &[TokenId],
    ) -> ViabilityState {
        for &t in tokens {
            for &b in self.token_bytes(t) {
                state.feed_byte(b);
                if state.is_dead() {
                    state = ViabilityState::new();
                }
            }
        }
        state
    }

    /// Whether appending `token` leaves the stream lexically viable.
    /// Always `false` from an already-dead state; always `true` for
    /// specials from a live state (they contribute no bytes).
    pub fn viable(&self, state: ViabilityState, token: TokenId) -> bool {
        !self.advance(state, token).is_dead()
    }
}

/// What a propose-time prune did to a candidate tree, in candidate
/// tokens (path-length sums).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneRecord {
    /// Candidate tokens in the tree before pruning.
    pub considered: usize,
    /// Candidate tokens removed (`considered - surviving`).
    pub pruned: usize,
    /// Candidate tokens remaining after pruning.
    pub surviving: usize,
}

/// Number of leading tokens of a committed span the post-hoc
/// syntax-integrity check keeps: everything when EOS landed, otherwise
/// through the last `[FRAG]` (or just the base token when none).
///
/// This is the exact rule the syntax-aligned engines apply at commit
/// time; [`dead_tail_prune`] is provably conservative with respect to
/// it (see the crate docs).
pub fn syntax_keep_len(committed: &[TokenId], frag: TokenId, eos: TokenId) -> usize {
    if committed.contains(&eos) {
        committed.len()
    } else {
        committed
            .iter()
            .rposition(|&t| t == frag)
            .map(|p| p + 1)
            .unwrap_or(1)
            .min(committed.len())
    }
}

/// Prunes a candidate tree to the paths that can still contribute
/// committed tokens under the post-hoc syntax check.
///
/// Three reductions, each conservative (never removes a token the
/// post-hoc check could commit — the crate-level proptests pin this):
///
/// 1. **Dead-tail cut** — each path is truncated strictly after its
///    last `frag`/`eos`; a path containing neither is dropped whole
///    (no token of it can ever survive [`syntax_keep_len`]).
/// 2. **Dedup** — identical truncated paths keep only their first
///    occurrence (verification scores a (prefix, position) pair
///    identically however many paths spell it).
/// 3. **Strict-prefix drop** — a path that is a strict prefix of
///    another surviving path is dropped; the extension exercises every
///    acceptance decision the prefix would have.
///
/// Path order is otherwise preserved. Returns the token-count
/// accounting for telemetry and budget bookkeeping.
pub fn dead_tail_prune(paths: &mut Vec<Vec<TokenId>>, frag: TokenId, eos: TokenId) -> PruneRecord {
    let considered: usize = paths.iter().map(Vec::len).sum();
    for p in paths.iter_mut() {
        match p.iter().rposition(|&t| t == frag || t == eos) {
            Some(i) => p.truncate(i + 1),
            None => p.clear(),
        }
    }
    paths.retain(|p| !p.is_empty());
    // Dedup, keeping first occurrences (n <= 32, so O(n^2) is fine).
    let mut uniq: Vec<Vec<TokenId>> = Vec::with_capacity(paths.len());
    for p in paths.drain(..) {
        if !uniq.contains(&p) {
            uniq.push(p);
        }
    }
    // Drop strict prefixes of other (unique) paths: the maximal
    // extension of any prefix chain always survives this filter.
    *paths = uniq
        .iter()
        .filter(|p| !uniq.iter().any(|q| q.len() > p.len() && q.starts_with(p)))
        .cloned()
        .collect();
    let surviving: usize = paths.iter().map(Vec::len).sum();
    PruneRecord {
        considered,
        pruned: considered - surviving,
        surviving,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verispec_tokenizer::special;

    fn state_of(text: &str) -> ViabilityState {
        let mut s = ViabilityState::new();
        s.feed_str(text);
        s
    }

    #[test]
    fn valid_verilog_prefixes_stay_alive() {
        let src = "module m(input a, output y);\n\
                   // a comment with anything: \u{00e9}\u{00df}\n\
                   /* block * comment */\n\
                   `timescale 1ns/1ps\n\
                   wire [3:0] w = 4'b10_1z;\n\
                   assign y = (a == 1'sd1) ? w[0] : ~a;\n\
                   $display(\"esc \\\" quote\");\n\
                   \\bus[0] ;\n\
                   endmodule\n";
        let mut s = ViabilityState::new();
        for (i, &b) in src.as_bytes().iter().enumerate() {
            s.feed_byte(b);
            assert!(!s.is_dead(), "dead after byte {i} ({:?})", &src[..=i]);
        }
        assert_eq!(s.depths(), (0, 0, 0));
    }

    #[test]
    fn dead_inputs_die_and_stay_dead() {
        for bad in [
            ")",           // unmatched closer
            "a ]",         // unmatched bracket
            "4'q1010",     // invalid base
            "2'b012",      // digit not valid for base b
            "8'o9",        // digit not valid for base o
            "3'd_a",       // 'a' invalid for decimal base
            "'';",         // apostrophe then apostrophe: no base
            "4'b;",        // based literal with no digits
            "\\ x",        // empty escaped identifier
            "caf\u{00e9}", // non-ASCII in normal mode
            "a \x07 b",    // control byte in normal mode
            "a \x0b b",    // vertical tab is not lexer whitespace
        ] {
            let mut s = state_of(bad);
            assert!(s.is_dead(), "expected dead: {bad:?}");
            s.feed_str(" module m;");
            assert!(s.is_dead(), "dead state must stay dead: {bad:?}");
        }
    }

    #[test]
    fn incomplete_constructs_are_alive_not_dead() {
        for partial in [
            "/",            // could become a comment or stay division
            "// open line", // newline can still arrive
            "/* open",      // can still close
            "\"open str",   // can still close
            "\"esc \\",     // escape awaiting its byte
            "4'",           // base letter can still arrive
            "4'h",          // digits can still arrive
            "8's",          // base letter after signed marker
            "(a[{",         // openers just deepen
            "\\partial",    // escaped ident awaiting whitespace
            "`timescal",    // directive awaiting newline
        ] {
            assert!(!state_of(partial).is_dead(), "expected alive: {partial:?}");
        }
    }

    #[test]
    fn chunked_feeding_matches_whole_feeding() {
        let src = "assign y = 4'hF + (a << 2); // t\n\"s\\\"t\" /*c*/ `d\n";
        let whole = state_of(src);
        for split in 0..=src.len() {
            if !src.is_char_boundary(split) {
                continue;
            }
            let mut s = ViabilityState::new();
            s.feed_str(&src[..split]);
            s.feed_str(&src[split..]);
            assert_eq!(s, whole, "split at {split}");
        }
    }

    #[test]
    fn number_terminator_is_reprocessed_in_normal_mode() {
        // `)` terminating a based literal must still count as a closer.
        assert!(!state_of("(4'b01)").is_dead());
        assert_eq!(state_of("(4'b01)").depths(), (0, 0, 0));
        assert!(state_of("4'b01)").is_dead());
    }

    #[test]
    fn oracle_specials_are_transparent_and_viability_matches_bytes() {
        let tok = BpeTokenizer::byte_level();
        let oracle = GrammarOracle::from_tokenizer(&tok);
        assert_eq!(oracle.vocab_size(), tok.vocab_size());
        let s = ViabilityState::new();
        for sp in [
            special::PAD,
            special::BOS,
            special::EOS,
            special::FRAG,
            special::IGNORE,
        ] {
            assert_eq!(oracle.token_bytes(sp), b"");
            assert_eq!(oracle.advance(s, sp), s);
            assert!(oracle.viable(s, sp));
        }
        // Out-of-vocab ids are also transparent rather than a panic.
        assert_eq!(oracle.advance(s, 1_000_000), s);
        // Byte-level: `)` at depth zero is not viable, `(` is.
        let open = verispec_tokenizer::BYTE_BASE + b'(' as TokenId;
        let close = verispec_tokenizer::BYTE_BASE + b')' as TokenId;
        assert!(oracle.viable(s, open));
        assert!(!oracle.viable(s, close));
        let after_open = oracle.advance(s, open);
        assert!(oracle.viable(after_open, close));
        // advance_all folds a whole sequence.
        let seq = [open, close, special::FRAG];
        let end = oracle.advance_all(s, &seq);
        assert!(!end.is_dead());
        assert_eq!(end.depths(), (0, 0, 0));
    }

    #[test]
    fn keep_len_matches_posthoc_rule() {
        let (f, e) = (special::FRAG, special::EOS);
        assert_eq!(syntax_keep_len(&[9, 8, f, 7], f, e), 3);
        assert_eq!(syntax_keep_len(&[9, f, 8, f], f, e), 4);
        assert_eq!(syntax_keep_len(&[9, 8, 7], f, e), 1);
        assert_eq!(syntax_keep_len(&[9, 8, e], f, e), 3);
        assert_eq!(syntax_keep_len(&[9, e, 8], f, e), 3);
        assert_eq!(syntax_keep_len(&[], f, e), 0);
    }

    #[test]
    fn prune_cuts_dead_tails_dedups_and_drops_prefixes() {
        let (f, e) = (special::FRAG, special::EOS);
        let mut paths = vec![
            vec![10, f, 11, 12], // tail after FRAG cut
            vec![10, f],         // strict prefix of nothing after cut — dup of ^
            vec![13, 14],        // no FRAG/EOS: dropped whole
            vec![10, f, 11, f],  // extension: survives, also covers [10, f]
            vec![15, e, 16],     // EOS keeps through EOS
        ];
        let rec = dead_tail_prune(&mut paths, f, e);
        assert_eq!(paths, vec![vec![10, f, 11, f], vec![15, e]]);
        assert_eq!(rec.considered, 4 + 2 + 2 + 4 + 3);
        assert_eq!(rec.surviving, 4 + 2);
        assert_eq!(rec.pruned, rec.considered - rec.surviving);
    }
}
