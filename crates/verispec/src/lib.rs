//! # VeriSpec
//!
//! A from-scratch Rust reproduction of *"Speculative Decoding for
//! Verilog: Speed and Quality, All in One"* (DAC 2025): syntax-aligned
//! MEDUSA-style speculative decoding for Verilog code generation,
//! together with every substrate the paper depends on — a Verilog
//! front-end, a trainable neural LM, a behavioral simulator, a synthetic
//! corpus pipeline, and an evaluation harness that regenerates the
//! paper's tables and figures.
//!
//! This facade crate re-exports the workspace members:
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`verilog`] | `verispec-verilog` | lexer, parser, AST, `[FRAG]` fragmenter |
//! | [`tokenizer`] | `verispec-tokenizer` | byte-level BPE with special tokens |
//! | [`lm`] | `verispec-lm` | MLP LM with Medusa heads, n-gram LM, GPU cost model |
//! | [`core`] | `verispec-core` | syntax-enriched labels, acceptance, decoding engines |
//! | [`data`] | `verispec-data` | synthetic corpus with golden models |
//! | [`serve`] | `verispec-serve` | continuous-batching multi-request serving engine |
//! | [`load`] | `verispec-load` | open-loop load generation + latency-percentile telemetry |
//! | [`sim`] | `verispec-sim` | behavioral simulator + testbench harness |
//! | [`eval`] | `verispec-eval` | benchmarks, judge, experiment runners |
//!
//! # Quickstart
//!
//! ```
//! use verispec::eval::{Pipeline, PipelineConfig, ModelScale};
//! use verispec::core::TrainMethod;
//!
//! // Small end-to-end smoke: corpus -> tokenizer -> train -> decode.
//! let pipe = Pipeline::build(PipelineConfig {
//!     corpus_size: 32, vocab: 350, n_heads: 2, epochs: 1,
//!     ..Default::default()
//! });
//! let model = pipe.model_for(ModelScale::Small, TrainMethod::Ntp, (1, 1));
//! assert_eq!(model.config().vocab, pipe.tokenizer.vocab_size());
//! ```

pub use verispec_core as core;
pub use verispec_data as data;
pub use verispec_eval as eval;
pub use verispec_lm as lm;
pub use verispec_load as load;
pub use verispec_serve as serve;
pub use verispec_sim as sim;
pub use verispec_tokenizer as tokenizer;
pub use verispec_verilog as verilog;
