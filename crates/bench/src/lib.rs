//! Shared helpers for the VeriSpec benchmark harness binaries.
//!
//! Each binary regenerates one paper artifact (see DESIGN.md §4):
//!
//! | binary | artifact |
//! |--------|----------|
//! | `table1_quality` | Table I — quality grid |
//! | `table2_speed`   | Table II — tokens/s and speedup |
//! | `fig1_tradeoff`  | Fig. 1 — speed vs quality scatter |
//! | `fig5_steps`     | Fig. 5 — decode traces |
//! | `fig6_datasize`  | Fig. 6 — pass@5 vs data size |
//!
//! All binaries accept `--scale quick|full` (default `full`) and write a
//! JSON artifact next to their stdout table when `--json <path>` is
//! given.

use verispec_eval::Scale;

/// Parses the common `--scale` / `--json` CLI arguments.
pub struct HarnessArgs {
    /// Experiment scale.
    pub scale: Scale,
    /// Optional JSON artifact path.
    pub json: Option<String>,
}

impl HarnessArgs {
    /// Parses `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown arguments.
    pub fn parse() -> HarnessArgs {
        let mut scale = Scale::full();
        let mut json = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    let v = args.next().unwrap_or_default();
                    scale = match v.as_str() {
                        "quick" => Scale::quick(),
                        "full" => Scale::full(),
                        other => panic!("unknown scale `{other}` (use quick|full)"),
                    };
                }
                "--json" => json = args.next(),
                "--samples" => {
                    scale.n_samples = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--samples N");
                }
                "--problems" => {
                    scale.problem_limit = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--problems N"),
                    );
                }
                "--help" | "-h" => {
                    println!("usage: <bin> [--scale quick|full] [--json PATH]");
                    std::process::exit(0);
                }
                other => panic!("unknown argument `{other}`"),
            }
        }
        HarnessArgs { scale, json }
    }

    /// Writes a serializable artifact to the `--json` path, if given.
    pub fn write_json<T: serde::Serialize>(&self, value: &T) {
        if let Some(path) = &self.json {
            let body = serde_json::to_string_pretty(value).expect("serialize artifact");
            std::fs::write(path, body).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("wrote {path}");
        }
    }
}
