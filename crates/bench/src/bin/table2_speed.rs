//! Regenerates **Table II**: simulated tokens/second and speedup over
//! the NTP baseline for both model scales (greedy + temperature-0.8
//! sampling over the speed prompt set, Eqs. 3–4).

use verispec_bench::HarnessArgs;
use verispec_eval::{render_table2, run_table2, Pipeline};

fn main() {
    let args = HarnessArgs::parse();
    eprintln!("building pipeline...");
    let pipe = Pipeline::build(args.scale.pipeline);
    eprintln!(
        "measuring speed over {} prompts...",
        args.scale.speed_prompt_count
    );
    let rows = run_table2(&args.scale, &pipe);
    println!("{}", render_table2(&rows));
    println!("paper reference (Table II): CodeLlama 420.13/294.99/83.13 tok/s (5.05x/3.55x/1x); CodeT5p 243.70/106.33/91.65 (2.66x/1.16x/1x)");
    args.write_json(&rows);
}
