//! Regenerates **Table I**: pass@k and Pass Rate for Function and Syntax
//! across {Ours, Medusa, NTP} × {Large, Small} × data fractions ×
//! {RTLLM-sim, VGen-sim}.

use verispec_bench::HarnessArgs;
use verispec_eval::{fig6_from_cells, render_table1, run_table1, Pipeline};

fn main() {
    let args = HarnessArgs::parse();
    eprintln!("building pipeline (corpus + tokenizer + datasets)...");
    let pipe = Pipeline::build(args.scale.pipeline);
    eprintln!(
        "corpus: {} items; training/evaluating {} cells...",
        pipe.corpus.stats.retained,
        2 * args.scale.data_fractions.len() * 3
    );
    let cells = run_table1(&args.scale, &pipe);
    println!("{}", render_table1(&cells));

    // Fig. 6 falls out of the same cells; print it here so a single full
    // run covers both artifacts.
    println!("\nFig. 6 series (Small model, pass@5 vs data fraction):");
    for p in fig6_from_cells(&cells) {
        println!(
            "  {:<8} {:<10} {}/{}  func {:>6.2}%  syntax {:>6.2}%",
            p.method, p.benchmark, p.fraction.0, p.fraction.1, p.function_pass5, p.syntax_pass5
        );
    }
    args.write_json(&cells);
}
