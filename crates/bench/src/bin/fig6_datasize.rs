//! Regenerates **Fig. 6**: pass@5 (Function and Syntax) vs training-data
//! size for the Small (CodeT5p-like) architecture on both benchmarks.

use verispec_bench::HarnessArgs;
use verispec_eval::{fig6_from_cells, run_table1, Pipeline};

fn main() {
    let args = HarnessArgs::parse();
    eprintln!("building pipeline...");
    let pipe = Pipeline::build(args.scale.pipeline);
    let cells = run_table1(&args.scale, &pipe);
    let points = fig6_from_cells(&cells);
    println!("Fig. 6 — pass@5 vs data size (Small model)");
    println!("benchmark   fraction   metric     Ours    Medusa     NTP");
    for benchmark in ["RTLLM-sim", "VGen-sim"] {
        let mut fractions: Vec<(usize, usize)> = points
            .iter()
            .filter(|p| p.benchmark == benchmark)
            .map(|p| p.fraction)
            .collect();
        fractions.sort_by(|a, b| (a.0 * b.1).cmp(&(b.0 * a.1)));
        fractions.dedup();
        for fraction in fractions {
            for (label, f) in [("function", true), ("syntax", false)] {
                let val = |method: &str| -> f64 {
                    points
                        .iter()
                        .find(|p| {
                            p.benchmark == benchmark && p.fraction == fraction && p.method == method
                        })
                        .map(|p| if f { p.function_pass5 } else { p.syntax_pass5 })
                        .unwrap_or(f64::NAN)
                };
                println!(
                    "{:<11} {:>3}/{:<3}    {:<8} {:>7.2} {:>9.2} {:>7.2}",
                    benchmark,
                    fraction.0,
                    fraction.1,
                    label,
                    val("Ours"),
                    val("Medusa"),
                    val("NTP")
                );
            }
        }
    }
    args.write_json(&points);
}
