//! Developer probe: prints raw generations and training losses for the
//! current pipeline configuration. Not part of the paper harness.
use verispec_core::{DecodeConfig, TrainMethod};
use verispec_eval::*;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scale = if full { Scale::full() } else { Scale::quick() };
    let pipe = Pipeline::build(scale.pipeline);
    eprintln!(
        "corpus retained {} | mean plain seq len {}",
        pipe.corpus.stats.retained,
        pipe.plain_sequences.iter().map(Vec::len).sum::<usize>()
            / pipe.plain_sequences.len().max(1)
    );
    let bench = rtllm_sim();
    for problem in [&bench.problems[0], &bench.problems[18]] {
        println!("#### prompt: {}", problem.module.description);
        for method in [TrainMethod::Ours, TrainMethod::Medusa, TrainMethod::Ntp] {
            let model = pipe.model_for(ModelScale::Large, method, (1, 1));
            let cfg = DecodeConfig {
                max_tokens: token_budget(&pipe.tokenizer, problem, method),
                ..Default::default()
            };
            let g = generate(
                &model,
                &pipe.tokenizer,
                problem,
                method,
                &cfg,
                &ModelScale::Large.cost_model(),
            );
            let verdict = judge(&g.code, problem, 7);
            println!(
                "=== {} steps={} tokens={} t/step={:.2} verdict={:?}",
                method.name(),
                g.output.steps,
                g.output.tokens.len(),
                g.output.clock.tokens_per_step(),
                verdict
            );
            println!("{}", &g.code.chars().take(420).collect::<String>());
            println!();
        }
    }
}
