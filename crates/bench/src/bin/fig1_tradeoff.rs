//! Regenerates **Fig. 1**: the speed/quality scatter (tokens/s vs
//! functional Pass Rate on RTLLM-sim) for the Large model.

use verispec_bench::HarnessArgs;
use verispec_eval::{run_fig1, Pipeline};

fn main() {
    let args = HarnessArgs::parse();
    eprintln!("building pipeline...");
    let pipe = Pipeline::build(args.scale.pipeline);
    let points = run_fig1(&args.scale, &pipe);
    println!("Fig. 1 — speed vs quality (Large model, RTLLM-sim)");
    println!("method    tokens/s    func-pass-rate(%)   syntax-pass-rate(%)");
    for p in &points {
        println!(
            "{:<8} {:>9.2}    {:>13.2}    {:>15.2}",
            p.method, p.speed, p.pass_rate, p.syntax_pass_rate
        );
    }
    // ASCII scatter on the syntax axis (functional rates are depressed at
    // this substrate scale; see EXPERIMENTS.md).
    let max_speed = points.iter().map(|p| p.speed).fold(1.0, f64::max);
    println!("\n  syntax pass-rate ^");
    for row in (0..=10).rev() {
        let lo = row as f64 * 10.0;
        let mut line = format!("  {:>7.0}% |", lo);
        for col in 0..40 {
            let s_lo = col as f64 / 40.0 * max_speed;
            let s_hi = (col + 1) as f64 / 40.0 * max_speed;
            let mark = points.iter().find(|p| {
                p.speed >= s_lo
                    && p.speed < s_hi
                    && p.syntax_pass_rate >= lo
                    && p.syntax_pass_rate < lo + 10.0
            });
            line.push(match mark.map(|p| p.method) {
                Some("Ours") => 'O',
                Some("Medusa") => 'M',
                Some("NTP") => 'N',
                _ => ' ',
            });
        }
        println!("{line}");
    }
    println!(
        "           +{} -> tokens/s (max {max_speed:.0})",
        "-".repeat(40)
    );
    args.write_json(&points);
}
