//! Capacity ablation (A6): tests the EXPERIMENTS.md Table-I analysis —
//! that `[FRAG]`-tagged training taxes small models' capacity — by
//! sweeping the trunk width and measuring base-model NLL on held-out
//! text plus VGen-sim syntax quality for Ours vs NTP.
//!
//! If the analysis is right, the Ours-vs-NTP syntax gap should *narrow*
//! as capacity grows.

use verispec_bench::HarnessArgs;
use verispec_core::{train, TrainConfig, TrainMethod};
use verispec_eval::experiments::score_benchmark;
use verispec_eval::{vgen_sim, ModelScale, Pipeline};
use verispec_lm::MlpLmConfig;

fn main() {
    let mut args = HarnessArgs::parse();
    args.scale.n_samples = args.scale.n_samples.min(12);
    args.scale.problem_limit = Some(args.scale.problem_limit.unwrap_or(17).min(17));
    eprintln!("building pipeline...");
    let pipe = Pipeline::build(args.scale.pipeline);
    let bench = vgen_sim();

    println!("Capacity ablation — VGen-sim syntax pass@5 and held-out NLL vs trunk width");
    println!("d_hidden   method   nll(plain|tagged)   syntax pass@5   syntax PassRate");
    for d_hidden in [32usize, 64, 96] {
        for method in [TrainMethod::Ours, TrainMethod::Ntp] {
            let n_heads = if method == TrainMethod::Ntp {
                0
            } else {
                pipe.config.n_heads
            };
            let lm_cfg = MlpLmConfig {
                vocab: pipe.tokenizer.vocab_size(),
                d_emb: 12,
                d_hidden,
                context: 40,
                n_heads,
                seed: pipe.config.seed,
            };
            let sequences = pipe.sequences_for(method, (1, 1));
            // Hold out the last 32 sequences for NLL.
            let split = sequences.len().saturating_sub(32);
            let (train_seqs, held) = sequences.split_at(split);
            let tc = TrainConfig {
                epochs: 2,
                seed: pipe.config.seed,
                ..TrainConfig::paper_defaults(method)
            };
            let (model, _) = train(lm_cfg, train_seqs, &tc);
            let nll: f32 = held.iter().map(|s| model.nll(s)).sum::<f32>() / held.len() as f32;
            let (_, syntax) = score_benchmark(
                &pipe,
                &model,
                ModelScale::Large,
                method,
                &bench,
                &args.scale,
            );
            println!(
                "{:<10} {:<8} {:<19.3} {:<15.2} {:<15.2}",
                d_hidden,
                method.name(),
                nll,
                syntax.pass_at_5,
                syntax.pass_rate
            );
        }
    }
    println!("\ninterpretation: if the Ours-vs-NTP syntax gap narrows as d_hidden grows,");
    println!("the Table-I inversion is a capacity effect, as EXPERIMENTS.md argues.");
}
