//! Regenerates **Fig. 5**: greedy decode traces of the `data_register`
//! example under Ours / Medusa / NTP, showing steps-to-completion and
//! fragment integrity per step.

use verispec_bench::HarnessArgs;
use verispec_eval::{run_fig5, ModelScale, Pipeline};

fn main() {
    let args = HarnessArgs::parse();
    eprintln!("building pipeline...");
    let pipe = Pipeline::build(args.scale.pipeline);
    let traces = run_fig5(&pipe, ModelScale::Large);
    println!("Fig. 5 — decoding the data_register example (greedy)");
    println!("method    steps   tokens   tokens/step   frag-complete");
    for t in &traces {
        println!(
            "{:<8} {:>6} {:>8} {:>12.2} {:>14.0}%",
            t.method,
            t.steps,
            t.tokens,
            t.tokens as f64 / t.steps.max(1) as f64,
            100.0 * t.fragment_complete_ratio
        );
    }
    println!("\nper-step commits (Ours):");
    if let Some(t) = traces.iter().find(|t| t.method == "Ours") {
        for (i, s) in t.step_texts.iter().enumerate() {
            println!("  step {:>3}: {:?}", i + 1, s);
        }
    }
    println!("\npaper reference: Ours 14 steps, Medusa 24 steps, NTP 77 steps");
    args.write_json(&traces);
}
