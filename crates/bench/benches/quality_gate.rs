//! Simulation-backed quality gate bench: NTP, Medusa-tree, Ours-tree,
//! and Grammar-tree generate completions at equal candidate budget;
//! every sample is staged through parse → elaborate → simulate against
//! the benchmark golden models, and each engine's realized acceptance
//! rate is recorded alongside its semantic rates.
//!
//! Emits `BENCH_quality.json` at the workspace root; `bench_guard`
//! structurally gates it (all four engines present, rates finite in
//! [0, 1], and the grammar engine no worse than the unconstrained tree
//! on parse/elaborate while strictly better on realized acceptance).
//!
//! `--test` runs a shrunk sample grid (CI smoke) but still emits the
//! artifact.

use std::path::PathBuf;
use verispec_eval::{
    render_quality_gate, run_quality_gate, ModelScale, Pipeline, PipelineConfig, Scale,
};

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    // A better-trained pipeline than the speed benches use: semantic
    // rates are only informative once the model emits near-parseable
    // Verilog, which takes the full corpus and more epochs. Smoke mode
    // shrinks the sample grid but keeps the same pipeline, so a
    // regenerated artifact always satisfies the same guard gates.
    let pipeline = PipelineConfig {
        corpus_size: 640,
        vocab: 640,
        n_heads: 6,
        epochs: 4,
        ..Default::default()
    };
    let (n_samples, problem_limit) = if test_mode {
        (2, Some(4))
    } else {
        (3, Some(12))
    };
    let scale = Scale {
        pipeline,
        n_samples,
        problem_limit,
        // Near-greedy with mild diversity: semantic rates collapse to
        // zero for every engine at high temperature, which would leave
        // nothing for the quality gate to discriminate.
        temperatures: vec![0.05, 0.2, 0.4],
        ..Scale::quick()
    };
    let pipe = Pipeline::build(scale.pipeline);
    let rows = run_quality_gate(&scale, &pipe, ModelScale::Small);
    print!("{}", render_quality_gate(&rows));

    let path: PathBuf = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_quality.json");
    match serde_json::to_string_pretty(&rows) {
        Ok(body) => match std::fs::write(&path, body) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        },
        Err(e) => eprintln!("could not serialize BENCH_quality.json: {e}"),
    }
}
