//! Ablation A1: the typical-acceptance criterion (Eq. 1). Sweeps ε and δ
//! and benchmarks the acceptance computation itself, plus reports (via
//! stderr once) the mean accepted-prefix length each setting yields on a
//! trained model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::OnceLock;
use verispec_core::accept::TypicalAcceptance;
use verispec_core::{decode_speculative, DecodeConfig, TrainMethod};
use verispec_eval::{rtllm_sim, ModelScale, Pipeline, PipelineConfig};
use verispec_lm::matrix::softmax;
use verispec_lm::Sampling;

fn pipeline() -> &'static Pipeline {
    static PIPE: OnceLock<Pipeline> = OnceLock::new();
    PIPE.get_or_init(|| {
        Pipeline::build(PipelineConfig {
            corpus_size: 96,
            vocab: 420,
            n_heads: 6,
            epochs: 1,
            ..Default::default()
        })
    })
}

fn bench_accept(c: &mut Criterion) {
    // Microbenchmark: criterion evaluation on a realistic distribution.
    let logits: Vec<f32> = (0..420).map(|i| ((i * 37) % 100) as f32 / 25.0).collect();
    let probs = softmax(&logits);
    let mut group = c.benchmark_group("typical_acceptance");
    for (eps, delta) in [(0.01f32, 0.1f32), (0.09, 0.3), (0.3, 0.6)] {
        let acc = TypicalAcceptance {
            epsilon: eps,
            delta,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("eps{eps}_delta{delta}")),
            &acc,
            |b, acc| b.iter(|| (0..32u32).filter(|&t| acc.accepts(&probs, t)).count()),
        );
    }
    group.finish();

    // One-shot report: accepted tokens/step under each setting.
    let pipe = pipeline();
    let model = pipe.model_for(ModelScale::Small, TrainMethod::Ours, (1, 1));
    let bench = rtllm_sim();
    let prompt = pipe.tokenizer.encode(&bench.problems[0].prompt_tagged());
    let cost = ModelScale::Small.cost_model();
    eprintln!("\nacceptance ablation (accepted tokens/step, sampled decode):");
    for (eps, delta) in [(0.01f32, 0.1f32), (0.09, 0.3), (0.3, 0.6)] {
        let cfg = DecodeConfig {
            max_tokens: 96,
            sampling: Sampling::temperature(0.8),
            acceptance: TypicalAcceptance {
                epsilon: eps,
                delta,
            },
            syntax_aligned: true,
            seed: 3,
            ..Default::default()
        };
        let out = decode_speculative(&model, &prompt, &cfg, &cost);
        eprintln!(
            "  eps={eps:<5} delta={delta:<4}  tokens/step={:.2}",
            out.clock.tokens_per_step()
        );
    }
}

criterion_group!(benches, bench_accept);
criterion_main!(benches);
