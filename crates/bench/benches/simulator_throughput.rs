//! Substrate bench: behavioral simulator throughput — cycles/second on a
//! clocked counter and vectors/second on a combinational ALU (the
//! iverilog-substitute's cost inside the judge).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use verispec_sim::{elaborate, Sim};

fn bench_sim(c: &mut Criterion) {
    let counter = verispec_verilog::parse(
        "module counter(input clk, rst, en, output reg [15:0] q);
           always @(posedge clk) if (rst) q <= 0; else if (en) q <= q + 1;
         endmodule",
    )
    .expect("parse");
    let counter_design = elaborate(&counter.modules[0]).expect("elab");

    let alu = verispec_verilog::parse(
        "module alu(input [2:0] op, input [7:0] a, b, output reg [7:0] y, output zero);
           assign zero = (y == 8'd0);
           always @(*) case (op)
             3'b000: y = a + b;
             3'b001: y = a - b;
             3'b010: y = a & b;
             3'b011: y = a | b;
             3'b100: y = a ^ b;
             default: y = ~a;
           endcase
         endmodule",
    )
    .expect("parse");
    let alu_design = elaborate(&alu.modules[0]).expect("elab");

    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("counter_1000_cycles", |b| {
        b.iter(|| {
            let mut sim = Sim::new(&counter_design).expect("sim");
            sim.set("rst", 0).expect("set");
            sim.set("en", 1).expect("set");
            for _ in 0..1000 {
                sim.clock_pulse("clk").expect("clk");
            }
            sim.get("q").expect("q")
        })
    });
    group.bench_function("alu_1000_vectors", |b| {
        b.iter(|| {
            let mut sim = Sim::new(&alu_design).expect("sim");
            let mut acc = 0u64;
            for i in 0..1000u64 {
                sim.set("op", i % 6).expect("set");
                sim.set("a", i & 0xFF).expect("set");
                sim.set("b", (i * 7) & 0xFF).expect("set");
                acc ^= sim.get("y").expect("y");
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
