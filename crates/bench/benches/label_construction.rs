//! Ablation A3: throughput of syntax-enriched label construction —
//! the paper's parallel algorithm (Fig. 4, right panel) vs the naive
//! per-column reference, across sequence lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use verispec_core::LabelGrid;
use verispec_lm::TokenId;
use verispec_tokenizer::special;

fn synthetic_tokens(len: usize) -> Vec<TokenId> {
    // FRAG roughly every 3 tokens, like fragmented Verilog.
    let mut v = Vec::with_capacity(len);
    let mut i = 0u32;
    while v.len() < len {
        v.push(20 + (i % 37));
        if i.is_multiple_of(3) {
            v.push(special::FRAG);
        }
        i += 1;
    }
    v.truncate(len);
    v
}

fn bench_labels(c: &mut Criterion) {
    let mut group = c.benchmark_group("label_construction");
    for len in [256usize, 1024, 4096] {
        let tokens = synthetic_tokens(len);
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::new("naive", len), &tokens, |b, t| {
            b.iter(|| LabelGrid::syntax_enriched(t, 10))
        });
        group.bench_with_input(BenchmarkId::new("parallel", len), &tokens, |b, t| {
            b.iter(|| LabelGrid::syntax_enriched_parallel(t, 10))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_labels);
criterion_main!(benches);
