//! Criterion bench for Table II's underlying machinery: wall-clock
//! decode throughput of the three engines on a trained model (the
//! simulated-GPU speeds come from the harness binaries; this measures
//! the real Rust implementation).
//!
//! Each engine is measured twice — through the model's cached
//! [`verispec_lm::DecodeSession`] and through the stateless shim — and
//! the run emits `BENCH_decode.json` at the workspace root with
//! tokens/sec for both paths, so the perf trajectory of the session
//! layer is tracked from PR 1 onward.

use criterion::Criterion;
use std::path::PathBuf;
use std::sync::OnceLock;
use verispec_core::{DecodeConfig, TrainMethod};
use verispec_eval::{
    generate, generate_stateless, render_session_bench, rtllm_sim, run_session_bench, ModelScale,
    Pipeline, PipelineConfig, Scale,
};
use verispec_lm::MlpLm;

fn pipeline() -> &'static Pipeline {
    static PIPE: OnceLock<Pipeline> = OnceLock::new();
    PIPE.get_or_init(|| {
        Pipeline::build(PipelineConfig {
            corpus_size: 96,
            vocab: 420,
            n_heads: 6,
            epochs: 1,
            ..Default::default()
        })
    })
}

fn model(method: TrainMethod) -> MlpLm {
    pipeline().model_for(ModelScale::Small, method, (1, 1))
}

fn bench_decode(c: &mut Criterion) {
    let pipe = pipeline();
    let bench = rtllm_sim();
    let problem = &bench.problems[0];
    let cost = ModelScale::Small.cost_model();
    for (group_name, stateless) in [
        ("decode_speed/session", false),
        ("decode_speed/stateless", true),
    ] {
        let mut group = c.benchmark_group(group_name);
        group.sample_size(10);
        for method in [TrainMethod::Ntp, TrainMethod::Medusa, TrainMethod::Ours] {
            let m = model(method);
            group.bench_function(method.name(), |b| {
                b.iter(|| {
                    let cfg = DecodeConfig {
                        max_tokens: 64,
                        ..Default::default()
                    };
                    if stateless {
                        generate_stateless(&m, &pipe.tokenizer, problem, method, &cfg, &cost)
                    } else {
                        generate(&m, &pipe.tokenizer, problem, method, &cfg, &cost)
                    }
                })
            });
        }
        group.finish();
    }
}

/// Writes `BENCH_decode.json` at the workspace root: tokens/sec of the
/// session path vs. the stateless shim for each method, measured over
/// the speed-prompt set with identical-output verification.
fn emit_bench_artifact() {
    let pipe = pipeline();
    let scale = Scale {
        speed_prompt_count: 6,
        ..Scale::quick()
    };
    let rows = run_session_bench(&scale, pipe, ModelScale::Small);
    print!("{}", render_session_bench(&rows));
    let path: PathBuf = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_decode.json");
    match serde_json::to_string_pretty(&rows) {
        Ok(body) => match std::fs::write(&path, body) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        },
        Err(e) => eprintln!("could not serialize BENCH_decode.json: {e}"),
    }
}

fn main() {
    let mut c = Criterion::default();
    bench_decode(&mut c);
    emit_bench_artifact();
}
