//! Criterion bench for Table II's underlying machinery: wall-clock
//! decode throughput of the three engines on a trained model (the
//! simulated-GPU speeds come from the harness binaries; this measures
//! the real Rust implementation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::OnceLock;
use verispec_core::{DecodeConfig, TrainMethod};
use verispec_eval::{generate, rtllm_sim, ModelScale, Pipeline, PipelineConfig};
use verispec_lm::MlpLm;

fn pipeline() -> &'static Pipeline {
    static PIPE: OnceLock<Pipeline> = OnceLock::new();
    PIPE.get_or_init(|| {
        Pipeline::build(PipelineConfig {
            corpus_size: 96,
            vocab: 420,
            n_heads: 6,
            epochs: 1,
            ..Default::default()
        })
    })
}

fn model(method: TrainMethod) -> MlpLm {
    pipeline().model_for(ModelScale::Small, method, (1, 1))
}

fn bench_decode(c: &mut Criterion) {
    let pipe = pipeline();
    let bench = rtllm_sim();
    let problem = &bench.problems[0];
    let cost = ModelScale::Small.cost_model();
    let mut group = c.benchmark_group("decode_speed");
    group.sample_size(10);
    for method in [TrainMethod::Ntp, TrainMethod::Medusa, TrainMethod::Ours] {
        let m = model(method);
        group.bench_with_input(
            BenchmarkId::from_parameter(method.name()),
            &method,
            |b, &method| {
                b.iter(|| {
                    let cfg = DecodeConfig { max_tokens: 64, ..Default::default() };
                    generate(&m, &pipe.tokenizer, problem, method, &cfg, &cost)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_decode);
criterion_main!(benches);
