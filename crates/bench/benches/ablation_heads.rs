//! Ablation A2: speedup vs number of Medusa heads. The paper argues its
//! dynamic labels "increase the number of effective heads"; this bench
//! trains syntax-aligned models with 2–10 heads and measures simulated
//! tokens/step on greedy decoding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::OnceLock;
use verispec_core::{DecodeConfig, TrainMethod};
use verispec_eval::{generate, rtllm_sim, ModelScale, Pipeline, PipelineConfig};

fn pipeline(n_heads: usize) -> Pipeline {
    Pipeline::build(PipelineConfig {
        corpus_size: 96,
        vocab: 420,
        n_heads,
        epochs: 1,
        ..Default::default()
    })
}

fn bench_heads(c: &mut Criterion) {
    static REPORTED: OnceLock<()> = OnceLock::new();
    let mut group = c.benchmark_group("heads_ablation");
    group.sample_size(10);
    let bench = rtllm_sim();
    let problem = &bench.problems[0];
    let cost = ModelScale::Small.cost_model();
    let mut report = String::new();
    for n_heads in [2usize, 4, 6, 8, 10] {
        let pipe = pipeline(n_heads);
        let model = pipe.model_for(ModelScale::Small, TrainMethod::Ours, (1, 1));
        let cfg = DecodeConfig {
            max_tokens: 64,
            ..Default::default()
        };
        let g = generate(
            &model,
            &pipe.tokenizer,
            problem,
            TrainMethod::Ours,
            &cfg,
            &cost,
        );
        report.push_str(&format!(
            "  heads={n_heads:<2}  tokens/step={:.2}  sim tok/s={:.1}\n",
            g.output.clock.tokens_per_step(),
            g.output.clock.tokens_per_second()
        ));
        group.bench_with_input(
            BenchmarkId::from_parameter(n_heads),
            &(pipe, model),
            |b, (pipe, model)| {
                b.iter(|| {
                    let cfg = DecodeConfig {
                        max_tokens: 48,
                        ..Default::default()
                    };
                    generate(
                        model,
                        &pipe.tokenizer,
                        problem,
                        TrainMethod::Ours,
                        &cfg,
                        &cost,
                    )
                })
            },
        );
    }
    group.finish();
    REPORTED.get_or_init(|| {
        eprintln!("\nheads ablation (greedy decode):\n{report}");
    });
}

criterion_group!(benches, bench_heads);
criterion_main!(benches);
