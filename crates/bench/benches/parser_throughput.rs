//! Substrate bench: Verilog front-end throughput (lex + parse +
//! fragmentize) over corpus-sized inputs — the Stagira-substitute's cost
//! inside the data pipeline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use verispec_data::{Corpus, CorpusConfig};
use verispec_verilog::fragment::fragmentize;
use verispec_verilog::significant::SignificantTokens;

fn bench_parser(c: &mut Criterion) {
    let corpus = Corpus::build(&CorpusConfig {
        size: 128,
        ..Default::default()
    });
    let blob: String = corpus
        .items
        .iter()
        .map(|i| i.source.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    let bytes = blob.len() as u64;

    let mut group = c.benchmark_group("verilog_frontend");
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("lex", |b| {
        b.iter(|| verispec_verilog::lex(&blob).expect("lex"))
    });
    group.bench_function("parse", |b| {
        b.iter(|| verispec_verilog::parse(&blob).expect("parse"))
    });
    group.bench_function("fragmentize", |b| {
        let file = verispec_verilog::parse(&blob).expect("parse");
        let sig = SignificantTokens::from_source_file(&file);
        b.iter(|| fragmentize(&blob, &sig).expect("fragmentize"))
    });
    group.finish();
}

criterion_group!(benches, bench_parser);
criterion_main!(benches);
