//! Ablation A4: classical draft-model speculative decoding (Leviathan
//! style) with an n-gram draft proposing for the MLP target — the
//! "separate draft model" baseline the paper contrasts MEDUSA heads
//! against (§II-C). Sweeps the draft block length γ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::OnceLock;
use verispec_core::{decode_draft_speculative, DraftConfig, TrainMethod};
use verispec_eval::{rtllm_sim, ModelScale, Pipeline, PipelineConfig};
use verispec_lm::{MlpLm, NgramLm};

fn setup() -> &'static (Pipeline, MlpLm, NgramLm) {
    static SETUP: OnceLock<(Pipeline, MlpLm, NgramLm)> = OnceLock::new();
    SETUP.get_or_init(|| {
        let pipe = Pipeline::build(PipelineConfig {
            corpus_size: 96,
            vocab: 420,
            n_heads: 4,
            epochs: 1,
            ..Default::default()
        });
        let target = pipe.model_for(ModelScale::Small, TrainMethod::Ntp, (1, 1));
        let mut draft = NgramLm::new(3, pipe.tokenizer.vocab_size());
        for seq in &pipe.plain_sequences {
            draft.train_sequence(seq);
        }
        (pipe, target, draft)
    })
}

fn bench_draft(c: &mut Criterion) {
    let (pipe, target, draft) = setup();
    let bench = rtllm_sim();
    let prompt = pipe.tokenizer.encode(&bench.problems[0].prompt_plain());
    let cost = ModelScale::Small.cost_model();
    let mut group = c.benchmark_group("draft_speculative");
    group.sample_size(10);
    let mut report = String::new();
    for gamma in [2usize, 4, 8] {
        let cfg = DraftConfig {
            gamma,
            max_tokens: 96,
            seed: 5,
            ..Default::default()
        };
        let (out, stats) = decode_draft_speculative(target, draft, &prompt, &cfg, &cost);
        report.push_str(&format!(
            "  gamma={gamma}: acceptance={:.2}, tokens/step={:.2}, sim tok/s={:.1}\n",
            stats.acceptance_rate(),
            out.clock.tokens_per_step(),
            out.clock.tokens_per_second()
        ));
        group.bench_with_input(BenchmarkId::from_parameter(gamma), &gamma, |b, &gamma| {
            b.iter(|| {
                let cfg = DraftConfig {
                    gamma,
                    max_tokens: 64,
                    seed: 5,
                    ..Default::default()
                };
                decode_draft_speculative(target, draft, &prompt, &cfg, &cost)
            })
        });
    }
    group.finish();
    eprintln!("\ndraft-model speculation:\n{report}");
}

criterion_group!(benches, bench_draft);
criterion_main!(benches);
