//! Latency-under-load bench: the serve-aware Table II. An open-loop
//! Poisson workload (seeded arrivals, mixed short/long prompts, greedy
//! and sampled) is served through `verispec-serve`'s **streaming
//! admission** path at three offered-load levels — light, near the NTP
//! service capacity, and overload — once per method (syntax-aligned
//! tree speculation, MEDUSA tree, NTP) with identical arrivals,
//! prompts, budgets, and seeds: equal offered load, only the engine
//! differs.
//!
//! On top of the method sweep, each load level runs the **speculation
//! policy A/B**: the same arrivals forced to Ours-tree, now carrying
//! SLO deadlines, served under a fixed per-tick verify capacity with
//! earliest-deadline-first scheduling and load-shedding admission
//! control, once per policy — static (frozen tree), adaptive
//! (per-request history-driven speculation length), and budgeted
//! (shrink-to-fit packing of the tick's candidate budget). The rows
//! record SLO attainment and acceptance rates alongside the latency
//! percentiles — the measured answer to "Performance or Illusion?"
//! under batch pressure.
//!
//! Finally, the **dispatch sweep**: one Ours-tree workload at a
//! fleet-saturating offered load (4× the Table II overload level — a
//! speculative engine's effective capacity is several NTP-capacities,
//! so saturating four of them takes real heat), served once on a
//! single engine as the melt-down baseline, then routed across 1/2/4
//! independent engine workers under each routing policy (round-robin,
//! join-shortest-queue by ready depth, join-least-loaded by
//! outstanding candidate-token cost), every cell at equal offered
//! load — the JSQ-vs-RR tail-latency comparison. Dispatched
//! completions are asserted token-identical to the single-engine
//! reference (and one-worker cells tick-identical) before any row is
//! recorded.
//!
//! On top of that, the **Zipf shared-stem cache sweep**: a workload
//! whose prompts mostly extend a few hot stems (Zipf-weighted), served
//! with paced prompt ingestion so ingestion work costs ticks, measured
//! cache-off vs cache-on across 1/2/4 workers under round-robin,
//! least-loaded, and the cache-aware prefix-affine route — all at one
//! equal offered load. The rows carry the prefix-cache telemetry
//! (hit/miss, tokens saved, depth histogram, eviction and residency
//! peaks); every cell's completions are asserted token-identical to an
//! uncached single-engine reference before recording, and the bench
//! guard gates that cache-on beats cache-off on TTFT p99 and that
//! prefix-affine out-hits round-robin on fleets.
//!
//! Emits `BENCH_load.json` at the workspace root with exact
//! p50/p90/p99 queueing delay, TTFT, per-token inter-commit gaps, and
//! end-to-end latency in scheduler ticks plus measured wall-clock,
//! alongside session-eviction high-water stats. Every streamed run is
//! asserted token-for-token and tick-for-tick identical to batch
//! submission before its numbers are recorded, and every workload's
//! realized arrivals are asserted to round-trip bit-identically
//! through the JSON `ArrivalTrace`.
//!
//! `--test` runs a shrunk workload (CI smoke) but still sweeps all
//! three load levels and emits the artifact.

use std::path::PathBuf;
use verispec_eval::{
    render_load_bench, run_load_bench, ModelScale, Pipeline, PipelineConfig, Scale,
};

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    // Same pipeline as `decode_speed`/`serve_throughput`, so the
    // trained-model cache is shared across the bench suite.
    let pipeline = PipelineConfig {
        corpus_size: 96,
        vocab: 420,
        n_heads: 6,
        epochs: 1,
        ..Default::default()
    };
    // More requests than the pool (8), so queueing — the thing the
    // percentiles measure — actually occurs even in the CI smoke.
    let speed_prompt_count = if test_mode { 12 } else { 48 };
    // Offered load as a fraction of the NTP service capacity
    // (`max_batch` tokens/tick): light, near-saturation, overload.
    // Speculation raises effective capacity by its tokens-per-step
    // factor, which is exactly the gap the percentiles expose.
    let utilizations = [0.25, 0.9, 2.0];
    let scale = Scale {
        pipeline,
        speed_prompt_count,
        ..Scale::quick()
    };
    let pipe = Pipeline::build(scale.pipeline);
    let rows = run_load_bench(&scale, &pipe, ModelScale::Small, &utilizations);
    print!("{}", render_load_bench(&rows));

    let path: PathBuf = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_load.json");
    match serde_json::to_string_pretty(&rows) {
        Ok(body) => match std::fs::write(&path, body) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        },
        Err(e) => eprintln!("could not serialize BENCH_load.json: {e}"),
    }
}
