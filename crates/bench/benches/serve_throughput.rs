//! Serving-throughput bench: the `verispec-serve` continuous-batching
//! engine against the serial one-request-at-a-time baseline, on a
//! mixed workload (short comb modules and long seq modules, all six
//! per-request engine choices, greedy and sampled).
//!
//! Sweeps concurrency {1, 4, 16, 64} and emits `BENCH_serve.json` at
//! the workspace root. Every served output is asserted token-for-token
//! equal to the serial engine's inside `run_serve_bench`, so the
//! numbers are produced under proven output parity.
//!
//! `--test` runs a shrunk workload (CI smoke) but still emits the
//! artifact.

use std::path::PathBuf;
use verispec_eval::{
    render_serve_bench, run_serve_bench, ModelScale, Pipeline, PipelineConfig, Scale,
};

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    // Same pipeline as `decode_speed`, so the trained-model cache is
    // shared between the two benches.
    let pipeline = PipelineConfig {
        corpus_size: 96,
        vocab: 420,
        n_heads: 6,
        epochs: 1,
        ..Default::default()
    };
    let (speed_prompt_count, concurrencies): (usize, &[usize]) = if test_mode {
        (6, &[1, 4])
    } else {
        (64, &[1, 4, 16, 64])
    };
    let scale = Scale {
        pipeline,
        speed_prompt_count,
        ..Scale::quick()
    };
    let pipe = Pipeline::build(scale.pipeline);
    let rows = run_serve_bench(&scale, &pipe, ModelScale::Small, concurrencies);
    print!("{}", render_serve_bench(&rows));

    let path: PathBuf = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    match serde_json::to_string_pretty(&rows) {
        Ok(body) => match std::fs::write(&path, body) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        },
        Err(e) => eprintln!("could not serialize BENCH_serve.json: {e}"),
    }
}
