//! `session_reuse`: cached [`verispec_lm::DecodeSession`]s against the
//! stateless `logits(&prefix)` shim, at equal outputs.
//!
//! Two layers of comparison:
//!
//! * **engine level** — full speculative decodes through
//!   [`verispec_eval::generate`] (cached session) vs.
//!   [`verispec_eval::generate_stateless`] (fresh recompute per query),
//!   asserting token-for-token identical outputs first;
//! * **model level** — a raw `verify_batch` microbench over a fixed
//!   candidate tree, the hot call of MEDUSA tree verification.

use criterion::{black_box, BenchmarkId, Criterion};
use std::sync::OnceLock;
use verispec_core::{DecodeConfig, TrainMethod};
use verispec_eval::{
    generate, generate_stateless, rtllm_sim, ModelScale, Pipeline, PipelineConfig,
};
use verispec_lm::{LanguageModel, MlpLm, Stateless, TokenId};

fn pipeline() -> &'static Pipeline {
    static PIPE: OnceLock<Pipeline> = OnceLock::new();
    PIPE.get_or_init(|| {
        Pipeline::build(PipelineConfig {
            corpus_size: 96,
            vocab: 420,
            n_heads: 6,
            epochs: 1,
            ..Default::default()
        })
    })
}

fn model(method: TrainMethod) -> MlpLm {
    pipeline().model_for(ModelScale::Small, method, (1, 1))
}

fn bench_engine_level(c: &mut Criterion) {
    let pipe = pipeline();
    let bench = rtllm_sim();
    let problem = &bench.problems[0];
    let cost = ModelScale::Small.cost_model();
    let mut group = c.benchmark_group("session_reuse/engine");
    group.sample_size(10);
    for method in [TrainMethod::Ntp, TrainMethod::Medusa, TrainMethod::Ours] {
        let m = model(method);
        let cfg = DecodeConfig {
            max_tokens: 96,
            ..Default::default()
        };
        // Equal outputs is a precondition of the comparison.
        let a = generate(&m, &pipe.tokenizer, problem, method, &cfg, &cost);
        let b = generate_stateless(&m, &pipe.tokenizer, problem, method, &cfg, &cost);
        assert_eq!(
            a.output.tokens,
            b.output.tokens,
            "session and stateless decodes must match ({})",
            method.name()
        );
        group.bench_with_input(
            BenchmarkId::new("session", method.name()),
            &method,
            |b, &method| b.iter(|| generate(&m, &pipe.tokenizer, problem, method, &cfg, &cost)),
        );
        group.bench_with_input(
            BenchmarkId::new("stateless", method.name()),
            &method,
            |b, &method| {
                b.iter(|| generate_stateless(&m, &pipe.tokenizer, problem, method, &cfg, &cost))
            },
        );
    }
    group.finish();
}

fn bench_verify_batch(c: &mut Criterion) {
    let m = model(TrainMethod::Medusa);
    let prompt: Vec<TokenId> = (5..45).collect();
    // A binary candidate tree of depth 5: 32 paths, heavy prefix sharing.
    let paths: Vec<Vec<TokenId>> = (0..32u32)
        .map(|bits| (0..5).map(|d| 50 + ((bits >> d) & 1)).collect())
        .collect();
    let path_refs: Vec<&[TokenId]> = paths.iter().map(Vec::as_slice).collect();

    let mut group = c.benchmark_group("session_reuse/verify_batch");
    group.sample_size(20);
    group.bench_function("batched", |b| {
        let mut session = m.session();
        session.append(&prompt);
        b.iter(|| black_box(session.verify_batch(&path_refs, true)))
    });
    group.bench_function("stateless", |b| {
        let shim = Stateless(&m);
        let mut session = shim.session();
        session.append(&prompt);
        b.iter(|| black_box(session.verify_batch(&path_refs, true)))
    });
    group.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_engine_level(&mut c);
    bench_verify_batch(&mut c);
    // Summarize the session-vs-stateless ratios measured above.
    let mut pairs: Vec<(String, f64, f64)> = Vec::new();
    for r in &c.results {
        if let Some(rest) = r.id.strip_prefix("session_reuse/engine/session/") {
            let other = format!("session_reuse/engine/stateless/{rest}");
            if let Some(s) = c.results.iter().find(|x| x.id == other) {
                pairs.push((rest.to_string(), r.mean_secs, s.mean_secs));
            }
        }
    }
    if let (Some(b), Some(s)) = (
        c.results
            .iter()
            .find(|x| x.id == "session_reuse/verify_batch/batched"),
        c.results
            .iter()
            .find(|x| x.id == "session_reuse/verify_batch/stateless"),
    ) {
        pairs.push(("verify_batch".into(), b.mean_secs, s.mean_secs));
    }
    println!("\nsession speedup over stateless shim (equal outputs):");
    for (name, session, stateless) in pairs {
        println!("  {name:<14} {:>6.2}x", stateless / session.max(1e-12));
    }
}
