//! Arrival-trace record/replay: a compact, serializable capture of a
//! workload's *realized* arrivals that replays bit-identically.
//!
//! The generators in [`crate::generator`] are synthetic: a workload is
//! a seed plus distributions. For regression hunting ("this exact
//! arrival pattern made p99 blow up") the realized draw itself is the
//! artifact worth keeping. An [`ArrivalTrace`] records, per request,
//! exactly what the ISSUE of record is: `(tick, prompt-id, engine,
//! budget, seed)` — plus the sampling draw and optional SLO deadline —
//! with prompts deduplicated into a table so the trace stays compact
//! under prompt families. Shared config (EOS, acceptance) is stored
//! once as the base [`DecodeConfig`].
//!
//! Round-tripping through JSON (`to_json` / `from_json`, via the
//! vendored serde) and replaying yields a request sequence equal to
//! the original field-for-field, so serving it reproduces the original
//! run's outputs and tick schedule exactly (the serving engine is a
//! deterministic function of its requests).

use serde::Serialize;
use verispec_core::DecodeConfig;
use verispec_lm::{Sampling, TokenId};
use verispec_serve::{EngineChoice, FaultPlan, Request};

/// One recorded arrival.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceEntry {
    /// Request id.
    pub id: u64,
    /// Arrival tick.
    pub tick: u64,
    /// Index into [`ArrivalTrace::prompts`].
    pub prompt_id: usize,
    /// Decoding engine.
    pub engine: EngineChoice,
    /// Decode budget (`max_tokens`).
    pub budget: usize,
    /// Sampling draw.
    pub sampling: Sampling,
    /// Per-request RNG seed.
    pub seed: u64,
    /// Optional SLO deadline tick.
    pub deadline: Option<u64>,
    /// Tenant class ([`Request::class`]); 0 in traces recorded before
    /// classes existed.
    pub class: u32,
}

// Hand-written so traces recorded before `class` existed still parse
// (the vendored derive requires every field to be present).
impl serde::Deserialize for TraceEntry {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(TraceEntry {
            id: serde::Deserialize::from_value(v.field("id")?)?,
            tick: serde::Deserialize::from_value(v.field("tick")?)?,
            prompt_id: serde::Deserialize::from_value(v.field("prompt_id")?)?,
            engine: serde::Deserialize::from_value(v.field("engine")?)?,
            budget: serde::Deserialize::from_value(v.field("budget")?)?,
            sampling: serde::Deserialize::from_value(v.field("sampling")?)?,
            seed: serde::Deserialize::from_value(v.field("seed")?)?,
            deadline: serde::Deserialize::from_value(v.field("deadline")?)?,
            class: match v.field("class") {
                Ok(f) => serde::Deserialize::from_value(f)?,
                Err(_) => 0,
            },
        })
    }
}

/// A recorded request sequence: the replayable form of one workload
/// realization, optionally carrying the failure scenario
/// ([`FaultPlan`]) the run is to replay under.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ArrivalTrace {
    /// The workload seed the trace was drawn from (provenance only —
    /// replay never re-derives anything from it).
    pub workload_seed: u64,
    /// Request-config fields shared by every entry (EOS, acceptance);
    /// per-entry fields override `max_tokens`, `sampling`, and `seed`.
    pub base: DecodeConfig,
    /// Deduplicated prompt table.
    pub prompts: Vec<Vec<TokenId>>,
    /// One entry per request, in submission order.
    pub entries: Vec<TraceEntry>,
    /// The failure scenario (worker crash/restart schedule and/or
    /// tenant shares) the trace replays under; the empty plan for
    /// fault-free traces, including every trace recorded before fault
    /// injection existed.
    pub faults: FaultPlan,
}

// Hand-written so traces recorded before `faults` existed still parse.
impl serde::Deserialize for ArrivalTrace {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(ArrivalTrace {
            workload_seed: serde::Deserialize::from_value(v.field("workload_seed")?)?,
            base: serde::Deserialize::from_value(v.field("base")?)?,
            prompts: serde::Deserialize::from_value(v.field("prompts")?)?,
            entries: serde::Deserialize::from_value(v.field("entries")?)?,
            faults: match v.field("faults") {
                Ok(f) => serde::Deserialize::from_value(f)?,
                Err(_) => FaultPlan::none(),
            },
        })
    }
}

impl ArrivalTrace {
    /// Records `requests` (as produced by
    /// [`crate::generator::Workload::requests`]) into a trace.
    ///
    /// `base` must carry the shared config the workload's mix used —
    /// replay rebuilds each request as `DecodeConfig { max_tokens,
    /// sampling, seed, ..base }`, so any per-request deviation in the
    /// shared fields would not survive the round trip. Debug builds
    /// assert this.
    pub fn record(requests: &[Request], workload_seed: u64, base: &DecodeConfig) -> Self {
        let mut prompts: Vec<Vec<TokenId>> = Vec::new();
        let entries = requests
            .iter()
            .map(|req| {
                debug_assert_eq!(
                    DecodeConfig {
                        max_tokens: base.max_tokens,
                        sampling: base.sampling,
                        seed: base.seed,
                        ..req.cfg.clone()
                    },
                    *base,
                    "request {} deviates from the shared base config",
                    req.id
                );
                let prompt_id = match prompts.iter().position(|p| p == &req.prompt) {
                    Some(i) => i,
                    None => {
                        prompts.push(req.prompt.clone());
                        prompts.len() - 1
                    }
                };
                TraceEntry {
                    id: req.id,
                    tick: req.arrival,
                    prompt_id,
                    engine: req.engine.clone(),
                    budget: req.cfg.max_tokens,
                    sampling: req.cfg.sampling,
                    seed: req.cfg.seed,
                    deadline: req.deadline,
                    class: req.class,
                }
            })
            .collect();
        ArrivalTrace {
            workload_seed,
            base: base.clone(),
            prompts,
            entries,
            faults: FaultPlan::none(),
        }
    }

    /// Attaches the failure scenario the trace replays under
    /// (builder-style).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Rebuilds the recorded request sequence, field-for-field equal to
    /// what was recorded.
    ///
    /// # Panics
    ///
    /// Panics if an entry's `prompt_id` is out of range (a corrupt
    /// trace).
    pub fn replay(&self) -> Vec<Request> {
        self.entries
            .iter()
            .map(|e| Request {
                id: e.id,
                prompt: self.prompts[e.prompt_id].clone(),
                engine: e.engine.clone(),
                cfg: DecodeConfig {
                    max_tokens: e.budget,
                    sampling: e.sampling,
                    seed: e.seed,
                    ..self.base.clone()
                },
                arrival: e.tick,
                deadline: e.deadline,
                class: e.class,
            })
            .collect()
    }

    /// Serializes the trace to pretty JSON.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a trace back from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{ArrivalProcess, PromptFamily, RequestMix, Workload};
    use verispec_lm::{GpuCostModel, MlpLm, MlpLmConfig};
    use verispec_serve::{serve_all, ServeConfig};

    fn workload(deadline_slack: Option<f64>) -> Workload {
        Workload {
            process: ArrivalProcess::Poisson { rate: 0.4 },
            mix: RequestMix {
                engines: vec![
                    (
                        EngineChoice::SyntaxAligned {
                            tree: Some(vec![2, 2]),
                        },
                        2.0,
                    ),
                    (EngineChoice::Ntp, 1.0),
                    (EngineChoice::MedusaTree(vec![2]), 1.0),
                ],
                families: vec![
                    (
                        PromptFamily {
                            name: "short".into(),
                            prompts: vec![(vec![1, 2], 6), (vec![3], 5)],
                        },
                        1.0,
                    ),
                    (
                        PromptFamily {
                            name: "long".into(),
                            prompts: vec![(vec![1, 2, 3, 4, 5], 10)],
                        },
                        1.0,
                    ),
                ],
                greedy_fraction: 0.5,
                temperature: (0.4, 0.9),
                base: DecodeConfig::default(),
                deadline_slack,
            },
            count: 24,
            seed: 0xCAFE,
        }
    }

    #[test]
    fn json_round_trip_replays_field_for_field() {
        for slack in [None, Some(3.0)] {
            let w = workload(slack);
            let requests = w.requests();
            let trace = ArrivalTrace::record(&requests, w.seed, &w.mix.base);
            let json = trace.to_json().expect("trace serializes");
            let back = ArrivalTrace::from_json(&json).expect("trace parses");
            assert_eq!(back, trace, "trace survived the JSON round trip");
            assert_eq!(back.replay(), requests, "replay is field-for-field exact");
            // Prompt dedup actually deduplicates: 24 requests over 3
            // distinct prompts.
            assert_eq!(back.prompts.len(), 3);
        }
    }

    #[test]
    fn traces_from_before_faults_and_classes_still_parse() {
        let w = workload(Some(3.0));
        let requests = w.requests();
        let trace = ArrivalTrace::record(&requests, w.seed, &w.mix.base)
            .with_faults(FaultPlan::none().crash(10, 0).restart(20, 0));
        let json = trace.to_json().expect("serializes");
        // Re-shape into the pre-fault era: drop `faults` from the
        // trace and `class` from every entry, as a trace committed
        // before this release would look.
        let mut v: serde::Value = serde_json::from_str(&json).expect("value parses");
        let serde::Value::Map(fields) = &mut v else {
            panic!("trace serializes as a map")
        };
        fields.retain(|(k, _)| !matches!(k, serde::Value::Str(s) if s == "faults"));
        for (k, val) in fields.iter_mut() {
            if matches!(k, serde::Value::Str(s) if s == "entries") {
                let serde::Value::Seq(items) = val else {
                    panic!("entries serialize as a sequence")
                };
                for item in items {
                    let serde::Value::Map(entry) = item else {
                        panic!("entry serializes as a map")
                    };
                    entry.retain(|(k, _)| !matches!(k, serde::Value::Str(s) if s == "class"));
                }
            }
        }
        let old_json = serde_json::to_string(&v).expect("re-serializes");
        let back = ArrivalTrace::from_json(&old_json).expect("pre-fault-era trace parses");
        assert_eq!(
            back.faults,
            FaultPlan::none(),
            "missing faults default empty"
        );
        assert!(
            back.entries.iter().all(|e| e.class == 0),
            "missing classes default to tenant 0"
        );
        assert_eq!(back.entries.len(), requests.len());
        assert_eq!(back.prompts, trace.prompts);
    }

    #[test]
    fn replayed_trace_serves_bit_identically() {
        let model = MlpLm::new(MlpLmConfig::tiny(16));
        let cost = GpuCostModel::codellama_like();
        let cfg = ServeConfig::concurrency(4);
        let w = workload(Some(2.5));
        let requests = w.requests();
        let trace = ArrivalTrace::record(&requests, w.seed, &w.mix.base);
        let json = trace.to_json().expect("serializes");
        let replayed = ArrivalTrace::from_json(&json).expect("parses").replay();
        let original = serve_all(&model, None, requests, &cfg, &cost);
        let again = serve_all(&model, None, replayed, &cfg, &cost);
        assert_eq!(
            original.completions.len(),
            again.completions.len(),
            "replay lost requests"
        );
        for (a, b) in original.completions.iter().zip(&again.completions) {
            assert_eq!(a.output.tokens, b.output.tokens, "request {} tokens", a.id);
            assert_eq!(a.step_ticks, b.step_ticks, "request {} schedule", a.id);
            assert_eq!(a.deadline, b.deadline);
        }
        assert_eq!(original.stats, again.stats);
    }
}
