//! Latency-percentile telemetry over a serving run.
//!
//! The serving engine stamps every [`Completion`] with its submission,
//! admission, per-step commit ticks, and engine-relative wall-clock
//! timestamps. This module turns those stamps into the latencies that
//! matter at production load — per-request **queueing delay**,
//! **TTFT** (time to first token), **per-token inter-commit gaps**,
//! and **end-to-end latency**, in scheduler ticks and wall-clock
//! seconds — and aggregates them into *exact* (nearest-rank, not
//! sketched) p50/p90/p99 summaries, overall and per engine.
//!
//! Tick latencies are deterministic (pure functions of the schedule),
//! so they are the A/B axis of the serve-aware Table II; wall-clock
//! latencies are measured from the real run and carry machine noise.
//!
//! Beyond latency, the report carries the two signals the
//! speculation-policy layer closes its loop on: **SLO attainment**
//! (fraction of deadline-carrying requests that finished by their
//! deadline — requests shed by admission control or never completed
//! count as missed) and **acceptance rates** (speculated vs. cashed
//! candidate tokens, per engine), both overall and per engine.

use serde::{Deserialize, Serialize};
use verispec_serve::{Completion, Request, ServeStats};

/// An exact quantile summary of one latency distribution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct QuantileSummary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Exact median (nearest-rank).
    pub p50: f64,
    /// Exact 90th percentile (nearest-rank).
    pub p90: f64,
    /// Exact 99th percentile (nearest-rank).
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl QuantileSummary {
    /// Summarizes `values` exactly: the full sample set is sorted and
    /// each percentile is the nearest-rank order statistic (`⌈q·n⌉`-th
    /// smallest) — no sketches, no interpolation beyond the sample.
    pub fn exact(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self::default();
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let rank = |q: f64| -> f64 {
            let k = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[k - 1]
        };
        QuantileSummary {
            n: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: rank(0.50),
            p90: rank(0.90),
            p99: rank(0.99),
            max: *sorted.last().expect("nonempty"),
        }
    }
}

/// The latency stamps of one completed request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestLatency {
    /// Request id.
    pub id: u64,
    /// Engine name ([`verispec_serve::EngineChoice::name`]).
    pub engine: String,
    /// Generated tokens.
    pub tokens: usize,
    /// Ticks from submission (arrival) to first admission.
    pub queue_ticks: u64,
    /// Ticks from submission to the first committed token.
    pub ttft_ticks: u64,
    /// Ticks from submission to the final decoding step.
    pub e2e_ticks: u64,
    /// Largest per-token inter-commit gap in ticks (tokens committed in
    /// the same step are 0 apart; across steps the gap is the tick
    /// difference).
    pub max_gap_ticks: u64,
    /// Mean per-token inter-commit gap in ticks.
    pub mean_gap_ticks: f64,
    /// Wall-clock seconds from first visibility to the first token.
    pub ttft_secs: f64,
    /// Wall-clock seconds from first visibility to completion.
    pub e2e_secs: f64,
    /// The request's SLO deadline tick, if it carried one.
    pub deadline: Option<u64>,
    /// Whether it finished by its deadline (`None` without one).
    pub met_deadline: Option<bool>,
    /// Candidate tokens the request speculated (paid for).
    pub proposed_tokens: usize,
    /// Speculated tokens accepted (cashed).
    pub accepted_tokens: usize,
}

impl RequestLatency {
    /// Extracts the latencies of one completion. A request that
    /// committed no tokens (a zero `max_tokens` budget finishes
    /// without ever stepping) has no first token; its TTFT falls back
    /// to its completion time so aggregation stays total.
    pub fn of(engine: &str, c: &Completion) -> Self {
        let first = c.first_token_tick().unwrap_or(c.finished);
        let gaps = per_token_gaps(c);
        let (max_gap, sum_gap) = gaps
            .iter()
            .fold((0u64, 0u64), |(m, s), &g| (m.max(g), s + g));
        RequestLatency {
            id: c.id,
            engine: engine.to_string(),
            tokens: c.output.tokens.len(),
            queue_ticks: c.queue_ticks(),
            ttft_ticks: first.saturating_sub(c.submitted),
            e2e_ticks: c.finished.saturating_sub(c.submitted),
            max_gap_ticks: max_gap,
            mean_gap_ticks: if gaps.is_empty() {
                0.0
            } else {
                sum_gap as f64 / gaps.len() as f64
            },
            ttft_secs: (c.first_token_secs.unwrap_or(c.finished_secs) - c.seen_secs).max(0.0),
            e2e_secs: (c.finished_secs - c.seen_secs).max(0.0),
            deadline: c.deadline,
            met_deadline: c.met_deadline(),
            proposed_tokens: c.proposed_tokens,
            accepted_tokens: c.accepted_tokens,
        }
    }
}

/// SLO attainment over one request population.
///
/// The denominator counts every *submitted* request that carried a
/// deadline — including requests shed by admission control or still
/// unfinished, which can never have met it — so attainment reflects
/// what clients experienced, not just the survivors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloSummary {
    /// Submitted requests carrying a deadline.
    pub deadlines: usize,
    /// Of those, requests that completed by their deadline.
    pub met: usize,
    /// Deadline-carrying requests with no completion at all (shed by
    /// admission control, or the run ended without them).
    pub unserved: usize,
}

impl SloSummary {
    /// Fraction of deadline-carrying requests that met their deadline;
    /// `None` when no request carried one.
    pub fn attainment(&self) -> Option<f64> {
        (self.deadlines > 0).then(|| self.met as f64 / self.deadlines as f64)
    }
}

/// Aggregate speculation acceptance over one request population.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcceptanceSummary {
    /// Candidate tokens speculated.
    pub proposed: usize,
    /// Speculated tokens accepted.
    pub accepted: usize,
}

impl AcceptanceSummary {
    /// Fraction of speculated tokens accepted; `None` when nothing was
    /// speculated (e.g. an all-NTP population).
    pub fn rate(&self) -> Option<f64> {
        (self.proposed > 0).then(|| self.accepted as f64 / self.proposed as f64)
    }
}

/// Per-token inter-commit gaps of one completion: token `j ≥ 1` gets
/// the tick distance to token `j − 1` (0 within a multi-token step).
/// The first token is excluded — its latency is TTFT.
pub fn per_token_gaps(c: &Completion) -> Vec<u64> {
    let mut gaps = Vec::with_capacity(c.output.tokens.len().saturating_sub(1));
    let mut last_tick: Option<u64> = None;
    for (step, tick) in c.step_ticks.iter().enumerate() {
        let committed = c.output.trace.get(step).map_or(0, |t| t.committed.len());
        for j in 0..committed {
            match last_tick {
                None => {}
                Some(prev) if j == 0 => gaps.push(tick - prev),
                Some(_) => gaps.push(0),
            }
            last_tick = Some(*tick);
        }
    }
    gaps
}

/// The six latency distributions every aggregation level reports —
/// **the one place** quantile aggregation lives. [`LatencySummary`]
/// (overall / per-engine / per-worker breakdowns) and
/// `crate::report::LoadBenchRow` (the bench artifact) both embed this
/// struct instead of re-listing and re-copying the six summaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyQuantiles {
    /// Queueing delay in ticks.
    pub queue_ticks: QuantileSummary,
    /// Time to first token in ticks.
    pub ttft_ticks: QuantileSummary,
    /// End-to-end latency in ticks.
    pub e2e_ticks: QuantileSummary,
    /// Per-token inter-commit gaps in ticks, pooled across requests.
    pub gap_ticks: QuantileSummary,
    /// Time to first token in wall-clock seconds.
    pub ttft_secs: QuantileSummary,
    /// End-to-end latency in wall-clock seconds.
    pub e2e_secs: QuantileSummary,
}

impl LatencyQuantiles {
    /// Aggregates the six distributions over one request population
    /// (`gaps` are the population's pooled per-token inter-commit
    /// gaps, see [`per_token_gaps`]).
    pub fn aggregate(lats: &[&RequestLatency], gaps: &[f64]) -> Self {
        let col = |f: &dyn Fn(&RequestLatency) -> f64| -> Vec<f64> {
            lats.iter().map(|l| f(l)).collect()
        };
        LatencyQuantiles {
            queue_ticks: QuantileSummary::exact(&col(&|l| l.queue_ticks as f64)),
            ttft_ticks: QuantileSummary::exact(&col(&|l| l.ttft_ticks as f64)),
            e2e_ticks: QuantileSummary::exact(&col(&|l| l.e2e_ticks as f64)),
            gap_ticks: QuantileSummary::exact(gaps),
            ttft_secs: QuantileSummary::exact(&col(&|l| l.ttft_secs)),
            e2e_secs: QuantileSummary::exact(&col(&|l| l.e2e_secs)),
        }
    }
}

/// One engine's, worker's, or the overall aggregated latency summaries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Requests aggregated.
    pub requests: usize,
    /// Tokens generated across them.
    pub tokens: usize,
    /// The six latency distributions ([`LatencyQuantiles`]).
    pub quantiles: LatencyQuantiles,
    /// SLO attainment (completed requests only; the report-level
    /// summaries add shed/unserved requests to the denominator).
    pub slo: SloSummary,
    /// Speculation acceptance across the population.
    pub acceptance: AcceptanceSummary,
}

impl LatencySummary {
    fn aggregate(lats: &[&RequestLatency], gaps: &[f64]) -> Self {
        let slo = SloSummary {
            deadlines: lats.iter().filter(|l| l.deadline.is_some()).count(),
            met: lats.iter().filter(|l| l.met_deadline == Some(true)).count(),
            unserved: 0,
        };
        let acceptance = AcceptanceSummary {
            proposed: lats.iter().map(|l| l.proposed_tokens).sum(),
            accepted: lats.iter().map(|l| l.accepted_tokens).sum(),
        };
        LatencySummary {
            requests: lats.len(),
            tokens: lats.iter().map(|l| l.tokens).sum(),
            quantiles: LatencyQuantiles::aggregate(lats, gaps),
            slo,
            acceptance,
        }
    }
}

/// Prefix-cache telemetry for one serving run, mirrored from the
/// engine's [`ServeStats`] counters into the latency report so the
/// cache's contribution sits next to the latencies it buys.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixCacheSummary {
    /// Admissions that forked a cached stem.
    pub hits: usize,
    /// Admissions that ingested from scratch.
    pub misses: usize,
    /// Prompt tokens whose ingestion the cache skipped (sum of matched
    /// depths over all hits).
    pub tokens_saved: usize,
    /// Cached stems dropped by cap-charged LRU eviction.
    pub evictions: usize,
    /// Deepest-match-depth histogram over hits: bucket `i` counts hits
    /// with matched depth in `[2^i, 2^(i+1))` (bucket 7 is open-ended).
    pub depth_hist: [u64; 8],
    /// High-water resident trie nodes holding a session (fleet maximum
    /// for dispatched runs).
    pub peak_resident_nodes: usize,
}

impl PrefixCacheSummary {
    /// Lifts the prefix counters out of a run's [`ServeStats`];
    /// `None` when the cache never saw an admission (disabled).
    pub fn from_stats(stats: &ServeStats) -> Option<Self> {
        (stats.prefix_hits + stats.prefix_misses > 0).then_some(PrefixCacheSummary {
            hits: stats.prefix_hits,
            misses: stats.prefix_misses,
            tokens_saved: stats.prefix_tokens_saved,
            evictions: stats.prefix_evictions,
            depth_hist: stats.prefix_depth_hist,
            peak_resident_nodes: stats.peak_resident_nodes,
        })
    }

    /// Cache hit rate over the run's admissions.
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / (self.hits + self.misses).max(1) as f64
    }
}

/// The full latency report of one serving run: per-request stamps, the
/// overall summary, and per-engine (plus, for dispatched runs,
/// per-worker) breakdowns.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyReport {
    /// Every completed request's latencies, sorted by id.
    pub per_request: Vec<RequestLatency>,
    /// Aggregates over all requests.
    pub overall: LatencySummary,
    /// Aggregates per engine name, sorted by name.
    pub per_engine: Vec<(String, LatencySummary)>,
    /// Aggregates per dispatch worker, sorted by worker index — empty
    /// for single-engine runs. Each worker's [`SloSummary`] is
    /// dispatcher-aware: requests the *worker* shed (or never finished)
    /// count against that worker's deadlines, so a routing policy that
    /// overloads one worker shows up in its attainment, not just the
    /// fleet's.
    pub per_worker: Vec<(usize, LatencySummary)>,
    /// Prefix-cache counters for the run (`None` when the cache was
    /// off); attached by the open-loop drivers via
    /// [`LatencyReport::attach_prefix_stats`].
    #[serde(default)]
    pub prefix: Option<PrefixCacheSummary>,
}

impl LatencyReport {
    /// Builds the report by joining `requests` (for engine names and
    /// the SLO denominator) with the run's completions by id.
    /// Submitted requests with no completion — shed by admission
    /// control, or the run ended without them — appear only in the
    /// [`SloSummary`] denominators, as `unserved`.
    ///
    /// # Panics
    ///
    /// Panics if a completion has no matching request.
    pub fn new(requests: &[Request], completions: &[Completion]) -> Self {
        Self::build(requests, completions, &[])
    }

    /// The dispatcher-aware constructor: like [`LatencyReport::new`],
    /// plus a per-worker breakdown grouped by the realized routing
    /// `assignments` (`(request id, worker index)`, e.g.
    /// [`verispec_serve::DispatchReport::assignments`]). Requests
    /// missing from the assignment (never received) count toward the
    /// overall SLO denominator but no worker's.
    pub fn with_assignments(
        requests: &[Request],
        completions: &[Completion],
        assignments: &[(u64, usize)],
    ) -> Self {
        Self::build(requests, completions, assignments)
    }

    fn build(
        requests: &[Request],
        completions: &[Completion],
        assignments: &[(u64, usize)],
    ) -> Self {
        let engine_of = |id: u64| -> &str {
            requests
                .iter()
                .find(|r| r.id == id)
                .map(|r| r.engine.name())
                .expect("completion for an unknown request id")
        };
        let mut per_request: Vec<RequestLatency> = completions
            .iter()
            .map(|c| RequestLatency::of(engine_of(c.id), c))
            .collect();
        per_request.sort_by_key(|l| l.id);

        let all_gaps: Vec<f64> = completions
            .iter()
            .flat_map(per_token_gaps)
            .map(|g| g as f64)
            .collect();
        let refs: Vec<&RequestLatency> = per_request.iter().collect();
        let mut overall = LatencySummary::aggregate(&refs, &all_gaps);

        // Requests that never completed (shed / unserved) still count
        // against SLO attainment — a dropped deadline is a missed one.
        let completed_ids: std::collections::HashSet<u64> =
            completions.iter().map(|c| c.id).collect();
        let unserved: Vec<&Request> = requests
            .iter()
            .filter(|r| !completed_ids.contains(&r.id))
            .collect();
        let unserved_deadlines = |engine: Option<&str>| -> usize {
            unserved
                .iter()
                .filter(|r| r.deadline.is_some())
                .filter(|r| engine.is_none_or(|e| r.engine.name() == e))
                .count()
        };
        let missed = unserved_deadlines(None);
        overall.slo.deadlines += missed;
        overall.slo.unserved += missed;

        let mut names: Vec<String> = per_request.iter().map(|l| l.engine.clone()).collect();
        // Unserved requests only need a per-engine row for the SLO
        // denominator; best-effort ones would add an all-zero phantom
        // summary, so only deadline-carrying ones extend the name set.
        names.extend(
            unserved
                .iter()
                .filter(|r| r.deadline.is_some())
                .map(|r| r.engine.name().to_string()),
        );
        names.sort();
        names.dedup();
        // One grouped-subset aggregation shared by the per-engine and
        // per-worker breakdowns: summarize the subset's latencies and
        // pooled gaps, then add the group's unserved deadlines to its
        // SLO denominator.
        let summarize = |subset: Vec<&RequestLatency>, unserved_missed: usize| -> LatencySummary {
            let ids: Vec<u64> = subset.iter().map(|l| l.id).collect();
            let gaps: Vec<f64> = completions
                .iter()
                .filter(|c| ids.contains(&c.id))
                .flat_map(per_token_gaps)
                .map(|g| g as f64)
                .collect();
            let mut summary = LatencySummary::aggregate(&subset, &gaps);
            summary.slo.deadlines += unserved_missed;
            summary.slo.unserved += unserved_missed;
            summary
        };

        let per_engine = names
            .into_iter()
            .map(|name| {
                let subset: Vec<&RequestLatency> =
                    per_request.iter().filter(|l| l.engine == name).collect();
                let missed = unserved_deadlines(Some(&name));
                (name, summarize(subset, missed))
            })
            .collect();

        // Per-worker breakdown: group by the realized routing. A
        // worker appears if anything was routed to it; its SLO
        // denominator includes the deadline-carrying requests it
        // received but never completed (shed or unfinished) — the
        // dispatcher-aware attainment.
        let worker_of = |id: u64| -> Option<usize> {
            assignments
                .iter()
                .find(|&&(rid, _)| rid == id)
                .map(|&(_, w)| w)
        };
        let mut worker_ids: Vec<usize> = assignments.iter().map(|&(_, w)| w).collect();
        worker_ids.sort_unstable();
        worker_ids.dedup();
        let per_worker = worker_ids
            .into_iter()
            .map(|w| {
                let subset: Vec<&RequestLatency> = per_request
                    .iter()
                    .filter(|l| worker_of(l.id) == Some(w))
                    .collect();
                let missed = unserved
                    .iter()
                    .filter(|r| r.deadline.is_some() && worker_of(r.id) == Some(w))
                    .count();
                (w, summarize(subset, missed))
            })
            .collect();

        LatencyReport {
            per_request,
            overall,
            per_engine,
            per_worker,
            prefix: None,
        }
    }

    /// Attaches the run's prefix-cache counters
    /// ([`PrefixCacheSummary::from_stats`]); a no-op recording `None`
    /// when the cache saw no admissions.
    pub fn attach_prefix_stats(mut self, stats: &ServeStats) -> Self {
        self.prefix = PrefixCacheSummary::from_stats(stats);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_exact_order_statistics() {
        let values: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let q = QuantileSummary::exact(&values);
        assert_eq!(q.n, 100);
        assert_eq!(q.p50, 50.0);
        assert_eq!(q.p90, 90.0);
        assert_eq!(q.p99, 99.0);
        assert_eq!(q.max, 100.0);
        assert!((q.mean - 50.5).abs() < 1e-12);

        // Tiny samples: nearest-rank clamps sanely.
        let q = QuantileSummary::exact(&[7.0]);
        assert_eq!((q.p50, q.p90, q.p99, q.max), (7.0, 7.0, 7.0, 7.0));
        assert_eq!(QuantileSummary::exact(&[]).n, 0);
    }

    #[test]
    fn quantiles_ignore_input_order() {
        let a = QuantileSummary::exact(&[3.0, 1.0, 2.0, 9.0, 4.0]);
        let b = QuantileSummary::exact(&[9.0, 4.0, 3.0, 2.0, 1.0]);
        assert_eq!(a, b);
        assert_eq!(a.p50, 3.0);
    }

    #[test]
    fn zero_budget_requests_do_not_break_the_report() {
        use verispec_core::DecodeConfig;
        use verispec_lm::{GpuCostModel, MlpLm, MlpLmConfig};
        use verispec_serve::{EngineChoice, Request, ServeConfig};

        let model = MlpLm::new(MlpLmConfig::tiny(14));
        let requests = vec![
            // A zero-token budget completes without ever committing.
            Request::new(
                0,
                vec![1],
                EngineChoice::Ntp,
                DecodeConfig {
                    max_tokens: 0,
                    ..Default::default()
                },
            ),
            Request::new(
                1,
                vec![2],
                EngineChoice::MedusaChain,
                DecodeConfig {
                    max_tokens: 4,
                    ..Default::default()
                },
            ),
        ];
        let run = crate::report::run_open_loop(
            &model,
            None,
            None,
            requests,
            &ServeConfig::concurrency(2),
            &GpuCostModel::codellama_like(),
        );
        assert_eq!(run.latency.per_request.len(), 2);
        let zero = &run.latency.per_request[0];
        assert_eq!(zero.tokens, 0);
        // No first token: TTFT falls back to completion time.
        assert_eq!(zero.ttft_ticks, zero.e2e_ticks);
    }
}
