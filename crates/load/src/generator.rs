//! Deterministic open-loop workload generation: seeded arrival
//! processes over the virtual tick clock, and seeded request mixes
//! drawing each arrival's engine, prompt family, budget, and sampling.
//!
//! Open-loop means arrivals do **not** wait for completions: the
//! process fixes every request's arrival tick up front, exactly like
//! independent users hitting a service. Offered load is therefore a
//! property of the workload, not of the server — which is what makes
//! "speculative vs. NTP at *equal offered load*" a fair comparison
//! (the serve-aware Table II in `BENCH_load.json`).

use crate::clock::{LoadRng, VirtualClock};
use verispec_core::DecodeConfig;
use verispec_lm::{Sampling, TokenId};
use verispec_serve::{EngineChoice, Request};
use verispec_tokenizer::BpeTokenizer;

/// The embedded Verilog sources [`PromptFamily::grammar_stress`] cuts
/// prompts from (ASCII-only, so every byte index is a char boundary).
const GRAMMAR_SNIPPETS: &[&str] = &[
    "module and_or(input a, input b, output y);\n  \
     assign y = (a & b) | (a ^ b);\nendmodule\n",
    "module shifter(input [3:0] x, output [3:0] y);\n  \
     assign y = (x << 1) ^ (x >> 2);\nendmodule\n",
    "module dff(input clk, input d, output reg q);\n  \
     always @(posedge clk) begin\n    q <= d;\n  end\nendmodule\n",
    "module mux3(input a, input b, input sel, output y);\n  \
     wire pick = sel ? (a & b) : (a | b);\n  \
     assign y = ~pick;\nendmodule\n",
];

/// A deterministic open-loop arrival process over virtual ticks.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `rate` requests per tick (exponential
    /// inter-arrival gaps) — the classic open-loop baseline.
    Poisson {
        /// Mean requests per tick.
        rate: f64,
    },
    /// Bursty on/off arrivals: Poisson at `rate` during on-windows of
    /// `on_ticks`, silent for `off_ticks` between them (a square-wave
    /// modulated Poisson process).
    OnOff {
        /// Mean requests per tick while the source is on.
        rate: f64,
        /// Length of each on-window in ticks.
        on_ticks: f64,
        /// Length of each off-window in ticks.
        off_ticks: f64,
    },
    /// Load ramp: the instantaneous rate climbs linearly from
    /// `start_rate` to `end_rate` over `ramp_ticks`, then holds
    /// (sampled by Lewis–Shedler thinning against the peak rate, so the
    /// non-homogeneous intensity is exact, not piecewise-approximated).
    Ramp {
        /// Rate at tick 0.
        start_rate: f64,
        /// Rate from `ramp_ticks` onward.
        end_rate: f64,
        /// Ramp duration in ticks.
        ramp_ticks: f64,
    },
}

impl ArrivalProcess {
    /// Human-readable process name.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::OnOff { .. } => "on-off",
            ArrivalProcess::Ramp { .. } => "ramp",
        }
    }

    /// Long-run offered load in requests per tick (the equal-load axis
    /// of the serve-aware Table II; the ramp settles at its end rate).
    pub fn offered_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::OnOff {
                rate,
                on_ticks,
                off_ticks,
            } => rate * on_ticks / (on_ticks + off_ticks).max(f64::MIN_POSITIVE),
            ArrivalProcess::Ramp { end_rate, .. } => end_rate,
        }
    }

    /// The first `n` arrival ticks, deterministically from `seed`
    /// (non-decreasing; several arrivals may share a tick).
    ///
    /// # Panics
    ///
    /// Panics on non-positive rates or window lengths.
    pub fn arrival_ticks(&self, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = LoadRng::new(seed ^ 0xA221_7A1C_0C5E_ED01);
        let mut out = Vec::with_capacity(n);
        match *self {
            ArrivalProcess::Poisson { rate } => {
                let mut clock = VirtualClock::new();
                for _ in 0..n {
                    out.push(clock.advance(rng.exp_gap(rate)));
                }
            }
            ArrivalProcess::OnOff {
                rate,
                on_ticks,
                off_ticks,
            } => {
                assert!(
                    on_ticks > 0.0 && off_ticks >= 0.0,
                    "on/off windows must be positive"
                );
                // Arrivals live in accumulated *on-time*; each is then
                // shifted by the off-time of every full cycle before it.
                let mut on_time = 0.0f64;
                let mut clock = VirtualClock::new();
                for _ in 0..n {
                    on_time += rng.exp_gap(rate);
                    let cycles = (on_time / on_ticks).floor();
                    clock.jump_to(on_time + cycles * off_ticks);
                    out.push(clock.advance(0.0));
                }
            }
            ArrivalProcess::Ramp {
                start_rate,
                end_rate,
                ramp_ticks,
            } => {
                assert!(ramp_ticks > 0.0, "ramp duration must be positive");
                let peak = start_rate.max(end_rate);
                assert!(peak > 0.0, "ramp needs a positive peak rate");
                let rate_at = |t: f64| {
                    let frac = (t / ramp_ticks).clamp(0.0, 1.0);
                    start_rate + (end_rate - start_rate) * frac
                };
                let mut clock = VirtualClock::new();
                while out.len() < n {
                    let tick = clock.advance(rng.exp_gap(peak));
                    // Thinning: keep the candidate with prob rate/peak.
                    if rng.uniform() * peak <= rate_at(clock.now()) {
                        out.push(tick);
                    }
                }
            }
        }
        out
    }
}

/// A named pool of already-encoded prompts with per-prompt decode
/// budgets — e.g. "short comb modules" vs "long seq modules".
#[derive(Debug, Clone)]
pub struct PromptFamily {
    /// Family name (telemetry breakdown key).
    pub name: String,
    /// `(prompt tokens, max_tokens budget)` pairs.
    pub prompts: Vec<(Vec<TokenId>, usize)>,
}

impl PromptFamily {
    /// A Zipf-distributed shared-stem family: `n_stems` random stems of
    /// `stem_len` tokens, and `count` prompts each formed as
    /// `stem ++ unique random suffix` of `suffix_len` tokens, where the
    /// stem for each prompt is drawn with probability ∝ `1/rankᵉ`
    /// (rank 1 = hottest). Because [`Workload`] draws prompts
    /// uniformly from the family list, the Zipf skew is encoded as
    /// *multiplicity*: hot stems simply appear under more prompts.
    ///
    /// This is the fleet-scale prefix-cache workload: a few hot stems
    /// (shared system prompts / module preambles) fan out into many
    /// unique requests, so a radix-tree cache turns the repeated
    /// O(stem) ingestion into O(suffix) on every hit, while cold stems
    /// exercise miss + eviction paths. Tokens are drawn from
    /// `[1, vocab)`; the whole family is a pure function of `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n_stems == 0`, `stem_len == 0`, or `vocab < 2`.
    #[allow(clippy::too_many_arguments)] // workload-shape knobs, all orthogonal
    pub fn zipf_stems(
        name: &str,
        count: usize,
        n_stems: usize,
        stem_len: usize,
        suffix_len: usize,
        exponent: f64,
        budget: usize,
        vocab: u32,
        seed: u64,
    ) -> PromptFamily {
        assert!(n_stems > 0, "need at least one stem");
        assert!(stem_len > 0, "stems must be non-empty");
        assert!(vocab >= 2, "need at least two tokens to draw from");
        let mut rng = LoadRng::new(seed);
        let token = |rng: &mut LoadRng| 1 + rng.below(vocab as usize - 1) as TokenId;
        let stems: Vec<Vec<TokenId>> = (0..n_stems)
            .map(|_| (0..stem_len).map(|_| token(&mut rng)).collect())
            .collect();
        let weights: Vec<f64> = (1..=n_stems)
            .map(|rank| 1.0 / (rank as f64).powf(exponent))
            .collect();
        let prompts = (0..count)
            .map(|_| {
                let mut prompt = stems[rng.weighted(&weights)].clone();
                prompt.extend((0..suffix_len).map(|_| token(&mut rng)));
                (prompt, budget)
            })
            .collect();
        PromptFamily {
            name: name.into(),
            prompts,
        }
    }

    /// The grammar-stress family: prompts are real Verilog sources cut
    /// off at seeded **mid-expression** points (inside an identifier or
    /// number, splitting the lexeme itself) or **mid-statement** points
    /// (between the words of an unfinished statement), then byte-level
    /// BPE encoded. These are the prompts where propose-time lexer
    /// viability does the most work: the continuation must first finish
    /// the severed lexeme or statement before the usual token mass
    /// becomes syntactically possible, so unconstrained candidate trees
    /// are dense with dead tails for the grammar engine to prune.
    ///
    /// The whole family is a pure function of `seed`. Token ids come
    /// from [`BpeTokenizer::byte_level`], so the serving model must have
    /// `vocab >= 261` to score them.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` (an empty family would trip the workload
    /// generator's non-empty-family assertion anyway).
    pub fn grammar_stress(name: &str, count: usize, budget: usize, seed: u64) -> PromptFamily {
        assert!(count > 0, "need at least one prompt");
        let tok = BpeTokenizer::byte_level();
        let mut rng = LoadRng::new(seed ^ 0x6E4A_11E2_57E5_5C01);
        let ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
        let prompts = (0..count)
            .map(|_| {
                let snippet = GRAMMAR_SNIPPETS[rng.below(GRAMMAR_SNIPPETS.len())];
                let bytes = snippet.as_bytes();
                let mid_expression = rng.uniform() < 0.5;
                // Skip the module keyword itself so every prompt at
                // least opens a module before it is severed.
                let cuts: Vec<usize> = (8..bytes.len() - 1)
                    .filter(|&i| {
                        if mid_expression {
                            ident(bytes[i - 1]) && ident(bytes[i])
                        } else {
                            bytes[i - 1] == b' ' && !bytes[i].is_ascii_whitespace()
                        }
                    })
                    .collect();
                let cut = cuts[rng.below(cuts.len())];
                (tok.encode(&snippet[..cut]), budget)
            })
            .collect();
        PromptFamily {
            name: name.into(),
            prompts,
        }
    }
}

/// The seeded distributions one request is drawn from.
#[derive(Debug, Clone)]
pub struct RequestMix {
    /// Weighted engine menu.
    pub engines: Vec<(EngineChoice, f64)>,
    /// Weighted prompt families. The family *index* doubles as the
    /// request's tenant class ([`verispec_serve::Request::class`]), so
    /// multi-tenant scenarios model each tenant as one family and
    /// weight service between them with
    /// [`verispec_serve::FaultPlan::share`].
    pub families: Vec<(PromptFamily, f64)>,
    /// Probability of greedy decoding (otherwise temperature sampling).
    pub greedy_fraction: f64,
    /// Temperature range `[lo, hi)` for sampled requests.
    pub temperature: (f32, f32),
    /// Base decode config (EOS, acceptance); `max_tokens`, `sampling`,
    /// and `seed` are drawn per request.
    pub base: DecodeConfig,
    /// SLO deadline slack as a multiple of the request's decode budget:
    /// each request's deadline is `arrival + ⌈slack · budget⌉` ticks
    /// (an NTP request served alone needs ≈ `budget` ticks, so slack is
    /// "how many times the ideal service time may elapse"). `None`
    /// issues best-effort requests with no deadline.
    pub deadline_slack: Option<f64>,
}

/// A complete open-loop workload: arrival process × request mix, fully
/// determined by its seed.
#[derive(Debug, Clone)]
pub struct Workload {
    /// When requests arrive.
    pub process: ArrivalProcess,
    /// What each request asks for.
    pub mix: RequestMix,
    /// Number of requests.
    pub count: usize,
    /// Master seed (arrivals and mix draw from decorrelated substreams).
    pub seed: u64,
}

impl Workload {
    /// Generates the request sequence (ids `0..count`, arrival ticks
    /// non-decreasing).
    ///
    /// # Panics
    ///
    /// Panics if the mix has no engines or no non-empty family.
    pub fn requests(&self) -> Vec<Request> {
        self.requests_with_engine(None)
    }

    /// Like [`Workload::requests`], but with every request's engine
    /// forced to `engine` — the equal-offered-load A/B the serve-aware
    /// Table II runs (arrivals, prompts, budgets, sampling, and seeds
    /// are all identical across methods because the engine draw is
    /// still consumed from the RNG stream before being overridden).
    ///
    /// # Panics
    ///
    /// Panics if the mix has no engines or no non-empty family.
    pub fn requests_with_engine(&self, engine: Option<&EngineChoice>) -> Vec<Request> {
        self.generate(engine).0
    }

    /// The prompt-family name each request was drawn from (aligned with
    /// [`Workload::requests`] ids).
    pub fn family_names(&self) -> Vec<String> {
        self.generate(None).1
    }

    /// The single draw path behind [`Workload::requests_with_engine`]
    /// and [`Workload::family_names`]: one RNG stream produces the
    /// requests and their family labels together, so the two can never
    /// desync.
    fn generate(&self, engine: Option<&EngineChoice>) -> (Vec<Request>, Vec<String>) {
        let arrivals = self.process.arrival_ticks(self.count, self.seed);
        let mut rng = LoadRng::new(self.seed ^ 0x9E37_79B9_7F4A_7C15);
        let engine_weights: Vec<f64> = self.mix.engines.iter().map(|(_, w)| *w).collect();
        let family_weights: Vec<f64> = self.mix.families.iter().map(|(_, w)| *w).collect();
        arrivals
            .into_iter()
            .enumerate()
            .map(|(i, arrival)| {
                let drawn = &self.mix.engines[rng.weighted(&engine_weights)].0;
                let fam_idx = rng.weighted(&family_weights);
                let family = &self.mix.families[fam_idx].0;
                assert!(
                    !family.prompts.is_empty(),
                    "family {} is empty",
                    family.name
                );
                let (prompt, budget) = &family.prompts[rng.below(family.prompts.len())];
                let sampling = if rng.uniform() < self.mix.greedy_fraction {
                    Sampling::Greedy
                } else {
                    Sampling::Temperature {
                        temperature: rng.range_f32(self.mix.temperature.0, self.mix.temperature.1),
                        top_k: 0,
                    }
                };
                let cfg = DecodeConfig {
                    max_tokens: *budget,
                    sampling,
                    seed: rng.seed(),
                    ..self.mix.base.clone()
                };
                let deadline = self
                    .mix
                    .deadline_slack
                    .map(|slack| arrival + (slack * *budget as f64).ceil() as u64);
                let request = Request {
                    arrival,
                    deadline,
                    ..Request::new(
                        i as u64,
                        prompt.clone(),
                        engine.unwrap_or(drawn).clone(),
                        cfg,
                    )
                }
                .with_class(fam_idx as u32);
                (request, family.name.clone())
            })
            .unzip()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> RequestMix {
        RequestMix {
            engines: vec![
                (EngineChoice::SyntaxAligned { tree: None }, 2.0),
                (EngineChoice::Ntp, 1.0),
            ],
            families: vec![
                (
                    PromptFamily {
                        name: "short".into(),
                        prompts: vec![(vec![1, 2], 6), (vec![3], 4)],
                    },
                    1.0,
                ),
                (
                    PromptFamily {
                        name: "long".into(),
                        prompts: vec![(vec![1, 2, 3, 4, 5], 12)],
                    },
                    1.0,
                ),
            ],
            greedy_fraction: 0.5,
            temperature: (0.4, 0.9),
            base: DecodeConfig::default(),
            deadline_slack: None,
        }
    }

    #[test]
    fn deadline_slack_assigns_absolute_deadlines() {
        let mut w = Workload {
            process: ArrivalProcess::Poisson { rate: 0.5 },
            mix: mix(),
            count: 20,
            seed: 3,
        };
        assert!(w.requests().iter().all(|r| r.deadline.is_none()));
        w.mix.deadline_slack = Some(2.0);
        let requests = w.requests();
        for r in &requests {
            assert_eq!(r.deadline, Some(r.arrival + 2 * r.cfg.max_tokens as u64));
        }
        // Forcing the engine keeps deadlines (equal-offered-load A/B).
        let forced = w.requests_with_engine(Some(&EngineChoice::Ntp));
        for (a, b) in requests.iter().zip(&forced) {
            assert_eq!(a.deadline, b.deadline);
        }
    }

    #[test]
    fn arrivals_are_sorted_and_deterministic() {
        for process in [
            ArrivalProcess::Poisson { rate: 0.3 },
            ArrivalProcess::OnOff {
                rate: 1.0,
                on_ticks: 5.0,
                off_ticks: 20.0,
            },
            ArrivalProcess::Ramp {
                start_rate: 0.05,
                end_rate: 1.0,
                ramp_ticks: 50.0,
            },
        ] {
            let a = process.arrival_ticks(64, 9);
            let b = process.arrival_ticks(64, 9);
            assert_eq!(a, b, "{} not deterministic", process.name());
            assert!(
                a.windows(2).all(|w| w[0] <= w[1]),
                "{} unsorted",
                process.name()
            );
            let c = process.arrival_ticks(64, 10);
            assert_ne!(a, c, "{} ignores its seed", process.name());
        }
    }

    #[test]
    fn poisson_rate_is_respected() {
        let n = 4000;
        let ticks = ArrivalProcess::Poisson { rate: 0.25 }.arrival_ticks(n, 5);
        let span = *ticks.last().expect("nonempty") as f64;
        let rate = n as f64 / span;
        assert!((rate - 0.25).abs() < 0.02, "empirical rate {rate}");
    }

    #[test]
    fn on_off_leaves_silent_windows() {
        let process = ArrivalProcess::OnOff {
            rate: 2.0,
            on_ticks: 10.0,
            off_ticks: 90.0,
        };
        let ticks = process.arrival_ticks(200, 11);
        // Off-windows of 90 ticks must show up as large gaps.
        let max_gap = ticks.windows(2).map(|w| w[1] - w[0]).max().expect("gaps");
        assert!(max_gap >= 80, "no burst gap found (max {max_gap})");
        assert!((process.offered_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn ramp_accelerates() {
        let ticks = ArrivalProcess::Ramp {
            start_rate: 0.02,
            end_rate: 1.0,
            ramp_ticks: 400.0,
        }
        .arrival_ticks(300, 13);
        // The second half of the arrivals spans far less time than the
        // first half.
        let mid = ticks[150] - ticks[0];
        let late = ticks[299] - ticks[150];
        assert!(late * 2 < mid, "ramp did not accelerate ({mid} vs {late})");
    }

    #[test]
    fn forced_engine_changes_nothing_but_the_engine() {
        let w = Workload {
            process: ArrivalProcess::Poisson { rate: 0.5 },
            mix: mix(),
            count: 40,
            seed: 77,
        };
        let free = w.requests();
        let forced = w.requests_with_engine(Some(&EngineChoice::Ntp));
        assert_eq!(free.len(), forced.len());
        let names = w.family_names();
        assert_eq!(names.len(), free.len());
        for (i, (a, b)) in free.iter().zip(&forced).enumerate() {
            let name = &names[i];
            assert_eq!(a.id, b.id);
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.prompt, b.prompt);
            assert_eq!(a.cfg.max_tokens, b.cfg.max_tokens);
            assert_eq!(a.cfg.sampling, b.cfg.sampling);
            assert_eq!(a.cfg.seed, b.cfg.seed);
            assert_eq!(b.engine, EngineChoice::Ntp);
            assert!(name == "short" || name == "long");
        }
        assert!(
            free.iter().any(|r| r.engine != EngineChoice::Ntp),
            "the free draw should use the menu"
        );
    }

    #[test]
    fn grammar_stress_cuts_mid_lexeme_and_stays_deterministic() {
        let fam = PromptFamily::grammar_stress("grammar", 40, 12, 7);
        assert_eq!(fam.prompts.len(), 40);
        let tok = BpeTokenizer::byte_level();
        let mut mid_expression = 0usize;
        let mut mid_statement = 0usize;
        for (prompt, budget) in &fam.prompts {
            assert_eq!(*budget, 12);
            let text = tok.decode(prompt);
            // Every prompt is a strict prefix of one embedded snippet,
            // severed where neither a statement nor the file ends.
            let snippet = GRAMMAR_SNIPPETS
                .iter()
                .find(|s| s.starts_with(&text))
                .expect("prompt is a snippet prefix");
            assert!(text.len() < snippet.len(), "prompt swallowed the snippet");
            assert!(text.starts_with("module "), "prompt lost its module head");
            let last = text.as_bytes()[text.len() - 1];
            let next = snippet.as_bytes()[text.len()];
            let ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
            if ident(last) && ident(next) {
                mid_expression += 1;
            } else {
                assert_eq!(last, b' ', "cut is neither mid-lexeme nor mid-statement");
                mid_statement += 1;
            }
        }
        // The seeded coin actually exercises both cut classes.
        assert!(mid_expression > 0, "no mid-expression cuts drawn");
        assert!(mid_statement > 0, "no mid-statement cuts drawn");
        // Pure function of the seed.
        let again = PromptFamily::grammar_stress("grammar", 40, 12, 7);
        assert_eq!(fam.prompts, again.prompts);
        let other = PromptFamily::grammar_stress("grammar", 40, 12, 8);
        assert_ne!(fam.prompts, other.prompts);
    }

    #[test]
    fn zipf_stems_skews_hot_and_stays_deterministic() {
        let fam = PromptFamily::zipf_stems("zipf", 120, 4, 8, 3, 1.2, 6, 50, 42);
        assert_eq!(fam.prompts.len(), 120);
        assert!(fam
            .prompts
            .iter()
            .all(|(p, budget)| p.len() == 8 + 3 && *budget == 6));
        // Group prompts by their 8-token stem: few distinct stems, and
        // the hottest one dominates (Zipf exponent 1.2 over 4 ranks
        // puts ≈45% of mass on rank 1).
        let mut by_stem: std::collections::BTreeMap<&[TokenId], usize> =
            std::collections::BTreeMap::new();
        for (p, _) in &fam.prompts {
            *by_stem.entry(&p[..8]).or_default() += 1;
        }
        assert!(by_stem.len() <= 4, "more stems than requested");
        let hottest = by_stem.values().max().copied().expect("nonempty");
        assert!(
            hottest * 3 >= fam.prompts.len(),
            "no hot stem emerged ({hottest}/120)"
        );
        // Suffixes make prompts (near-)unique even within one stem.
        let distinct: std::collections::BTreeSet<&Vec<TokenId>> =
            fam.prompts.iter().map(|(p, _)| p).collect();
        assert!(distinct.len() > fam.prompts.len() / 2);
        // Pure function of the seed.
        let again = PromptFamily::zipf_stems("zipf", 120, 4, 8, 3, 1.2, 6, 50, 42);
        assert_eq!(fam.prompts, again.prompts);
        let other = PromptFamily::zipf_stems("zipf", 120, 4, 8, 3, 1.2, 6, 50, 43);
        assert_ne!(fam.prompts, other.prompts);
    }
}
