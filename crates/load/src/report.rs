//! Driving an open-loop workload through the serving stack and
//! packaging the result for `BENCH_load.json`.
//!
//! [`run_open_loop`] is the canonical driver: it feeds a generated
//! request sequence through the streaming-admission path
//! ([`verispec_serve::ServeEngine::run_streaming`]) — arrivals enter
//! via the channel and join mid-flight at their arrival ticks — and
//! returns the serve report together with the aggregated latency
//! telemetry and the measured wall clock. [`LoadBenchRow`] is one line
//! of the serve-aware Table II: one (arrival process, offered load,
//! decoding method) cell with exact p50/p90/p99 TTFT and end-to-end
//! latency.

use crate::telemetry::{LatencyReport, QuantileSummary};
use serde::{Deserialize, Serialize};
use verispec_core::SpecPolicy;
use verispec_lm::{DecodeSession, GpuCostModel, LanguageModel, MlpLm, TokenId};
use verispec_serve::{Request, ServeConfig, ServeEngine, ServeReport};

/// Everything one open-loop run produces.
#[derive(Debug, Clone)]
pub struct LoadRunReport {
    /// The serving engine's completions and counters.
    pub serve: ServeReport,
    /// Aggregated latency telemetry.
    pub latency: LatencyReport,
    /// Measured wall-clock seconds of the whole run.
    pub wall_secs: f64,
}

/// Serves `requests` through the streaming-admission path: every
/// request is sent into the engine's arrival channel (in arrival
/// order, ahead of its arrival tick, so the tick schedule is
/// deterministic and identical to batch [`verispec_serve::serve_all`])
/// and admission happens tick by tick as arrivals fall due. With
/// `prefix_tokens`, a shared prefix session is ingested once and every
/// matching request is admitted from a fork of it.
pub fn run_open_loop(
    model: &MlpLm,
    draft: Option<&dyn LanguageModel>,
    prefix_tokens: Option<&[TokenId]>,
    requests: Vec<Request>,
    cfg: &ServeConfig,
    cost: &GpuCostModel,
) -> LoadRunReport {
    run_open_loop_with_policy(model, draft, prefix_tokens, requests, cfg, cost, None)
}

/// [`run_open_loop`] under an explicit speculation policy (the policy
/// A/B axis of the serve-aware Table II); `None` runs the static
/// default.
pub fn run_open_loop_with_policy(
    model: &MlpLm,
    draft: Option<&dyn LanguageModel>,
    prefix_tokens: Option<&[TokenId]>,
    requests: Vec<Request>,
    cfg: &ServeConfig,
    cost: &GpuCostModel,
    policy: Option<&dyn SpecPolicy>,
) -> LoadRunReport {
    let originals = requests.clone();
    let prefix_session: Option<Box<dyn DecodeSession + '_>> = prefix_tokens.map(|toks| {
        let mut s = model.session();
        s.append(toks);
        s
    });
    let t0 = std::time::Instant::now();
    let mut engine = ServeEngine::new(model, cfg.clone());
    if let Some(d) = draft {
        engine = engine.with_draft(d);
    }
    if let Some(p) = prefix_session.as_deref() {
        engine = engine.with_prefix(p);
    }
    if let Some(p) = policy {
        engine = engine.with_policy(p);
    }
    let (tx, rx) = std::sync::mpsc::channel();
    for req in requests {
        tx.send(req).expect("arrival receiver alive");
    }
    drop(tx);
    let serve = engine.run_streaming(rx, cost);
    let wall_secs = t0.elapsed().as_secs_f64();
    let latency = LatencyReport::new(&originals, &serve.completions);
    LoadRunReport {
        serve,
        latency,
        wall_secs,
    }
}

/// One row of the serve-aware Table II in `BENCH_load.json`: a
/// (process, offered load, method) cell measured under streaming
/// admission at equal offered load across methods.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadBenchRow {
    /// Arrival-process name.
    pub process: String,
    /// Offered load in requests per tick.
    pub offered_rate: f64,
    /// Decoding method served (all requests forced to it).
    pub method: String,
    /// Speculation policy the run was served under
    /// ([`verispec_core::SpecPolicy::name`]; "static" is the
    /// pre-policy behavior).
    pub policy: String,
    /// Per-tick verify capacity the policy divided, if the run was
    /// capacity-gated (`None` = unlimited, the legacy rows).
    pub tick_capacity: Option<usize>,
    /// Requests served.
    pub requests: usize,
    /// Tokens generated.
    pub tokens: usize,
    /// Scheduler ticks worked.
    pub ticks: u64,
    /// Idle ticks the engine fast-forwarded over.
    pub idle_ticks_skipped: u64,
    /// Measured wall-clock seconds of the run.
    pub wall_secs: f64,
    /// Tokens committed per worked tick (service rate).
    pub tokens_per_tick: f64,
    /// Mean tokens per decoding step (speculation effectiveness under
    /// load).
    pub tokens_per_step: f64,
    /// Queueing delay in ticks.
    pub queue_ticks: QuantileSummary,
    /// Time to first token in ticks.
    pub ttft_ticks: QuantileSummary,
    /// End-to-end latency in ticks.
    pub e2e_ticks: QuantileSummary,
    /// Per-token inter-commit gaps in ticks.
    pub gap_ticks: QuantileSummary,
    /// Time to first token in wall seconds.
    pub ttft_secs: QuantileSummary,
    /// End-to-end latency in wall seconds.
    pub e2e_secs: QuantileSummary,
    /// Idle prefix forks evicted by the session cap.
    pub session_evictions: usize,
    /// High-water resident sessions.
    pub peak_resident_sessions: usize,
    /// Preemptions performed.
    pub preemptions: usize,
    /// SLO attainment: fraction of deadline-carrying requests finishing
    /// by their deadline (`None` for best-effort workloads).
    pub slo_attainment: Option<f64>,
    /// Submitted requests carrying a deadline.
    pub deadlines: usize,
    /// Of those, requests that met it.
    pub deadlines_met: usize,
    /// Speculation acceptance rate (`accepted / proposed` candidate
    /// tokens; `None` for NTP rows, which speculate nothing).
    pub acceptance_rate: Option<f64>,
    /// Requests rejected by load-shedding admission control.
    pub shed_requests: usize,
    /// Steps deferred by the per-tick verify capacity.
    pub deferred_steps: u64,
}

impl LoadBenchRow {
    /// Assembles one Table-II row from a run.
    pub fn new(process: &str, offered_rate: f64, method: &str, run: &LoadRunReport) -> Self {
        Self::with_policy(process, offered_rate, method, "static", None, run)
    }

    /// Assembles one policy-A/B row: like [`LoadBenchRow::new`] with
    /// the policy name and per-tick capacity recorded.
    pub fn with_policy(
        process: &str,
        offered_rate: f64,
        method: &str,
        policy: &str,
        tick_capacity: Option<usize>,
        run: &LoadRunReport,
    ) -> Self {
        let stats = &run.serve.stats;
        let steps: usize = run.serve.completions.iter().map(|c| c.output.steps).sum();
        let tokens = run.serve.total_tokens();
        let slo = &run.latency.overall.slo;
        LoadBenchRow {
            process: process.to_string(),
            offered_rate,
            method: method.to_string(),
            policy: policy.to_string(),
            tick_capacity,
            requests: run.serve.completions.len(),
            tokens,
            ticks: stats.ticks,
            idle_ticks_skipped: stats.idle_ticks_skipped,
            wall_secs: run.wall_secs,
            tokens_per_tick: tokens as f64 / (stats.ticks.max(1)) as f64,
            tokens_per_step: tokens as f64 / steps.max(1) as f64,
            queue_ticks: run.latency.overall.queue_ticks,
            ttft_ticks: run.latency.overall.ttft_ticks,
            e2e_ticks: run.latency.overall.e2e_ticks,
            gap_ticks: run.latency.overall.gap_ticks,
            ttft_secs: run.latency.overall.ttft_secs,
            e2e_secs: run.latency.overall.e2e_secs,
            session_evictions: stats.session_evictions,
            peak_resident_sessions: stats.peak_resident_sessions,
            preemptions: stats.preemptions,
            slo_attainment: slo.attainment(),
            deadlines: slo.deadlines,
            deadlines_met: slo.met,
            acceptance_rate: run.latency.overall.acceptance.rate(),
            shed_requests: stats.shed_requests,
            deferred_steps: stats.deferred_steps,
        }
    }
}
