//! Driving an open-loop workload through the serving stack and
//! packaging the result for `BENCH_load.json`.
//!
//! [`run_open_loop`] is the canonical driver: it feeds a generated
//! request sequence through the streaming-admission path
//! ([`verispec_serve::ServeEngine::run_streaming`]) — arrivals enter
//! via the channel and join mid-flight at their arrival ticks — and
//! returns the serve report together with the aggregated latency
//! telemetry and the measured wall clock. [`run_fleet_open_loop`] is
//! its multi-worker sibling over a [`verispec_serve::FleetRuntime`]
//! fleet — backend-selectable (lockstep oracle or threaded runtime)
//! and optionally fault-injected ([`verispec_serve::FaultPlan`]) —
//! with [`run_dispatch_open_loop`] / [`run_dispatch_open_loop_threaded`]
//! as fault-free conveniences. [`LoadBenchRow`] is one line
//! of the serve-aware Table II: one (arrival process, offered load,
//! decoding method — and, for dispatched runs, worker count × routing
//! policy) cell with exact p50/p90/p99 TTFT and end-to-end latency,
//! plus recovery columns (crashes, migrations, replay tokens,
//! recovery-window TTFT p99) for fault-injected cells.

use crate::telemetry::{LatencyQuantiles, LatencyReport, QuantileSummary};
use serde::{Deserialize, Serialize};
use verispec_core::SpecPolicy;
use verispec_lm::{GpuCostModel, LanguageModel, MlpLm, TokenId};
use verispec_serve::{
    Backend, DispatchConfig, DispatchReport, Drive, FaultPlan, FleetRuntime, Request, ServeConfig,
    ServeEngine, ServeReport,
};
use verispec_trace::{EventKind, EventLog, TraceEvent};

/// Everything one open-loop run produces.
#[derive(Debug, Clone)]
pub struct LoadRunReport {
    /// The serving engine's completions and counters.
    pub serve: ServeReport,
    /// Aggregated latency telemetry.
    pub latency: LatencyReport,
    /// Measured wall-clock seconds of the whole run.
    pub wall_secs: f64,
    /// The full structured event stream of the run, in emission order
    /// (deterministic in tick space — see [`verispec_trace`]).
    pub events: Vec<TraceEvent>,
}

/// Serves `requests` through the streaming-admission path: every
/// request is sent into the engine's arrival channel (in arrival
/// order, ahead of its arrival tick, so the tick schedule is
/// deterministic and identical to batch [`verispec_serve::serve_all`])
/// and admission happens tick by tick as arrivals fall due. With
/// `prefix_tokens`, the engine's radix-tree prefix cache is enabled
/// and pre-warmed with the stem, so every matching request is admitted
/// from a copy-on-write fork of the cached node (this used to be
/// bespoke shared-prefix-session plumbing; the trie subsumes it and
/// additionally caches every *other* stem the workload repeats).
pub fn run_open_loop(
    model: &MlpLm,
    draft: Option<&dyn LanguageModel>,
    prefix_tokens: Option<&[TokenId]>,
    requests: Vec<Request>,
    cfg: &ServeConfig,
    cost: &GpuCostModel,
) -> LoadRunReport {
    run_open_loop_with_policy(model, draft, prefix_tokens, requests, cfg, cost, None)
}

/// [`run_open_loop`] under an explicit speculation policy (the policy
/// A/B axis of the serve-aware Table II); `None` runs the static
/// default.
pub fn run_open_loop_with_policy(
    model: &MlpLm,
    draft: Option<&dyn LanguageModel>,
    prefix_tokens: Option<&[TokenId]>,
    requests: Vec<Request>,
    cfg: &ServeConfig,
    cost: &GpuCostModel,
    policy: Option<&dyn SpecPolicy>,
) -> LoadRunReport {
    let originals = requests.clone();
    let mut cfg = cfg.clone();
    cfg.prefix_cache |= prefix_tokens.is_some();
    let log = EventLog::new();
    let t0 = std::time::Instant::now();
    let mut engine = ServeEngine::new(model, cfg).with_sink(&log);
    if let Some(d) = draft {
        engine = engine.with_draft(d);
    }
    if let Some(toks) = prefix_tokens {
        engine.warm_prefix(toks);
    }
    if let Some(p) = policy {
        engine = engine.with_policy(p);
    }
    let (tx, rx) = std::sync::mpsc::channel();
    for req in requests {
        tx.send(req).expect("arrival receiver alive");
    }
    drop(tx);
    let serve = engine.run_streaming(rx, cost);
    let wall_secs = t0.elapsed().as_secs_f64();
    let latency =
        LatencyReport::new(&originals, &serve.completions).attach_prefix_stats(&serve.stats);
    LoadRunReport {
        serve,
        latency,
        wall_secs,
        events: log.into_events(),
    }
}

/// Everything one dispatched open-loop run produces.
#[derive(Debug, Clone)]
pub struct DispatchRunReport {
    /// The fleet's completions, merged + per-worker counters, and the
    /// realized routing.
    pub dispatch: DispatchReport,
    /// Aggregated latency telemetry, per-worker breakdown included.
    pub latency: LatencyReport,
    /// Measured wall-clock seconds of the whole run.
    pub wall_secs: f64,
    /// The fleet's full structured event stream, in emission order
    /// (routing decisions interleaved with per-worker lifecycles).
    pub events: Vec<TraceEvent>,
}

/// The multi-worker sibling of [`run_open_loop`], built on the
/// [`FleetRuntime`] facade: serves `requests` through a fleet's
/// *paced* drive ([`Drive::Paced`] — each request is routed exactly
/// when its arrival tick falls due, so load-aware routing sees live
/// queue depths and the whole run stays deterministic), optionally
/// under a failure scenario (`plan`: deterministic worker
/// crash/restart events and tenant shares), then joins the merged
/// completions with the realized routing into a dispatcher-aware
/// [`LatencyReport`]. `backend` selects the lockstep oracle or the
/// thread-per-worker runtime; both produce bit-identical tick-space
/// results (the proptest-pinned parity invariant), so the backend
/// choice only changes the wall-clock measurement. `events` carries
/// the canonical fleet stream for either backend (routing and fault
/// lifecycle first, then per-worker lifecycles by worker id).
#[allow(clippy::too_many_arguments)] // driver glue mirroring run_open_loop_with_policy
pub fn run_fleet_open_loop(
    model: &MlpLm,
    draft: Option<&(dyn LanguageModel + Sync)>,
    prefix_tokens: Option<&[TokenId]>,
    requests: Vec<Request>,
    cfg: &ServeConfig,
    dcfg: &DispatchConfig,
    cost: &GpuCostModel,
    policy: Option<&dyn SpecPolicy>,
    plan: &FaultPlan,
    backend: Backend,
) -> DispatchRunReport {
    let originals = requests.clone();
    let mut cfg = cfg.clone();
    cfg.prefix_cache |= prefix_tokens.is_some();
    let t0 = std::time::Instant::now();
    let mut rt = FleetRuntime::new(model, cfg, dcfg.workers, dcfg.route.clone(), backend)
        .with_tracing()
        .with_fault_plan(plan.clone());
    if let Some(d) = draft {
        rt = rt.with_draft(d);
    }
    if let Some(toks) = prefix_tokens {
        rt = rt.warm_prefix(toks);
    }
    if let Some(p) = policy {
        rt = rt.with_policy(p);
    }
    let run = rt.run(Drive::Paced(requests), cost);
    let wall_secs = t0.elapsed().as_secs_f64();
    let dispatch = run.report;
    let latency =
        LatencyReport::with_assignments(&originals, &dispatch.completions, &dispatch.assignments)
            .attach_prefix_stats(&dispatch.stats);
    DispatchRunReport {
        dispatch,
        latency,
        wall_secs,
        events: run.events,
    }
}

/// Fault-free lockstep convenience over [`run_fleet_open_loop`];
/// prefer the facade directly for new call sites (it exposes the
/// fault plan and the backend choice).
#[allow(clippy::too_many_arguments)] // driver glue mirroring run_open_loop_with_policy
pub fn run_dispatch_open_loop(
    model: &MlpLm,
    draft: Option<&(dyn LanguageModel + Sync)>,
    prefix_tokens: Option<&[TokenId]>,
    requests: Vec<Request>,
    cfg: &ServeConfig,
    dcfg: &DispatchConfig,
    cost: &GpuCostModel,
    policy: Option<&dyn SpecPolicy>,
) -> DispatchRunReport {
    run_fleet_open_loop(
        model,
        draft,
        prefix_tokens,
        requests,
        cfg,
        dcfg,
        cost,
        policy,
        &FaultPlan::none(),
        Backend::Lockstep,
    )
}

/// Fault-free threaded convenience over [`run_fleet_open_loop`]; the
/// identical workload as [`run_dispatch_open_loop`] served through
/// the thread-per-worker runtime, adding a *wall-clock* measurement
/// of the concurrent runtime which the bench harness records next to
/// the lockstep wall time. Prefer the facade directly for new call
/// sites.
#[allow(clippy::too_many_arguments)] // driver glue mirroring run_dispatch_open_loop
pub fn run_dispatch_open_loop_threaded(
    model: &MlpLm,
    draft: Option<&(dyn LanguageModel + Sync)>,
    prefix_tokens: Option<&[TokenId]>,
    requests: Vec<Request>,
    cfg: &ServeConfig,
    dcfg: &DispatchConfig,
    cost: &GpuCostModel,
    policy: Option<&dyn SpecPolicy>,
) -> DispatchRunReport {
    run_fleet_open_loop(
        model,
        draft,
        prefix_tokens,
        requests,
        cfg,
        dcfg,
        cost,
        policy,
        &FaultPlan::none(),
        Backend::Threaded,
    )
}

/// One row of the serve-aware Table II in `BENCH_load.json`: a
/// (process, offered load, method) cell measured under streaming
/// admission at equal offered load across methods.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadBenchRow {
    /// Arrival-process name.
    pub process: String,
    /// Offered load in requests per tick.
    pub offered_rate: f64,
    /// Decoding method served (all requests forced to it).
    pub method: String,
    /// Speculation policy the run was served under
    /// ([`verispec_core::SpecPolicy::name`]; "static" is the
    /// pre-policy behavior).
    pub policy: String,
    /// Per-tick verify capacity the policy divided, if the run was
    /// capacity-gated (`None` = unlimited, the legacy rows).
    pub tick_capacity: Option<usize>,
    /// Dispatch workers the run was served on (1 = the single fused
    /// engine, no dispatcher).
    pub workers: usize,
    /// Routing policy of dispatched runs
    /// ([`verispec_serve::RoutePolicy::name`]; "single" = no
    /// dispatcher).
    pub route: String,
    /// Requests routed to each worker, by worker index (served and
    /// shed alike — routing happens before admission control), so the
    /// entries always sum to `requests + shed_requests`. Single-engine
    /// rows have the one entry.
    pub worker_requests: Vec<usize>,
    /// Whether the run's parity assertion (streamed == batch for
    /// single-engine rows; every completion == serial decode for
    /// dispatched rows) passed before the row was recorded. Rows are
    /// only constructed after the assertion, so this is always `true`
    /// in an honestly produced artifact — the bench guard trips if it
    /// is ever not.
    pub parity: bool,
    /// Requests served.
    pub requests: usize,
    /// Tokens generated.
    pub tokens: usize,
    /// Scheduler ticks worked.
    pub ticks: u64,
    /// Idle ticks the engine fast-forwarded over.
    pub idle_ticks_skipped: u64,
    /// Measured wall-clock seconds of the run.
    pub wall_secs: f64,
    /// Tokens committed per worked tick (service rate).
    pub tokens_per_tick: f64,
    /// Mean tokens per decoding step (speculation effectiveness under
    /// load).
    pub tokens_per_step: f64,
    /// The six latency distributions ([`LatencyQuantiles`] — shared
    /// with the telemetry summaries instead of copied field by field).
    pub quantiles: LatencyQuantiles,
    /// Idle prefix forks evicted by the session cap.
    pub session_evictions: usize,
    /// High-water resident sessions.
    pub peak_resident_sessions: usize,
    /// Preemptions performed.
    pub preemptions: usize,
    /// SLO attainment: fraction of deadline-carrying requests finishing
    /// by their deadline (`None` for best-effort workloads).
    pub slo_attainment: Option<f64>,
    /// Submitted requests carrying a deadline.
    pub deadlines: usize,
    /// Of those, requests that met it.
    pub deadlines_met: usize,
    /// Speculation acceptance rate (`accepted / proposed` candidate
    /// tokens; `None` for NTP rows, which speculate nothing).
    pub acceptance_rate: Option<f64>,
    /// Requests rejected by load-shedding admission control.
    pub shed_requests: usize,
    /// Steps deferred by the per-tick verify capacity.
    pub deferred_steps: u64,
    /// Prefix-cache admissions that forked a cached stem (0 when the
    /// cache is off).
    #[serde(default)]
    pub prefix_hits: usize,
    /// Prefix-cache admissions that ingested from scratch.
    #[serde(default)]
    pub prefix_misses: usize,
    /// Cache hit rate (`hits / (hits + misses)`; `None` when the cache
    /// never saw an admission — i.e. it was off).
    #[serde(default)]
    pub prefix_hit_rate: Option<f64>,
    /// Prompt tokens whose ingestion the cache skipped (sum of matched
    /// prefix depths over all hits).
    #[serde(default)]
    pub prefix_tokens_saved: usize,
    /// Cached stems dropped by cap-charged LRU eviction.
    #[serde(default)]
    pub prefix_evictions: usize,
    /// High-water resident trie nodes holding a session (fleet maximum
    /// for dispatched rows).
    #[serde(default)]
    pub peak_resident_nodes: usize,
    /// Candidate tokens proposed, summed from the event stream's
    /// per-request `Finished` events (must agree with the counter-based
    /// acceptance telemetry — the bench guard cross-checks).
    #[serde(default)]
    pub event_proposed_tokens: usize,
    /// Candidate tokens accepted, summed from the same `Finished`
    /// events.
    #[serde(default)]
    pub event_accepted_tokens: usize,
    /// Requests whose `Finished` event violated the per-request
    /// `accepted <= proposed` invariant. Always 0 in an honestly
    /// produced artifact; the bench guard trips otherwise.
    #[serde(default)]
    pub event_accept_violations: usize,
    /// Measured wall-clock seconds of the same cell served through the
    /// threaded runtime ([`run_dispatch_open_loop_threaded`]), recorded
    /// next to the lockstep `wall_secs` so tick-space and wall-time
    /// columns sit side by side. `None` for cells the threaded sweep
    /// does not cover (single-engine and trace-replay rows).
    #[serde(default)]
    pub threaded_wall_secs: Option<f64>,
    /// Whether the threaded run reproduced the lockstep run exactly —
    /// schedule ([`DispatchReport::same_schedule`]) and canonical event
    /// stream both. Like `parity`, rows are only recorded after the
    /// assertion, so an honest artifact always says `Some(true)`; the
    /// bench guard trips otherwise. `None` where `threaded_wall_secs`
    /// is `None`.
    #[serde(default)]
    pub threaded_parity: Option<bool>,
    /// Worker crashes the run's [`FaultPlan`] fired (0 for fault-free
    /// cells).
    #[serde(default)]
    pub worker_crashes: usize,
    /// Requests migrated off crashed workers (re-routed through the
    /// live fleet and rebuilt by exact replay).
    #[serde(default)]
    pub migrations: usize,
    /// Tokens re-decoded while rebuilding migrated sessions — the
    /// recovery work the fault plan cost the fleet.
    #[serde(default)]
    pub replay_tokens: usize,
    /// Exact p99 TTFT (ticks) over the fault-affected completions —
    /// those that were migrated or deferred under backpressure — i.e.
    /// the recovery-window tail. `None` when no completion was
    /// fault-affected (fault-free cells, or plans that touched no
    /// in-flight work).
    #[serde(default)]
    pub recovery_ttft_p99: Option<f64>,
}

impl LoadBenchRow {
    /// Assembles one Table-II row from a run.
    pub fn new(process: &str, offered_rate: f64, method: &str, run: &LoadRunReport) -> Self {
        Self::with_policy(process, offered_rate, method, "static", None, run)
    }

    /// Assembles one policy-A/B row: like [`LoadBenchRow::new`] with
    /// the policy name and per-tick capacity recorded.
    pub fn with_policy(
        process: &str,
        offered_rate: f64,
        method: &str,
        policy: &str,
        tick_capacity: Option<usize>,
        run: &LoadRunReport,
    ) -> Self {
        let stats = &run.serve.stats;
        let steps: usize = run.serve.completions.iter().map(|c| c.output.steps).sum();
        let tokens = run.serve.total_tokens();
        let slo = &run.latency.overall.slo;
        let (event_proposed_tokens, event_accepted_tokens, event_accept_violations) =
            fold_finished(&run.events);
        LoadBenchRow {
            process: process.to_string(),
            offered_rate,
            method: method.to_string(),
            policy: policy.to_string(),
            tick_capacity,
            workers: 1,
            route: "single".to_string(),
            worker_requests: vec![run.serve.completions.len() + stats.shed_requests],
            parity: true,
            requests: run.serve.completions.len(),
            tokens,
            ticks: stats.ticks,
            idle_ticks_skipped: stats.idle_ticks_skipped,
            wall_secs: run.wall_secs,
            tokens_per_tick: tokens as f64 / (stats.ticks.max(1)) as f64,
            tokens_per_step: tokens as f64 / steps.max(1) as f64,
            quantiles: run.latency.overall.quantiles,
            session_evictions: stats.session_evictions,
            peak_resident_sessions: stats.peak_resident_sessions,
            preemptions: stats.preemptions,
            slo_attainment: slo.attainment(),
            deadlines: slo.deadlines,
            deadlines_met: slo.met,
            acceptance_rate: run.latency.overall.acceptance.rate(),
            shed_requests: stats.shed_requests,
            deferred_steps: stats.deferred_steps,
            prefix_hits: stats.prefix_hits,
            prefix_misses: stats.prefix_misses,
            prefix_hit_rate: prefix_hit_rate(stats),
            prefix_tokens_saved: stats.prefix_tokens_saved,
            prefix_evictions: stats.prefix_evictions,
            peak_resident_nodes: stats.peak_resident_nodes,
            event_proposed_tokens,
            event_accepted_tokens,
            event_accept_violations,
            threaded_wall_secs: None,
            threaded_parity: None,
            worker_crashes: 0,
            migrations: 0,
            replay_tokens: 0,
            recovery_ttft_p99: None,
        }
    }

    /// Assembles one row of the worker-count × route-policy sweep from
    /// a dispatched run. `ticks` is the fleet's longest worker
    /// schedule ([`verispec_serve::ServeStats::merge`]), so
    /// `tokens_per_tick` reads as fleet throughput against wall-clock
    /// ticks, and `worker_requests` shows how the policy spread the
    /// load.
    pub fn for_dispatch(
        process: &str,
        offered_rate: f64,
        method: &str,
        route: &str,
        run: &DispatchRunReport,
    ) -> Self {
        let stats = &run.dispatch.stats;
        let steps: usize = run
            .dispatch
            .completions
            .iter()
            .map(|c| c.output.steps)
            .sum();
        let tokens = run.dispatch.total_tokens();
        let slo = &run.latency.overall.slo;
        let (event_proposed_tokens, event_accepted_tokens, event_accept_violations) =
            fold_finished(&run.events);
        let workers = run.dispatch.per_worker.len();
        let mut worker_requests = vec![0usize; workers];
        for &(_, w) in &run.dispatch.assignments {
            worker_requests[w] += 1;
        }
        LoadBenchRow {
            process: process.to_string(),
            offered_rate,
            method: method.to_string(),
            policy: "static".to_string(),
            tick_capacity: None,
            workers,
            route: route.to_string(),
            worker_requests,
            parity: true,
            requests: run.dispatch.completions.len(),
            tokens,
            ticks: stats.ticks,
            idle_ticks_skipped: stats.idle_ticks_skipped,
            wall_secs: run.wall_secs,
            tokens_per_tick: tokens as f64 / (stats.ticks.max(1)) as f64,
            tokens_per_step: tokens as f64 / steps.max(1) as f64,
            quantiles: run.latency.overall.quantiles,
            session_evictions: stats.session_evictions,
            peak_resident_sessions: stats.peak_resident_sessions,
            preemptions: stats.preemptions,
            slo_attainment: slo.attainment(),
            deadlines: slo.deadlines,
            deadlines_met: slo.met,
            acceptance_rate: run.latency.overall.acceptance.rate(),
            shed_requests: stats.shed_requests,
            deferred_steps: stats.deferred_steps,
            prefix_hits: stats.prefix_hits,
            prefix_misses: stats.prefix_misses,
            prefix_hit_rate: prefix_hit_rate(stats),
            prefix_tokens_saved: stats.prefix_tokens_saved,
            prefix_evictions: stats.prefix_evictions,
            peak_resident_nodes: stats.peak_resident_nodes,
            event_proposed_tokens,
            event_accepted_tokens,
            event_accept_violations,
            threaded_wall_secs: None,
            threaded_parity: None,
            worker_crashes: stats.crashes,
            migrations: stats.migrations,
            replay_tokens: stats.replayed_tokens,
            recovery_ttft_p99: recovery_ttft_p99(run),
        }
    }

    /// Attaches the threaded-runtime measurement to a dispatched row:
    /// the threaded run's wall clock and whether it reproduced the
    /// lockstep run exactly (callers assert parity *before* recording,
    /// so an honest artifact always passes `true`).
    pub fn with_threaded(mut self, wall_secs: f64, parity: bool) -> Self {
        self.threaded_wall_secs = Some(wall_secs);
        self.threaded_parity = Some(parity);
        self
    }
}

/// Exact p99 TTFT over the fault-affected completions of a dispatched
/// run: requests the event stream saw migrated off a crashed worker or
/// deferred under whole-fleet backpressure. `None` when no completion
/// was fault-affected.
fn recovery_ttft_p99(run: &DispatchRunReport) -> Option<f64> {
    let affected: std::collections::BTreeSet<u64> = run
        .events
        .iter()
        .filter(|ev| {
            matches!(
                ev.kind,
                EventKind::Migrated { .. } | EventKind::Backpressure
            )
        })
        .filter_map(|ev| ev.request)
        .collect();
    let ttfts: Vec<f64> = run
        .dispatch
        .completions
        .iter()
        .filter(|c| affected.contains(&c.id))
        .filter_map(|c| {
            c.step_ticks
                .first()
                .map(|&t| t.saturating_sub(c.submitted) as f64)
        })
        .collect();
    (!ttfts.is_empty()).then(|| QuantileSummary::exact(&ttfts).p99)
}

/// `hits / (hits + misses)`, or `None` when the cache saw no
/// admissions (disabled, or the run had no fresh requests).
fn prefix_hit_rate(stats: &verispec_serve::ServeStats) -> Option<f64> {
    let total = stats.prefix_hits + stats.prefix_misses;
    (total > 0).then(|| stats.prefix_hits as f64 / total as f64)
}

/// Folds the event stream's per-request `Finished` events into
/// `(proposed, accepted, violations)`: lifetime candidate-token sums
/// plus the count of requests violating `accepted <= proposed`.
fn fold_finished(events: &[TraceEvent]) -> (usize, usize, usize) {
    let mut proposed_sum = 0;
    let mut accepted_sum = 0;
    let mut violations = 0;
    for ev in events {
        if let EventKind::Finished {
            proposed, accepted, ..
        } = ev.kind
        {
            proposed_sum += proposed;
            accepted_sum += accepted;
            if accepted > proposed {
                violations += 1;
            }
        }
    }
    (proposed_sum, accepted_sum, violations)
}
