//! `verispec-load`: open-loop load generation, streaming-admission
//! driving, and latency-percentile telemetry — the measurement layer of
//! the serving stack.
//!
//! # Why open-loop
//!
//! `verispec-serve`'s throughput sweep (`BENCH_serve.json`) answers
//! "how fast does the engine chew through a fixed batch?" — a
//! *closed-loop* question: new work only appears when old work
//! finishes. Production traffic is *open-loop*: arrivals come from
//! independent users on their own clock, keep coming while the server
//! is busy, and the number that matters is **per-request latency at a
//! given offered load** — especially the tail (p99), where queueing
//! turns small throughput differences into large waiting times. The
//! "Speculative Decoding: Performance or Illusion?" question from
//! PAPERS.md is exactly this: single-stream speedups can evaporate (or
//! compound) once requests compete, so the paper's Table II speed
//! claims should be re-measured as TTFT/p99 at equal offered load —
//! which is what `BENCH_load.json` reports.
//!
//! # The serving stack
//!
//! ```text
//!   verispec-load                 verispec-serve              verispec-lm
//!   ─────────────                 ──────────────              ───────────
//!   ArrivalProcess ─┐
//!   (poisson/on-off/│ Workload::requests()
//!    ramp, seeded)  ├──────────► [Request; n] ── mpsc ─► Dispatcher
//!   RequestMix ─────┘  arrival ticks + mixes            (RoutePolicy:
//!   (engine/family —     │ + deadlines                   rr / jsq /
//!    incl. Zipf shared   ▼ (deadline_slack)              least-loaded /
//!    stems — budget/  ArrivalTrace                       pinned replay /
//!    sampling/slack)  (JSON record/replay,               prefix-affine)
//!                      bit-identical; CI           │ route per arrival
//!                      replays tests/traces/)      ▼ (probes caches)
//!                                              drain_arrivals ×N workers
//!                                              (per tick, joins
//!                                               mid-flight; shed
//!                                               overflow per worker)
//!                                                  │
//!                                    ServeEngine tick loop (per worker)
//!                                    admission → PrefixCache (radix
//!                                      trie: fork deepest stem, ingest
//!                                      suffix only, insert-on-miss,
//!                                      cap-charged LRU eviction)
//!                                    → scheduler (EDF…)
//!                                    → SpecPolicy divides the
//!                                      per-tick verify capacity
//!                                    → fused propose/verify →
//!                                    commit (step_ticks)
//!                                                  │
//!                      run_fleet_open_loop ── one FleetRuntime facade
//!                      (Drive::Paced + optional FaultPlan: trace-
//!                       specified CrashWorker/RestartWorker ticks and
//!                       per-tenant ClassShare weighted-fair shares;
//!                       on crash, stranded requests re-route through
//!                       the live Router and rebuild by exact replay —
//!                       token-identical to the fault-free run; with
//!                       the whole fleet dark, arrivals defer under
//!                       Backpressure and flush at restart) over two
//!                      backends with the same semantics:
//!                      ├─ Backend::Lockstep ── oracle (one
//!                      │   coordinator thread ticks every engine in
//!                      │   rounds) — run_dispatch_open_loop is the
//!                      │   fault-free convenience
//!                      └─ Backend::Threaded ── true parallel runtime
//!                          (thread per worker, mpsc Submit/Tick/
//!                          Probe/Drain protocol, barrier-free drain)
//!                          — tick-for-tick identical reports (faults
//!                          included), so the bench records both wall
//!                          clocks side by side (threaded_wall_secs
//!                          column) with a per-cell parity assertion
//!                                                  │
//!   LatencyReport ◄──────────── Completion{output, step_ticks, secs,
//!   queueing/TTFT/gaps/e2e,                deadline, proposed/accepted}
//!   exact p50/p90/p99                     (+ DispatchReport assignments)
//!   (LatencyQuantiles),
//!   SLO attainment + acceptance     LoadBenchRow (BENCH_load.json:
//!   per engine + per worker         serve-aware Table II, spec vs NTP
//!   (dispatcher-aware SLO),  ─────► at equal offered load + the policy
//!   PrefixCacheSummary              A/B static/adaptive/budgeted + the
//!   (hits/saved/depth hist)         dispatch sweep workers × route +
//!                                   the Zipf-stem cache sweep +
//!                                   event-derived acceptance columns)
//!
//!   verispec-trace ◄── every run: the drivers attach an EventLog, so
//!   tick-stamped TraceEvents       LoadRunReport/DispatchRunReport
//!   (submit/route/admit/step/      carry `events` next to the latency
//!    defer/evict/shed/finish/      telemetry → MetricsRegistry, Chrome
//!    batch/budget)                 trace export (`trace_view` bin),
//!                                  flame report, and the golden
//!                                  event-log CI replay
//!                                  (tests/traces/*.events.json)
//! ```
//!
//! * [`ArrivalProcess`] — seeded Poisson, bursty on/off, and ramp
//!   arrival processes over the virtual tick clock ([`VirtualClock`]
//!   quantizes continuous inter-arrival gaps to engine ticks without
//!   drift).
//! * [`Workload`] / [`RequestMix`] — draws each request's engine,
//!   prompt family, budget, and sampling from seeded distributions;
//!   [`Workload::requests_with_engine`] forces one engine while keeping
//!   arrivals/prompts/budgets/seeds identical — the equal-offered-load
//!   A/B.
//! * [`run_open_loop`] — feeds the workload through the streaming
//!   admission channel and collects [`LatencyReport`]: per-request
//!   queueing delay, TTFT, per-token inter-commit gaps, and end-to-end
//!   latency in ticks and wall-clock, aggregated into exact-quantile
//!   p50/p90/p99 summaries ([`QuantileSummary`], grouped as
//!   [`LatencyQuantiles`]) plus per-engine breakdowns.
//! * [`run_fleet_open_loop`] — the multi-worker sibling, over the
//!   [`verispec_serve::FleetRuntime`] facade: the same workload served
//!   through a worker fleet under a selectable backend
//!   ([`verispec_serve::Backend::Lockstep`] oracle or
//!   [`verispec_serve::Backend::Threaded`] thread-per-worker runtime —
//!   proptest-pinned bit-identical in tick space, so the backend only
//!   changes the wall clock) and an optional
//!   [`verispec_serve::FaultPlan`] (deterministic worker
//!   crash/restart schedules plus per-tenant weighted-fair shares).
//!   The realized routing joins back into a per-worker telemetry
//!   breakdown (each worker's [`SloSummary`] counts the deadlines *it*
//!   dropped, so bad routing shows up where it happened), and
//!   fault-injected cells grow recovery columns in `BENCH_load.json`:
//!   `worker_crashes` / `migrations` / `replay_tokens` /
//!   `recovery_ttft_p99` (exact p99 TTFT over the migrated or
//!   backpressure-deferred completions). [`run_dispatch_open_loop`] /
//!   [`run_dispatch_open_loop_threaded`] remain as fault-free
//!   conveniences pinned to one backend each; `threaded_wall_secs` /
//!   `threaded_parity` record the two wall clocks side by side.
//! * [`LoadBenchRow`] — one cell of the serve-aware Table II
//!   (single-engine, policy-A/B, and dispatch-sweep rows alike),
//!   including event-derived acceptance columns
//!   (`event_proposed_tokens` / `event_accepted_tokens` /
//!   `event_accept_violations`) folded from the run's `Finished`
//!   events — the bench guard cross-checks them against the
//!   per-request `accepted <= proposed` invariant.
//! * **Event capture** — both drivers run their engine (or fleet)
//!   with a collecting [`verispec_trace::EventLog`] attached, so
//!   every [`LoadRunReport`] / [`DispatchRunReport`] carries the
//!   run's full deterministic event stream: render it with the
//!   `trace_view` bin, export it with
//!   [`verispec_trace::chrome_trace`], or diff it against a committed
//!   golden log (`tests/event_log.rs` pins the `eviction_churn`
//!   trace's stream byte-for-byte; `tests/proptest_events.rs` pins
//!   stream determinism across runs and drives, and that collecting
//!   the stream has zero observer effect).
//!
//! # The invariant, extended
//!
//! Streaming admission inherits the serving invariant: per-request
//! outputs are bit-identical to batch `serve_all` *and* to the serial
//! single-session engines, under any arrival process, session cap, or
//! eviction pressure — and when every arrival is sent before its tick
//! falls due, the entire tick schedule (admissions, commit ticks,
//! latencies) matches the batch run too. `tests/proptest_streaming.rs`
//! pins both properties.
//!
//! # Example
//!
//! ```
//! use verispec_core::DecodeConfig;
//! use verispec_lm::{GpuCostModel, MlpLm, MlpLmConfig};
//! use verispec_load::{
//!     run_open_loop, ArrivalProcess, PromptFamily, RequestMix, Workload,
//! };
//! use verispec_serve::{EngineChoice, ServeConfig};
//!
//! let model = MlpLm::new(MlpLmConfig::tiny(16));
//! let workload = Workload {
//!     process: ArrivalProcess::Poisson { rate: 0.5 },
//!     mix: RequestMix {
//!         engines: vec![(EngineChoice::MedusaChain, 1.0), (EngineChoice::Ntp, 1.0)],
//!         families: vec![(
//!             PromptFamily { name: "tiny".into(), prompts: vec![(vec![1, 2], 6)] },
//!             1.0,
//!         )],
//!         greedy_fraction: 1.0,
//!         temperature: (0.4, 0.9),
//!         base: DecodeConfig::default(),
//!         deadline_slack: None,
//!     },
//!     count: 8,
//!     seed: 7,
//! };
//! let run = run_open_loop(
//!     &model,
//!     None,
//!     None,
//!     workload.requests(),
//!     &ServeConfig::concurrency(4),
//!     &GpuCostModel::codellama_like(),
//! );
//! assert_eq!(run.serve.completions.len(), 8);
//! assert_eq!(run.latency.overall.requests, 8);
//! ```

#![deny(missing_docs)]

pub mod clock;
pub mod generator;
pub mod report;
pub mod telemetry;
pub mod trace;

pub use clock::{LoadRng, VirtualClock};
pub use generator::{ArrivalProcess, PromptFamily, RequestMix, Workload};
pub use report::{
    run_dispatch_open_loop, run_dispatch_open_loop_threaded, run_fleet_open_loop, run_open_loop,
    run_open_loop_with_policy, DispatchRunReport, LoadBenchRow, LoadRunReport,
};
pub use telemetry::{
    per_token_gaps, AcceptanceSummary, LatencyQuantiles, LatencyReport, LatencySummary,
    PrefixCacheSummary, QuantileSummary, RequestLatency, SloSummary,
};
pub use trace::{ArrivalTrace, TraceEntry};
