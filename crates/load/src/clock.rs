//! The virtual arrival clock and the seeded draws behind the workload
//! generators.
//!
//! Arrival processes live in *continuous* virtual time (inter-arrival
//! gaps are real-valued exponentials); the serving engine schedules in
//! *discrete* ticks. [`VirtualClock`] owns that bridge: it accumulates
//! fractional gaps and quantizes each arrival instant up to the tick
//! that has fully begun by then, so the discretization error never
//! drifts (each arrival is rounded from the exact continuous time, not
//! from the previous rounded tick). [`LoadRng`] wraps the workspace's
//! deterministic PRNG with the handful of distributions the generators
//! draw from — everything downstream is a pure function of the seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic random source for workload generation.
pub struct LoadRng {
    rng: SmallRng,
}

impl LoadRng {
    /// A generator seeded from `seed` (same seed → same workload).
    pub fn new(seed: u64) -> Self {
        LoadRng {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Exponential inter-arrival gap with the given rate (mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exp_gap(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "arrival rate must be positive, got {rate}");
        // Inverse-CDF; 1 - u avoids ln(0).
        -(1.0 - self.uniform()).ln() / rate
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// Uniform `u64` (request seeds).
    pub fn seed(&mut self) -> u64 {
        self.rng.gen::<u64>()
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        if hi <= lo {
            return lo;
        }
        self.rng.gen_range(lo..hi)
    }

    /// Index drawn from the (unnormalized, non-negative) `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weighted draw needs a positive total weight"
        );
        let mut pick = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            if pick < w {
                return i;
            }
            pick -= w;
        }
        weights.len() - 1
    }
}

/// Continuous virtual time quantized to serving ticks.
#[derive(Debug, Clone, Copy, Default)]
pub struct VirtualClock {
    now: f64,
}

impl VirtualClock {
    /// A clock at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current continuous virtual time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances by `gap` continuous time units and returns the arrival
    /// tick: the first engine tick that has fully begun by the new
    /// instant (ticks are 1-based in the serving engine; an arrival in
    /// `(t-1, t]` lands on tick `t`, and anything at or before the run
    /// start is tick 0 — immediately admissible).
    pub fn advance(&mut self, gap: f64) -> u64 {
        self.now += gap.max(0.0);
        self.now.ceil().max(0.0) as u64
    }

    /// Jumps directly to continuous time `to` (used by on/off gating;
    /// no-op when already past).
    pub fn jump_to(&mut self, to: f64) {
        if to > self.now {
            self.now = to;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_quantizes_without_drift() {
        let mut c = VirtualClock::new();
        assert_eq!(c.advance(0.4), 1);
        assert_eq!(c.advance(0.4), 1); // 0.8 still within tick 1
        assert_eq!(c.advance(0.4), 2); // 1.2
        assert!((c.now() - 1.2).abs() < 1e-12);
        c.jump_to(10.0);
        assert_eq!(c.advance(0.0), 10);
        c.jump_to(5.0); // never rewinds
        assert!((c.now() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn exp_gaps_have_the_right_mean() {
        let mut rng = LoadRng::new(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exp_gap(0.25)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean {mean} far from 1/rate");
    }

    #[test]
    fn weighted_draws_follow_the_weights() {
        let mut rng = LoadRng::new(3);
        let mut counts = [0usize; 3];
        for _ in 0..9_000 {
            counts[rng.weighted(&[1.0, 2.0, 0.0])] += 1;
        }
        assert_eq!(counts[2], 0);
        assert!(counts[1] > counts[0]);
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((ratio - 2.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u64> = {
            let mut r = LoadRng::new(42);
            (0..16).map(|_| r.seed()).collect()
        };
        let b: Vec<u64> = {
            let mut r = LoadRng::new(42);
            (0..16).map(|_| r.seed()).collect()
        };
        assert_eq!(a, b);
    }
}
