//! Property tests pinning the tracing layer's two contracts:
//!
//! 1. **Determinism** — for random open-loop workloads and scheduler
//!    configurations, the serialized event stream is byte-identical
//!    across repeated replays of the same [`ArrivalTrace`], and across
//!    the batch and (up-front-fed) streaming drives.
//! 2. **Zero observer effect** — attaching a collecting sink changes
//!    nothing: every completion's tokens, tick schedule, and the
//!    aggregate [`ServeStats`] equal the default no-op-sink run's,
//!    bit for bit. And the [`MetricsRegistry`] folded from the event
//!    stream agrees with the engine's hand-counted stats wherever the
//!    two overlap, so the two views of a run can never diverge.

use proptest::prelude::*;
use verispec_core::DecodeConfig;
use verispec_grammar::GrammarOracle;
use verispec_lm::{GpuCostModel, LanguageModel, MlpLm, MlpLmConfig, NgramLm, TokenId};
use verispec_load::{ArrivalProcess, PromptFamily, RequestMix, Workload};
use verispec_serve::{EngineChoice, Request, ServeConfig, ServeEngine, ServeReport, TickOrder};
use verispec_tokenizer::BpeTokenizer;
use verispec_trace::{log_to_json, EventLog, MetricsRegistry, TraceEvent};

/// The shared byte-level grammar oracle the random mixes' `GrammarTree`
/// requests prune against (built once — it is a pure function of the
/// byte-level tokenizer).
fn byte_oracle() -> &'static GrammarOracle {
    static ORACLE: std::sync::OnceLock<GrammarOracle> = std::sync::OnceLock::new();
    ORACLE.get_or_init(|| GrammarOracle::from_tokenizer(&BpeTokenizer::byte_level()))
}

fn any_mlp() -> impl Strategy<Value = MlpLm> {
    (14usize..28, 2usize..6, 2usize..5, 0usize..4, any::<u64>()).prop_map(
        |(vocab, d_emb, context, n_heads, seed)| {
            MlpLm::new(MlpLmConfig {
                vocab,
                d_emb,
                d_hidden: 2 * d_emb,
                context,
                n_heads,
                seed,
            })
        },
    )
}

fn any_process() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        (0.05f64..2.0).prop_map(|rate| ArrivalProcess::Poisson { rate }),
        (0.2f64..3.0, 2.0f64..8.0, 1.0f64..20.0).prop_map(|(rate, on, off)| {
            ArrivalProcess::OnOff {
                rate,
                on_ticks: on,
                off_ticks: off,
            }
        }),
    ]
}

fn full_mix(deadline_slack: Option<f64>) -> RequestMix {
    RequestMix {
        engines: vec![
            (EngineChoice::Ntp, 1.0),
            (EngineChoice::MedusaChain, 1.0),
            (EngineChoice::MedusaTree(vec![2, 2]), 1.0),
            (
                EngineChoice::SyntaxAligned {
                    tree: Some(vec![2, 2]),
                },
                1.0,
            ),
            (EngineChoice::DraftVerify { gamma: 3 }, 1.0),
            (
                EngineChoice::GrammarTree {
                    tree: Some(vec![2, 2]),
                },
                1.0,
            ),
        ],
        families: vec![
            (
                PromptFamily {
                    name: "short".into(),
                    prompts: vec![(vec![5, 6, 7], 5), (vec![5, 6, 8], 8)],
                },
                2.0,
            ),
            (
                PromptFamily {
                    name: "long".into(),
                    prompts: vec![(vec![5, 6, 9, 4, 7], 14), (vec![5, 6, 4, 4, 8, 9], 12)],
                },
                1.0,
            ),
        ],
        greedy_fraction: 0.5,
        temperature: (0.4, 1.1),
        base: DecodeConfig::default(),
        deadline_slack,
    }
}

/// Batch-drives the requests through an engine riding the prefix
/// cache warmed with `stem` (the successor of the retired engine-held
/// `with_prefix` plumbing), capturing the event stream when `log` is
/// given (the no-op default otherwise).
fn batch_run(
    model: &MlpLm,
    draft: &NgramLm,
    stem: &[TokenId],
    cfg: &ServeConfig,
    requests: &[Request],
    cost: &GpuCostModel,
    log: Option<&EventLog>,
) -> ServeReport {
    let oracle = byte_oracle();
    let cfg = ServeConfig {
        prefix_cache: true,
        ..cfg.clone()
    };
    let mut engine = ServeEngine::new(model, cfg)
        .with_draft(draft)
        .with_grammar(oracle);
    engine.warm_prefix(stem);
    if let Some(log) = log {
        engine = engine.with_sink(log);
    }
    for req in requests {
        engine.submit(req.clone());
    }
    engine.run(cost)
}

/// Streaming-drives the requests with every arrival sent up front
/// (the deterministic drive `run_open_loop` uses), warmed identically
/// to [`batch_run`].
fn streaming_run(
    model: &MlpLm,
    draft: &NgramLm,
    stem: &[TokenId],
    cfg: &ServeConfig,
    requests: &[Request],
    cost: &GpuCostModel,
    log: &EventLog,
) -> ServeReport {
    let cfg = ServeConfig {
        prefix_cache: true,
        ..cfg.clone()
    };
    let mut engine = ServeEngine::new(model, cfg)
        .with_draft(draft)
        .with_grammar(byte_oracle())
        .with_sink(log);
    engine.warm_prefix(stem);
    let (tx, rx) = std::sync::mpsc::channel();
    for req in requests {
        tx.send(req.clone()).expect("receiver alive");
    }
    drop(tx);
    engine.run_streaming(rx, cost)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same workload, same config: byte-identical serialized event
    /// logs across repeated batch replays and across the batch vs
    /// up-front-fed streaming drives.
    #[test]
    fn event_stream_is_deterministic_across_runs_and_drives(
        model in any_mlp(),
        draft_seq in prop::collection::vec(4u32..12, 12..60),
        process in any_process(),
        count in 1usize..8,
        seed in any::<u64>(),
        max_active in 1usize..5,
        max_batch in 1usize..4,
        preempt in prop_oneof![Just(None), (1u64..4).prop_map(Some)],
        session_cap in prop_oneof![Just(None), (1usize..5).prop_map(Some)],
        tick_capacity in prop_oneof![Just(None), (2usize..24).prop_map(Some)],
        deadline_slack in prop_oneof![Just(None), (1.0f64..6.0).prop_map(Some)],
    ) {
        let mut draft = NgramLm::new(2, model.vocab_size());
        draft.train_sequence(&draft_seq);
        let cost = GpuCostModel::codellama_like();
        let workload = Workload { process, mix: full_mix(deadline_slack), count, seed };
        let requests = workload.requests();

        let shared: Vec<TokenId> = vec![5, 6];

        let cfg = ServeConfig {
            max_active,
            max_batch,
            order: TickOrder::RoundRobin,
            preempt_wait: preempt,
            fuse: true,
            session_cap,
            tick_capacity,
            ..Default::default()
        };

        let log_a = EventLog::new();
        batch_run(&model, &draft, &shared, &cfg, &requests, &cost, Some(&log_a));
        let log_b = EventLog::new();
        batch_run(&model, &draft, &shared, &cfg, &requests, &cost, Some(&log_b));
        let json_a = log_to_json(&log_a.into_events());
        prop_assert_eq!(
            &json_a,
            &log_to_json(&log_b.into_events()),
            "event stream not deterministic across identical batch replays"
        );

        let log_s = EventLog::new();
        streaming_run(&model, &draft, &shared, &cfg, &requests, &cost, &log_s);
        prop_assert_eq!(
            &json_a,
            &log_to_json(&log_s.into_events()),
            "event stream diverged between batch and streaming drives"
        );
    }

    /// Attaching a collecting sink has zero observer effect (the
    /// no-op-sink run is the exact pre-tracing code path), and the
    /// registry folded from the captured stream agrees with the
    /// engine's hand-counted stats on every shared counter.
    #[test]
    fn collecting_sink_is_invisible_and_registry_matches_stats(
        model in any_mlp(),
        draft_seq in prop::collection::vec(4u32..12, 12..60),
        process in any_process(),
        count in 1usize..8,
        seed in any::<u64>(),
        max_active in 1usize..5,
        shed_depth in prop_oneof![Just(None), (1usize..4).prop_map(Some)],
        session_cap in prop_oneof![Just(None), (1usize..5).prop_map(Some)],
        tick_capacity in prop_oneof![Just(None), (2usize..24).prop_map(Some)],
        deadline_slack in prop_oneof![Just(None), (1.0f64..6.0).prop_map(Some)],
    ) {
        let mut draft = NgramLm::new(2, model.vocab_size());
        draft.train_sequence(&draft_seq);
        let cost = GpuCostModel::codellama_like();
        let workload = Workload { process, mix: full_mix(deadline_slack), count, seed };
        let requests = workload.requests();

        let shared: Vec<TokenId> = vec![5, 6];

        let cfg = ServeConfig {
            shed_depth,
            session_cap,
            tick_capacity,
            ..ServeConfig::concurrency(max_active)
        };

        let silent = batch_run(&model, &draft, &shared, &cfg, &requests, &cost, None);
        let log = EventLog::new();
        let traced = batch_run(&model, &draft, &shared, &cfg, &requests, &cost, Some(&log));
        let events: Vec<TraceEvent> = log.into_events();

        // Bit-identical run: tokens, schedules, shedding, counters.
        prop_assert_eq!(&silent.stats, &traced.stats, "sink changed the stats");
        prop_assert_eq!(&silent.shed, &traced.shed, "sink changed shedding");
        prop_assert_eq!(silent.completions.len(), traced.completions.len());
        for (a, b) in silent.completions.iter().zip(&traced.completions) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(
                &a.output.tokens, &b.output.tokens,
                "request {} tokens diverged under a collecting sink", a.id
            );
            prop_assert_eq!(&a.step_ticks, &b.step_ticks, "request {} schedule", a.id);
            prop_assert_eq!(a.finished, b.finished);
        }

        // Registry/stats consistency: one stream, two folds, same
        // numbers wherever they overlap.
        let reg = MetricsRegistry::from_events(&events);
        let s = &traced.stats;
        prop_assert_eq!(reg.counter("requests.finished") as usize, traced.completions.len());
        prop_assert_eq!(reg.counter("requests.shed") as usize, s.shed_requests);
        prop_assert_eq!(reg.counter("requests.preempted") as usize, s.preemptions);
        prop_assert_eq!(reg.counter("prefix.hits") as usize, s.prefix_hits);
        prop_assert_eq!(reg.counter("prefix.misses") as usize, s.prefix_misses);
        prop_assert_eq!(reg.counter("prefix.tokens_saved") as usize, s.prefix_tokens_saved);
        prop_assert_eq!(reg.counter("evictions.forks") as usize, s.session_evictions);
        prop_assert_eq!(reg.counter("evictions.prefix") as usize, s.prefix_evictions);
        prop_assert_eq!(reg.counter("steps.deferred"), s.deferred_steps);
        prop_assert_eq!(reg.counter("ticks.idle_skipped"), s.idle_ticks_skipped);
        prop_assert_eq!(reg.counter("finished.tokens") as usize, s.served_tokens);
        prop_assert_eq!(reg.counter("finished.proposed") as usize, s.proposed_tokens);
        prop_assert_eq!(reg.counter("finished.accepted") as usize, s.accepted_tokens);
        prop_assert_eq!(reg.counter("grammar.considered") as usize, s.grammar_considered);
        prop_assert_eq!(reg.counter("grammar.pruned") as usize, s.grammar_pruned);
        prop_assert_eq!(reg.counter("grammar.surviving") as usize, s.grammar_surviving);
        prop_assert_eq!(
            s.grammar_considered,
            s.grammar_pruned + s.grammar_surviving,
            "grammar prune accounting drifted in the event stream"
        );
        prop_assert!(
            reg.counter("finished.accepted") <= reg.counter("finished.proposed"),
            "lifetime accepted exceeded proposed in the event stream"
        );
    }
}
