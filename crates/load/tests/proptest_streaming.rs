//! Property tests pinning the streaming-admission invariant: for
//! random open-loop workloads (arrival process, rates, request mixes
//! over every engine), random scheduler configurations, random session
//! caps (eviction pressure), and prefix-forked admissions, serving the
//! workload through the arrival channel produces **token-for-token**
//! the same per-request outputs as batch `serve_all`-style submission —
//! and, when every arrival is sent before its tick falls due, the same
//! tick schedule (admissions, commit ticks, completion ticks) as well.

use proptest::prelude::*;
use verispec_core::DecodeConfig;
use verispec_lm::{GpuCostModel, LanguageModel, MlpLm, MlpLmConfig, NgramLm, TokenId};
use verispec_load::{ArrivalProcess, PromptFamily, RequestMix, Workload};
use verispec_serve::{
    DispatchConfig, Dispatcher, EngineChoice, Request, RoutePolicy, ServeConfig, ServeEngine,
    ServeReport, TickOrder,
};

fn any_mlp() -> impl Strategy<Value = MlpLm> {
    (14usize..32, 2usize..8, 2usize..6, 0usize..5, any::<u64>()).prop_map(
        |(vocab, d_emb, context, n_heads, seed)| {
            MlpLm::new(MlpLmConfig {
                vocab,
                d_emb,
                d_hidden: 2 * d_emb,
                context,
                n_heads,
                seed,
            })
        },
    )
}

fn any_process() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        (0.05f64..2.0).prop_map(|rate| ArrivalProcess::Poisson { rate }),
        (0.2f64..3.0, 2.0f64..8.0, 1.0f64..20.0).prop_map(|(rate, on, off)| {
            ArrivalProcess::OnOff {
                rate,
                on_ticks: on,
                off_ticks: off,
            }
        }),
        (0.02f64..0.5, 0.5f64..3.0, 5.0f64..40.0).prop_map(|(a, b, d)| ArrivalProcess::Ramp {
            start_rate: a,
            end_rate: b,
            ramp_ticks: d,
        }),
    ]
}

fn any_order() -> impl Strategy<Value = TickOrder> {
    prop_oneof![
        Just(TickOrder::RoundRobin),
        Just(TickOrder::ShortestFirst),
        any::<u64>().prop_map(TickOrder::Seeded),
        Just(TickOrder::Edf),
    ]
}

/// The standard mix: every engine on the menu, two prompt families
/// sharing the `[5, 6]` prefix the tests fork from.
fn full_mix() -> RequestMix {
    RequestMix {
        engines: vec![
            (EngineChoice::Ntp, 1.0),
            (EngineChoice::MedusaChain, 1.0),
            (EngineChoice::MedusaTree(vec![2, 2]), 1.0),
            (EngineChoice::SyntaxAligned { tree: None }, 1.0),
            (
                EngineChoice::SyntaxAligned {
                    tree: Some(vec![2, 2]),
                },
                1.0,
            ),
            (EngineChoice::DraftVerify { gamma: 3 }, 1.0),
        ],
        families: vec![
            (
                PromptFamily {
                    name: "short".into(),
                    prompts: vec![(vec![5, 6, 7], 5), (vec![5, 6, 8], 8)],
                },
                2.0,
            ),
            (
                PromptFamily {
                    name: "long".into(),
                    prompts: vec![(vec![5, 6, 9, 4, 7], 16), (vec![5, 6, 4, 4, 8, 9], 12)],
                },
                1.0,
            ),
        ],
        greedy_fraction: 0.5,
        temperature: (0.4, 1.1),
        base: DecodeConfig::default(),
        deadline_slack: None,
    }
}

/// Builds an engine riding the radix-tree prefix cache, pre-warmed
/// with the shared stem (the successor of the retired engine-held
/// `with_prefix` plumbing) — applied identically to the batch and
/// streaming sides so the parity assertions compare like with like.
fn engine_for<'m>(
    model: &'m MlpLm,
    draft: &'m NgramLm,
    stem: &[TokenId],
    cfg: &ServeConfig,
) -> ServeEngine<'m> {
    let cfg = ServeConfig {
        prefix_cache: true,
        ..cfg.clone()
    };
    let mut engine = ServeEngine::new(model, cfg).with_draft(draft);
    engine.warm_prefix(stem);
    engine
}

fn batch_run(
    model: &MlpLm,
    draft: &NgramLm,
    stem: &[TokenId],
    cfg: &ServeConfig,
    requests: &[Request],
    cost: &GpuCostModel,
) -> ServeReport {
    let mut engine = engine_for(model, draft, stem, cfg);
    for req in requests {
        engine.submit(req.clone());
    }
    engine.run(cost)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// Upfront-fed streaming == batch, tick for tick.
    #[test]
    fn streaming_equals_batch_schedule_and_outputs(
        model in any_mlp(),
        draft_seq in prop::collection::vec(4u32..12, 12..60),
        process in any_process(),
        count in 1usize..8,
        seed in any::<u64>(),
        max_active in 1usize..5,
        max_batch in 1usize..4,
        order in any_order(),
        preempt in prop_oneof![Just(None), (1u64..4).prop_map(Some)],
        session_cap in prop_oneof![Just(None), (1usize..5).prop_map(Some)],
        tick_capacity in prop_oneof![Just(None), (2usize..24).prop_map(Some)],
        deadline_slack in prop_oneof![Just(None), (1.0f64..6.0).prop_map(Some)],
    ) {
        let mut draft = NgramLm::new(2, model.vocab_size());
        draft.train_sequence(&draft_seq);
        let cost = GpuCostModel::codellama_like();
        let mut mix = full_mix();
        mix.deadline_slack = deadline_slack;
        let workload = Workload { process, mix, count, seed };
        let requests = workload.requests();

        let shared: Vec<TokenId> = vec![5, 6];

        let cfg = ServeConfig {
            max_active,
            max_batch,
            order,
            preempt_wait: preempt,
            fuse: true,
            session_cap,
            tick_capacity,
            ..Default::default()
        };
        let batch = batch_run(&model, &draft, &shared, &cfg, &requests, &cost);

        let (tx, rx) = std::sync::mpsc::channel();
        for req in &requests {
            tx.send(req.clone()).expect("receiver alive");
        }
        drop(tx);
        let streamed = engine_for(&model, &draft, &shared, &cfg).run_streaming(rx, &cost);

        prop_assert_eq!(batch.completions.len(), requests.len());
        prop_assert_eq!(streamed.completions.len(), requests.len());
        for (a, b) in batch.completions.iter().zip(&streamed.completions) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(
                &a.output.tokens, &b.output.tokens,
                "request {} tokens diverged between batch and streaming", a.id
            );
            prop_assert_eq!(a.output.steps, b.output.steps);
            prop_assert_eq!(&a.output.trace, &b.output.trace);
            prop_assert_eq!(a.submitted, b.submitted);
            prop_assert_eq!(a.admitted, b.admitted, "request {} admission tick", a.id);
            prop_assert_eq!(a.finished, b.finished);
            prop_assert_eq!(&a.step_ticks, &b.step_ticks, "request {} commit ticks", a.id);
            prop_assert_eq!(a.max_service_gap, b.max_service_gap);
            prop_assert_eq!(a.preemptions, b.preemptions);
        }
        prop_assert_eq!(batch.stats.ticks, streamed.stats.ticks);
        prop_assert_eq!(batch.stats.session_evictions, streamed.stats.session_evictions);
        prop_assert_eq!(batch.stats.preemptions, streamed.stats.preemptions);
    }

    /// A live sender racing the engine: admission timing may drift, but
    /// per-request outputs never do.
    #[test]
    fn racing_sender_preserves_outputs(
        model in any_mlp(),
        draft_seq in prop::collection::vec(4u32..12, 12..60),
        process in any_process(),
        count in 1usize..7,
        seed in any::<u64>(),
        max_active in 1usize..4,
        session_cap in prop_oneof![Just(None), (1usize..4).prop_map(Some)],
    ) {
        let mut draft = NgramLm::new(2, model.vocab_size());
        draft.train_sequence(&draft_seq);
        let cost = GpuCostModel::codellama_like();
        let workload = Workload { process, mix: full_mix(), count, seed };
        let requests = workload.requests();

        let shared: Vec<TokenId> = vec![5, 6];

        let cfg = ServeConfig {
            session_cap,
            ..ServeConfig::concurrency(max_active)
        };
        let batch = batch_run(&model, &draft, &shared, &cfg, &requests, &cost);

        let (tx, rx) = std::sync::mpsc::channel();
        let to_send = requests.clone();
        let streamed = std::thread::scope(|s| {
            s.spawn(move || {
                for req in to_send {
                    if tx.send(req).is_err() {
                        break;
                    }
                }
            });
            engine_for(&model, &draft, &shared, &cfg).run_streaming(rx, &cost)
        });

        prop_assert_eq!(streamed.completions.len(), requests.len());
        for (a, b) in batch.completions.iter().zip(&streamed.completions) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(
                &a.output.tokens, &b.output.tokens,
                "request {} tokens diverged under a racing sender", a.id
            );
            prop_assert_eq!(&a.output.trace, &b.output.trace);
        }
    }

    /// Several live senders racing each other into a multi-worker
    /// dispatcher: send interleaving — and therefore routing — is
    /// nondeterministic, but every request's output still equals the
    /// batch single-engine run's (itself pinned token-identical to the
    /// serial engines), under any worker count and routing policy.
    #[test]
    fn racing_multi_sender_multi_worker_preserves_outputs(
        model in any_mlp(),
        draft_seq in prop::collection::vec(4u32..12, 12..60),
        process in any_process(),
        count in 1usize..7,
        seed in any::<u64>(),
        workers in 1usize..4,
        route in prop_oneof![
            Just(RoutePolicy::RoundRobin),
            Just(RoutePolicy::JoinShortestQueue),
            Just(RoutePolicy::LeastLoaded),
            Just(RoutePolicy::PrefixAffine),
        ],
        n_senders in 2usize..4,
        max_active in 1usize..4,
    ) {
        let mut draft = NgramLm::new(2, model.vocab_size());
        draft.train_sequence(&draft_seq);
        let cost = GpuCostModel::codellama_like();
        let workload = Workload { process, mix: full_mix(), count, seed };
        let requests = workload.requests();

        let shared: Vec<TokenId> = vec![5, 6];

        let cfg = ServeConfig::concurrency(max_active);
        let batch = batch_run(&model, &draft, &shared, &cfg, &requests, &cost);

        let (tx, rx) = std::sync::mpsc::channel();
        // Stripe the requests across racing sender threads; the mpsc
        // channel interleaves them nondeterministically.
        let stripes: Vec<Vec<Request>> = (0..n_senders)
            .map(|s| {
                requests
                    .iter()
                    .skip(s)
                    .step_by(n_senders)
                    .cloned()
                    .collect()
            })
            .collect();
        let dispatched = std::thread::scope(|scope| {
            for stripe in stripes {
                let tx = tx.clone();
                scope.spawn(move || {
                    for req in stripe {
                        if tx.send(req).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            // The fleet rides the radix-tree prefix cache warmed with
            // the same shared stem as the batch engine — outputs must
            // agree regardless of routing.
            let fleet_cfg = ServeConfig { prefix_cache: true, ..cfg.clone() };
            let mut d = Dispatcher::new(
                &model,
                fleet_cfg,
                DispatchConfig::new(workers, route.clone()),
            )
            .with_draft(&draft);
            d.warm_prefix(&shared);
            d.run_streaming(rx, &cost)
        });

        prop_assert_eq!(dispatched.completions.len(), requests.len());
        prop_assert_eq!(dispatched.assignments.len(), requests.len());
        prop_assert!(dispatched
            .assignments
            .iter()
            .all(|&(_, w)| w < workers));
        for (a, b) in batch.completions.iter().zip(&dispatched.completions) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(
                &a.output.tokens, &b.output.tokens,
                "request {} tokens diverged under racing senders x {} workers ({})",
                a.id, workers, route.name()
            );
            prop_assert_eq!(&a.output.trace, &b.output.trace);
        }
    }
}
