//! Trace-replay regression corpus: committed "interesting"
//! [`ArrivalTrace`] JSONs under `tests/traces/` — a tail-latency
//! blowup, a shed storm, eviction churn, EDF deadline pressure, a
//! grammar-stress mix of severed Verilog prompts, and three
//! production-failure fleet scenarios (a worker crash with recovery, a
//! whole-fleet crash storm riding backpressure, and a noisy-neighbor
//! multi-tenant mix under skewed weighted shares) — each replayed
//! against a pinned engine configuration and asserted
//! **bit-identical** to its committed golden summary
//! (`tests/traces/goldens.json`: completions, shed count, total
//! committed tokens, tick schedule length, evictions, deadlines met,
//! and — for the failure scenarios — the golden recovery counters:
//! crashes, restarts, migrations, replayed tokens, backpressure
//! deferrals).
//!
//! The serving engine is a deterministic function of its requests, so
//! any diff here is a real behavior change: either an intended one
//! (regenerate the goldens and review the diff) or a regression this
//! corpus just caught. The traces themselves are artifacts, not
//! generated fixtures — the replay path reads only the committed
//! JSONs, never the workload generators, so generator changes cannot
//! silently rewrite what CI replays.
//!
//! Regenerate after an intended behavior change with:
//!
//! ```text
//! cargo test -p verispec-load --test trace_corpus -- --ignored regenerate
//! ```

use serde::{Deserialize, Serialize};
use verispec_core::DecodeConfig;
use verispec_grammar::GrammarOracle;
use verispec_lm::{GpuCostModel, LanguageModel, MlpLm, MlpLmConfig, NgramLm, TokenId};
use verispec_load::{ArrivalProcess, ArrivalTrace, PromptFamily, RequestMix, Workload};
use verispec_serve::{
    Backend, Drive, EngineChoice, FaultPlan, FleetRuntime, RoutePolicy, ServeConfig, ServeEngine,
    ServeReport, TickOrder,
};
use verispec_tokenizer::BpeTokenizer;

/// The pinned model every trace replays against (pure seeded f32
/// math — identical on every machine).
fn model() -> MlpLm {
    MlpLm::new(MlpLmConfig {
        vocab: 16,
        d_emb: 6,
        d_hidden: 12,
        context: 4,
        n_heads: 3,
        seed: 0xC0FFEE,
    })
}

/// The pinned model the grammar-stress trace replays against: its
/// vocab covers the full byte-level tokenizer (261 ids) so the
/// grammar-stress family's encoded Verilog prompts are in range.
fn byte_model() -> MlpLm {
    MlpLm::new(MlpLmConfig {
        vocab: 261,
        d_emb: 6,
        d_hidden: 12,
        context: 4,
        n_heads: 3,
        seed: 0x6EA2_C0DE,
    })
}

/// The pinned draft model for `DraftVerify` entries.
fn draft() -> NgramLm {
    let mut lm = NgramLm::new(2, 16);
    let seq: Vec<TokenId> = (0..240).map(|i| 4 + (i % 7) as TokenId).collect();
    lm.train_sequence(&seq);
    lm
}

/// The shared prompt prefix of the corpus mixes (forked at admission
/// in the eviction trace).
const SHARED_PREFIX: [TokenId; 2] = [5, 6];

/// One corpus case: the committed trace, the engine configuration it
/// replays under, and (for regeneration only) the workload that drew
/// it.
struct TraceCase {
    name: &'static str,
    cfg: ServeConfig,
    /// Replay with the shared-prefix session forked per matching
    /// request at submit time.
    with_prefix: bool,
    /// Replay against [`byte_model`] with the byte-level
    /// [`GrammarOracle`] attached (the grammar-stress case).
    grammar: bool,
    /// Replay through a [`FleetRuntime`] fleet of this many workers
    /// under this routing policy instead of a single engine (the
    /// production-failure cases). The replayed fault plan comes from
    /// the *committed trace*, not from here.
    fleet: Option<(usize, RoutePolicy)>,
    /// The failure scenario stamped into the trace at regeneration
    /// ([`ArrivalTrace::with_faults`]); replay reads it back from the
    /// committed JSON.
    faults: FaultPlan,
    workload: Workload,
}

fn corpus_mix(deadline_slack: Option<f64>) -> RequestMix {
    RequestMix {
        engines: vec![
            (EngineChoice::Ntp, 1.0),
            (EngineChoice::MedusaChain, 1.0),
            (EngineChoice::MedusaTree(vec![2, 2]), 1.0),
            (
                EngineChoice::SyntaxAligned {
                    tree: Some(vec![2, 2]),
                },
                2.0,
            ),
            (EngineChoice::DraftVerify { gamma: 3 }, 1.0),
        ],
        families: vec![
            (
                PromptFamily {
                    name: "short".into(),
                    prompts: vec![(vec![5, 6, 7], 6), (vec![5, 6, 8], 9)],
                },
                2.0,
            ),
            (
                PromptFamily {
                    name: "long".into(),
                    prompts: vec![(vec![5, 6, 9, 4, 7], 16), (vec![5, 6, 4, 4, 8, 9], 13)],
                },
                1.0,
            ),
        ],
        greedy_fraction: 0.5,
        temperature: (0.4, 1.0),
        base: DecodeConfig::default(),
        deadline_slack,
    }
}

fn corpus() -> Vec<TraceCase> {
    vec![
        // A 2x-overload Poisson burst against a 2-slot pool: queueing
        // dominates, the latency tail blows up — the canonical "did a
        // scheduling change move the tail?" regression probe.
        TraceCase {
            name: "tail_blowup",
            cfg: ServeConfig::concurrency(2),
            with_prefix: false,
            grammar: false,
            fleet: None,
            faults: FaultPlan::none(),
            workload: Workload {
                process: ArrivalProcess::Poisson { rate: 2.0 },
                mix: corpus_mix(None),
                count: 24,
                seed: 0x7A11_B10B,
            },
        },
        // On/off bursts into a single-slot pool with a shallow
        // ready-queue: admission control must shed the same newest
        // arrivals at the same ticks, every time.
        TraceCase {
            name: "shed_storm",
            cfg: ServeConfig {
                max_active: 1,
                max_batch: 1,
                shed_depth: Some(2),
                ..Default::default()
            },
            with_prefix: false,
            grammar: false,
            fleet: None,
            faults: FaultPlan::none(),
            workload: Workload {
                process: ArrivalProcess::OnOff {
                    rate: 3.0,
                    on_ticks: 4.0,
                    off_ticks: 30.0,
                },
                mix: corpus_mix(None),
                count: 20,
                seed: 0x5EED_5707,
            },
        },
        // Steady arrivals whose prefix forks overflow a tight session
        // cap: the LRU eviction / exact-replay path churns constantly
        // and must never change an output.
        TraceCase {
            name: "eviction_churn",
            cfg: ServeConfig {
                session_cap: Some(3),
                ..ServeConfig::concurrency(2)
            },
            with_prefix: true,
            grammar: false,
            fleet: None,
            faults: FaultPlan::none(),
            workload: Workload {
                process: ArrivalProcess::Poisson { rate: 1.0 },
                mix: corpus_mix(None),
                count: 18,
                seed: 0xE71C_7C00,
            },
        },
        // Zipf-distributed shared stems against the radix-tree prefix
        // cache with paced ingestion and a tight session cap: hits,
        // misses, split-on-divergence, and cap-charged LRU eviction all
        // churn — and must never change an output or a tick stamp.
        TraceCase {
            name: "zipf_stems",
            cfg: ServeConfig {
                prefix_cache: true,
                ingest_rate: Some(3),
                session_cap: Some(5),
                ..ServeConfig::concurrency(2)
            },
            with_prefix: false,
            grammar: false,
            fleet: None,
            faults: FaultPlan::none(),
            workload: Workload {
                process: ArrivalProcess::Poisson { rate: 1.0 },
                mix: RequestMix {
                    families: vec![(
                        PromptFamily::zipf_stems("zipf", 16, 3, 6, 3, 1.1, 8, 16, 0x57E3),
                        1.0,
                    )],
                    ..corpus_mix(None)
                },
                count: 20,
                seed: 0x21F5_7E35,
            },
        },
        // Deadline-carrying ramp under a per-tick verify capacity with
        // EDF scheduling: deferred steps and deadline outcomes are the
        // regression surface.
        TraceCase {
            name: "edf_pressure",
            cfg: ServeConfig {
                order: TickOrder::Edf,
                tick_capacity: Some(10),
                ..ServeConfig::concurrency(2)
            },
            with_prefix: false,
            grammar: false,
            fleet: None,
            faults: FaultPlan::none(),
            workload: Workload {
                process: ArrivalProcess::Ramp {
                    start_rate: 0.2,
                    end_rate: 2.0,
                    ramp_ticks: 30.0,
                },
                mix: corpus_mix(Some(2.5)),
                count: 16,
                seed: 0xDEAD_11E5,
            },
        },
        // Verilog sources severed mid-expression / mid-statement,
        // served through the grammar-constrained engine next to its
        // unconstrained siblings: propose-time viability filtering and
        // dead-tail pruning churn on every step — and the prune
        // accounting, like every output, must replay bit-identically.
        TraceCase {
            name: "grammar_stress",
            cfg: ServeConfig::concurrency(2),
            with_prefix: false,
            grammar: true,
            fleet: None,
            faults: FaultPlan::none(),
            workload: Workload {
                process: ArrivalProcess::Poisson { rate: 1.0 },
                mix: RequestMix {
                    engines: vec![
                        (
                            EngineChoice::GrammarTree {
                                tree: Some(vec![2, 2]),
                            },
                            3.0,
                        ),
                        (
                            EngineChoice::SyntaxAligned {
                                tree: Some(vec![2, 2]),
                            },
                            1.0,
                        ),
                        (EngineChoice::Ntp, 1.0),
                    ],
                    families: vec![(PromptFamily::grammar_stress("grammar", 10, 12, 0x6AA5), 1.0)],
                    ..corpus_mix(None)
                },
                count: 14,
                seed: 0x6A3A_57E5,
            },
        },
        // One worker of a two-worker fleet crashes mid-run and later
        // restarts: in-flight and queued requests migrate to the
        // survivor and are rebuilt by exact replay — token-identical
        // to the fault-free run, which is exactly what the golden
        // pins.
        TraceCase {
            name: "worker_crash",
            cfg: ServeConfig::concurrency(2),
            with_prefix: false,
            grammar: false,
            fleet: Some((2, RoutePolicy::RoundRobin)),
            faults: FaultPlan::none().crash(6, 0).restart(18, 0),
            workload: Workload {
                process: ArrivalProcess::Poisson { rate: 1.0 },
                mix: corpus_mix(None),
                count: 20,
                seed: 0xC4A5_8EED,
            },
        },
        // Every worker crashes inside a short window: the fleet goes
        // dark, arrivals and migrants defer under backpressure, and
        // the restarts flush the deferred queue — deterministically,
        // with no request lost.
        TraceCase {
            name: "crash_storm",
            cfg: ServeConfig::concurrency(2),
            with_prefix: false,
            grammar: false,
            fleet: Some((2, RoutePolicy::JoinShortestQueue)),
            faults: FaultPlan::none()
                .crash(5, 0)
                .crash(6, 1)
                .restart(20, 0)
                .restart(21, 1),
            workload: Workload {
                process: ArrivalProcess::Poisson { rate: 1.5 },
                mix: corpus_mix(None),
                count: 20,
                seed: 0x5707_0C4A,
            },
        },
        // Two tenant classes under skewed weighted-fairness shares
        // (the family index is the tenant class): the favored tenant
        // gets 4x the service share, yet the starved-looking tenant
        // still completes every request — weighted fairness, not
        // starvation.
        TraceCase {
            name: "noisy_neighbor",
            cfg: ServeConfig::concurrency(2),
            with_prefix: false,
            grammar: false,
            fleet: Some((2, RoutePolicy::LeastLoaded)),
            faults: FaultPlan::none().share(0, 4).share(1, 1),
            workload: Workload {
                process: ArrivalProcess::Poisson { rate: 1.5 },
                mix: corpus_mix(None),
                count: 20,
                seed: 0x0153_EB0A,
            },
        },
    ]
}

/// The committed per-trace summary CI asserts against.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct GoldenSummary {
    trace: String,
    completions: usize,
    shed: usize,
    /// Total committed tokens across all completions.
    tokens: usize,
    /// Scheduler ticks of the replayed run.
    ticks: u64,
    session_evictions: usize,
    deadlines_met: usize,
    /// Prefix-cache counters (all zero for cache-off cases).
    #[serde(default)]
    prefix_hits: usize,
    #[serde(default)]
    prefix_misses: usize,
    #[serde(default)]
    prefix_evictions: usize,
    /// Grammar-prune counters (all zero without an attached oracle).
    #[serde(default)]
    grammar_considered: usize,
    #[serde(default)]
    grammar_pruned: usize,
    #[serde(default)]
    grammar_surviving: usize,
    /// Fault-recovery counters (all zero for single-engine and
    /// fault-free cases) — the golden recovery summary of the
    /// production-failure traces.
    #[serde(default)]
    worker_crashes: usize,
    #[serde(default)]
    worker_restarts: usize,
    #[serde(default)]
    migrations: usize,
    #[serde(default)]
    replayed_tokens: usize,
    #[serde(default)]
    backpressure_deferrals: usize,
}

impl GoldenSummary {
    fn of(name: &str, report: &ServeReport) -> Self {
        GoldenSummary {
            trace: name.to_string(),
            completions: report.completions.len(),
            shed: report.shed.len(),
            tokens: report.stats.served_tokens,
            ticks: report.stats.ticks,
            session_evictions: report.stats.session_evictions,
            deadlines_met: report
                .completions
                .iter()
                .filter(|c| c.met_deadline() == Some(true))
                .count(),
            prefix_hits: report.stats.prefix_hits,
            prefix_misses: report.stats.prefix_misses,
            prefix_evictions: report.stats.prefix_evictions,
            grammar_considered: report.stats.grammar_considered,
            grammar_pruned: report.stats.grammar_pruned,
            grammar_surviving: report.stats.grammar_surviving,
            worker_crashes: report.stats.crashes,
            worker_restarts: report.stats.restarts,
            migrations: report.stats.migrations,
            replayed_tokens: report.stats.replayed_tokens,
            backpressure_deferrals: report.stats.backpressure_deferrals,
        }
    }
}

fn traces_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/traces")
}

/// Replays a trace's requests under the case's pinned configuration —
/// through a single engine, or through a lockstep [`FleetRuntime`]
/// fleet under the trace's committed fault plan for the
/// production-failure cases.
fn replay(case: &TraceCase, trace: &ArrivalTrace) -> ServeReport {
    let m = if case.grammar { byte_model() } else { model() };
    let d = draft();
    let oracle = GrammarOracle::from_tokenizer(&BpeTokenizer::byte_level());
    let cost = GpuCostModel::codellama_like();
    if let Some((workers, route)) = &case.fleet {
        let rt = FleetRuntime::new(
            &m,
            case.cfg.clone(),
            *workers,
            route.clone(),
            Backend::Lockstep,
        )
        .with_draft(&d)
        .with_fault_plan(trace.faults.clone());
        let run = rt.run(Drive::Paced(trace.replay()), &cost);
        return ServeReport {
            completions: run.report.completions,
            shed: run.report.shed,
            stats: run.report.stats,
        };
    }
    let mut prefix = m.session();
    prefix.append(&SHARED_PREFIX);
    let mut engine = ServeEngine::new(&m, case.cfg.clone()).with_draft(&d);
    if case.grammar {
        engine = engine.with_grammar(&oracle);
    }
    for req in trace.replay() {
        // Fork the shared-prefix session per matching request at
        // submit time (the explicit successor of the retired
        // engine-held `with_prefix` plumbing).
        if case.with_prefix && req.prompt.starts_with(prefix.tokens()) {
            if let Some(fork) = prefix.fork() {
                engine.submit_with_session(req, fork);
                continue;
            }
        }
        engine.submit(req);
    }
    engine.run(&cost)
}

/// Replays one committed trace twice and pins it against its golden
/// summary: the JSON round trip, run-to-run bit-identity, and the
/// golden match. Shared by the full-corpus sweep and the named
/// per-scenario CI steps.
fn replay_against_golden(case: &TraceCase, goldens: &[GoldenSummary]) {
    let dir = traces_dir();
    let body = std::fs::read_to_string(dir.join(format!("{}.json", case.name)))
        .unwrap_or_else(|e| panic!("trace {} is committed: {e}", case.name));
    let trace = ArrivalTrace::from_json(&body)
        .unwrap_or_else(|e| panic!("trace {} parses: {e}", case.name));

    // The JSON round trip itself is part of the guarantee.
    let rejson = trace.to_json().expect("re-serializes");
    assert_eq!(
        ArrivalTrace::from_json(&rejson).expect("re-parses"),
        trace,
        "{}: JSON round trip drifted",
        case.name
    );

    // Bit-identical replay: two runs of the same trace agree on
    // every token, tick stamp, and counter.
    let a = replay(case, &trace);
    let b = replay(case, &trace);
    assert_eq!(a.stats, b.stats, "{}: stats not deterministic", case.name);
    assert_eq!(a.shed, b.shed, "{}: shedding not deterministic", case.name);
    assert_eq!(a.completions.len(), b.completions.len());
    for (x, y) in a.completions.iter().zip(&b.completions) {
        assert_eq!(x.output.tokens, y.output.tokens, "{}: tokens", case.name);
        assert_eq!(x.step_ticks, y.step_ticks, "{}: schedule", case.name);
    }

    // And the run matches its committed golden summary.
    let golden = goldens
        .iter()
        .find(|g| g.trace == case.name)
        .unwrap_or_else(|| panic!("golden for {} missing", case.name));
    assert_eq!(
        &GoldenSummary::of(case.name, &a),
        golden,
        "{}: replay diverged from the committed golden — a behavior \
         change reached the serving path (regenerate goldens only if \
         intended)",
        case.name
    );
}

fn committed_goldens() -> Vec<GoldenSummary> {
    let goldens_body = std::fs::read_to_string(traces_dir().join("goldens.json"))
        .expect("tests/traces/goldens.json is committed");
    serde_json::from_str(&goldens_body).expect("goldens parse")
}

#[test]
fn committed_traces_replay_bit_identically_to_goldens() {
    let goldens = committed_goldens();
    let cases = corpus();
    assert_eq!(goldens.len(), cases.len(), "one golden per corpus trace");
    for case in &cases {
        replay_against_golden(case, &goldens);
    }
}

/// Replays one production-failure scenario by name against its golden
/// recovery summary — the body of the named per-scenario CI steps, so
/// a recovery-behavior diff fails under the scenario's own step name.
fn replay_fault_scenario(name: &str) {
    let cases = corpus();
    let case = cases
        .iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("corpus case {name} missing"));
    assert!(
        case.fleet.is_some(),
        "{name} is expected to replay through the fleet runtime"
    );
    replay_against_golden(case, &committed_goldens());
}

#[test]
fn worker_crash_trace_replays_its_golden_recovery() {
    replay_fault_scenario("worker_crash");
}

#[test]
fn crash_storm_trace_replays_its_golden_recovery() {
    replay_fault_scenario("crash_storm");
}

#[test]
fn noisy_neighbor_trace_replays_its_golden_recovery() {
    replay_fault_scenario("noisy_neighbor");
}

/// The corpus stays interesting: each trace must keep exercising the
/// failure mode it was committed for.
#[test]
fn corpus_traces_exercise_their_failure_modes() {
    let dir = traces_dir();
    for case in corpus() {
        let body = std::fs::read_to_string(dir.join(format!("{}.json", case.name)))
            .expect("trace committed");
        let trace = ArrivalTrace::from_json(&body).expect("trace parses");
        let report = replay(&case, &trace);
        match case.name {
            "tail_blowup" => {
                // Overload means someone queues for a long time.
                let max_queue = report
                    .completions
                    .iter()
                    .map(|c| c.queue_ticks())
                    .max()
                    .expect("completions");
                assert!(max_queue >= 10, "tail trace lost its blowup ({max_queue})");
            }
            "shed_storm" => {
                assert!(
                    report.stats.shed_requests >= 3,
                    "storm trace stopped shedding ({})",
                    report.stats.shed_requests
                );
            }
            "eviction_churn" => {
                assert!(
                    report.stats.session_evictions >= 3,
                    "churn trace stopped evicting ({})",
                    report.stats.session_evictions
                );
            }
            "zipf_stems" => {
                assert!(
                    report.stats.prefix_hits >= 3,
                    "zipf trace stopped hitting the cache ({})",
                    report.stats.prefix_hits
                );
                assert!(
                    report.stats.prefix_misses >= 3,
                    "zipf trace stopped missing ({})",
                    report.stats.prefix_misses
                );
                assert!(
                    report.stats.prefix_evictions >= 3,
                    "zipf trace stopped evicting cached stems ({})",
                    report.stats.prefix_evictions
                );
            }
            "grammar_stress" => {
                assert!(
                    report.stats.grammar_considered > 0,
                    "grammar trace stopped reaching the grammar engine"
                );
                assert!(
                    report.stats.grammar_pruned > 0,
                    "grammar trace stopped pruning dead tails ({} considered, 0 pruned)",
                    report.stats.grammar_considered
                );
                assert_eq!(
                    report.stats.grammar_considered,
                    report.stats.grammar_pruned + report.stats.grammar_surviving,
                    "grammar prune accounting drifted"
                );
            }
            "edf_pressure" => {
                assert!(
                    report.stats.deferred_steps > 0,
                    "pressure trace stopped deferring"
                );
                assert!(
                    report.completions.iter().any(|c| c.deadline.is_some()),
                    "pressure trace lost its deadlines"
                );
            }
            "worker_crash" => {
                assert!(report.stats.crashes >= 1, "crash trace stopped crashing");
                assert!(report.stats.restarts >= 1, "crash trace stopped restarting");
                assert!(
                    report.stats.migrations >= 1,
                    "crash trace stopped migrating stranded requests ({})",
                    report.stats.migrations
                );
                assert_eq!(
                    report.completions.len() + report.shed.len(),
                    trace.entries.len(),
                    "crash trace lost requests across the recovery"
                );
            }
            "crash_storm" => {
                assert!(
                    report.stats.crashes >= 2,
                    "storm trace stopped killing the whole fleet ({})",
                    report.stats.crashes
                );
                assert!(
                    report.stats.backpressure_deferrals >= 1,
                    "storm trace stopped deferring under whole-fleet death ({})",
                    report.stats.backpressure_deferrals
                );
                assert_eq!(
                    report.completions.len() + report.shed.len(),
                    trace.entries.len(),
                    "storm trace lost requests across the outage"
                );
            }
            "noisy_neighbor" => {
                let classes: std::collections::BTreeSet<u32> =
                    trace.entries.iter().map(|e| e.class).collect();
                assert!(
                    classes.len() >= 2,
                    "neighbor trace lost its tenant mix ({classes:?})"
                );
                assert!(
                    !trace.faults.classes.is_empty(),
                    "neighbor trace lost its weighted shares"
                );
                // Weighted fairness, not starvation: every tenant's
                // requests — including the 1x-share neighbor's — all
                // complete.
                for class in classes {
                    let ids: Vec<u64> = trace
                        .entries
                        .iter()
                        .filter(|e| e.class == class)
                        .map(|e| e.id)
                        .collect();
                    assert!(
                        ids.iter()
                            .all(|id| report.completions.iter().any(|c| c.id == *id)),
                        "tenant class {class} was starved out"
                    );
                }
            }
            other => panic!("unknown corpus trace {other}"),
        }
    }
}

/// Rewrites the committed traces and goldens from the corpus
/// definitions and current engine behavior. Run only after an
/// *intended* behavior change, then review the diff:
///
/// ```text
/// cargo test -p verispec-load --test trace_corpus -- --ignored regenerate
/// ```
#[test]
#[ignore = "writes tests/traces/*.json; run explicitly to regenerate"]
fn regenerate() {
    let dir = traces_dir();
    std::fs::create_dir_all(&dir).expect("traces dir");
    let mut goldens = Vec::new();
    for case in corpus() {
        let requests = case.workload.requests();
        let trace = ArrivalTrace::record(&requests, case.workload.seed, &case.workload.mix.base)
            .with_faults(case.faults.clone());
        let json = trace.to_json().expect("trace serializes");
        std::fs::write(dir.join(format!("{}.json", case.name)), &json).expect("trace written");
        let report = replay(&case, &trace);
        goldens.push(GoldenSummary::of(case.name, &report));
    }
    let body = serde_json::to_string_pretty(&goldens).expect("goldens serialize");
    std::fs::write(dir.join("goldens.json"), body).expect("goldens written");
}
