//! Golden event-log CI: the `eviction_churn` corpus trace (the same
//! committed `ArrivalTrace` the trace-replay regression suite pins)
//! replayed with a collecting [`EventLog`] attached, and its serialized
//! event stream asserted **byte-identical** to the committed golden log
//! `tests/traces/eviction_churn.events.json`.
//!
//! Events are stamped in tick space only, so the log is a pure
//! function of the trace — any diff means a scheduling, admission,
//! eviction, or speculation change reached the serving path. When a
//! change is intended, regenerate and review the event-level diff (it
//! shows *which phase of which request* moved):
//!
//! ```text
//! cargo test -p verispec-load --test event_log -- --ignored regenerate
//! ```

use verispec_lm::{GpuCostModel, LanguageModel, MlpLm, MlpLmConfig, NgramLm, TokenId};
use verispec_load::ArrivalTrace;
use verispec_serve::ServeConfig;
use verispec_trace::{log_from_json, log_to_json, EventKind, EventLog, TraceEvent};

/// The pinned corpus model (same seed as `trace_corpus.rs`).
fn model() -> MlpLm {
    MlpLm::new(MlpLmConfig {
        vocab: 16,
        d_emb: 6,
        d_hidden: 12,
        context: 4,
        n_heads: 3,
        seed: 0xC0FFEE,
    })
}

/// The pinned corpus draft model.
fn draft() -> NgramLm {
    let mut lm = NgramLm::new(2, 16);
    let seq: Vec<TokenId> = (0..240).map(|i| 4 + (i % 7) as TokenId).collect();
    lm.train_sequence(&seq);
    lm
}

/// The `eviction_churn` case's pinned engine configuration.
fn churn_cfg() -> ServeConfig {
    ServeConfig {
        session_cap: Some(3),
        ..ServeConfig::concurrency(2)
    }
}

/// The corpus mixes' shared prompt stem, pre-ingested for forking.
const SHARED_PREFIX: [TokenId; 2] = [5, 6];

fn traces_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/traces")
}

/// Replays the committed `eviction_churn` trace with a collecting sink
/// and returns the captured event stream.
fn replay_churn_events() -> Vec<TraceEvent> {
    let body = std::fs::read_to_string(traces_dir().join("eviction_churn.json"))
        .expect("tests/traces/eviction_churn.json is committed");
    let trace = ArrivalTrace::from_json(&body).expect("trace parses");
    let m = model();
    let d = draft();
    let cost = GpuCostModel::codellama_like();
    let mut prefix = m.session();
    prefix.append(&SHARED_PREFIX);
    let log = EventLog::new();
    let mut engine = verispec_serve::ServeEngine::new(&m, churn_cfg())
        .with_draft(&d)
        .with_sink(&log);
    // Fork the shared-prefix session per matching request at submit
    // time (the explicit successor of the retired engine-held
    // `with_prefix` plumbing) — byte-identical to the committed golden.
    for req in trace.replay() {
        if req.prompt.starts_with(prefix.tokens()) {
            if let Some(fork) = prefix.fork() {
                engine.submit_with_session(req, fork);
                continue;
            }
        }
        engine.submit(req);
    }
    engine.run(&cost);
    log.into_events()
}

#[test]
fn eviction_churn_event_log_replays_byte_identically() {
    let golden = std::fs::read_to_string(traces_dir().join("eviction_churn.events.json"))
        .expect("tests/traces/eviction_churn.events.json is committed");

    // The committed log round-trips through the typed schema without
    // drifting a byte (serialization itself is part of the contract).
    let parsed = log_from_json(&golden).expect("golden event log parses");
    assert_eq!(
        log_to_json(&parsed),
        golden,
        "golden event log does not round-trip byte-identically"
    );

    // Replaying the trace reproduces the committed stream byte for
    // byte — and a second replay reproduces the first.
    let a = replay_churn_events();
    let b = replay_churn_events();
    assert_eq!(
        log_to_json(&a),
        log_to_json(&b),
        "event stream not deterministic across replays"
    );
    assert_eq!(
        log_to_json(&a),
        golden,
        "replayed event log diverged from the committed golden — a \
         behavior change reached the serving path (regenerate only if \
         intended and review the event-level diff)"
    );

    // The log stays interesting: the churn case must keep exercising
    // prefix-fork eviction, and every lifecycle class must appear.
    let evictions = a
        .iter()
        .filter(|e| matches!(e.kind, EventKind::ForkEvicted))
        .count();
    assert!(evictions >= 3, "churn log stopped evicting ({evictions})");
    for (what, present) in [
        (
            "Submitted",
            a.iter()
                .any(|e| matches!(e.kind, EventKind::Submitted { .. })),
        ),
        (
            "Admitted",
            a.iter()
                .any(|e| matches!(e.kind, EventKind::Admitted { .. })),
        ),
        (
            "Step",
            a.iter().any(|e| matches!(e.kind, EventKind::Step { .. })),
        ),
        (
            "Batch",
            a.iter().any(|e| matches!(e.kind, EventKind::Batch { .. })),
        ),
        (
            "Finished",
            a.iter()
                .any(|e| matches!(e.kind, EventKind::Finished { .. })),
        ),
    ] {
        assert!(present, "churn log lost its `{what}` events");
    }
}

/// Rewrites the committed golden event log from the committed trace
/// and current engine behavior. Run only after an *intended* behavior
/// change, then review the diff:
///
/// ```text
/// cargo test -p verispec-load --test event_log -- --ignored regenerate
/// ```
#[test]
#[ignore = "writes tests/traces/eviction_churn.events.json; run explicitly"]
fn regenerate() {
    let events = replay_churn_events();
    std::fs::write(
        traces_dir().join("eviction_churn.events.json"),
        log_to_json(&events),
    )
    .expect("golden event log written");
}
