//! Property tests for the BPE tokenizer: encode/decode inversion,
//! special-token atomicity, and trained-vs-byte-level consistency.

use proptest::prelude::*;
use verispec_tokenizer::{special, BpeTokenizer, BpeTrainer, TokenId};

fn trained() -> BpeTokenizer {
    let corpus = [
        "module m(input clk, input [3:0] d, output reg [3:0] q);",
        "always @(posedge clk) q <= d;",
        "assign y = sel ? b : a;",
        "endmodule",
    ];
    BpeTrainer::new(350).train(corpus.iter().copied())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn byte_level_inverse(s in "\\PC{0,120}") {
        let tok = BpeTokenizer::byte_level();
        prop_assert_eq!(tok.decode(&tok.encode(&s)), s);
    }

    #[test]
    fn trained_inverse_ascii(s in "[ -~\n\t]{0,160}") {
        let tok = trained();
        prop_assert_eq!(tok.decode(&tok.encode(&s)), s);
    }

    #[test]
    fn trained_inverse_unicode(s in "\\PC{0,80}") {
        let tok = trained();
        prop_assert_eq!(tok.decode(&tok.encode(&s)), s);
    }

    #[test]
    fn frag_markers_are_atomic(pre in "[a-z ;=]{0,20}", post in "[a-z ;=]{0,20}") {
        let tok = trained();
        let text = format!("{pre}[FRAG]{post}");
        let ids = tok.encode(&text);
        let frag_count = ids.iter().filter(|&&i| i == special::FRAG).count();
        prop_assert_eq!(frag_count, 1);
        prop_assert_eq!(tok.decode(&ids), text);
    }

    #[test]
    fn specials_never_produced_from_plain_text(s in "[a-zA-Z0-9 ;=+&|^~<>(){}:,._-]{0,120}") {
        // Text without bracket-escaped specials must not encode to special
        // ids (unless the spelling literally occurs, excluded by the regex).
        let tok = trained();
        let ids = tok.encode(&s);
        prop_assert!(ids.iter().all(|&i| !tok.is_special(i)), "{:?}", ids);
    }

    #[test]
    fn encodings_never_exceed_byte_count(s in "[ -~]{0,160}") {
        let tok = trained();
        prop_assert!(tok.encode(&s).len() <= s.len().max(1));
    }

    #[test]
    fn all_ids_in_vocab(s in "\\PC{0,120}") {
        let tok = trained();
        let n = tok.vocab_size() as TokenId;
        prop_assert!(tok.encode(&s).iter().all(|&id| id < n));
    }
}
