//! Byte-level BPE tokenizer with Verilog-aware special tokens.
//!
//! The paper trains models on BPE token sequences in which the corpus text
//! has been decorated with `[FRAG]` markers (§III-C). This crate provides
//! the trainable tokenizer those pipelines use:
//!
//! * a byte-level base vocabulary (every input round-trips exactly),
//! * greedy pair merges learned from a corpus ([`BpeTrainer`]),
//! * atomic special tokens: `[PAD]`, `[BOS]`, `[EOS]`, `[FRAG]`, and the
//!   label-only `[IGNORE]` sentinel used by syntax-enriched labels.
//!
//! # Examples
//!
//! ```
//! use verispec_tokenizer::{BpeTrainer, special};
//!
//! let corpus = ["module m; endmodule", "module top; endmodule"];
//! let tok = BpeTrainer::new(300).train(corpus.iter().copied());
//! let ids = tok.encode("module m;");
//! assert_eq!(tok.decode(&ids), "module m;");
//! let tagged = tok.encode("[FRAG]module[FRAG]");
//! assert_eq!(tagged[0], special::FRAG);
//! ```

#![deny(missing_docs)]

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Token identifier. The id space is: specials, then the 256 byte tokens,
/// then learned merges.
pub type TokenId = u32;

/// Fixed ids and spellings of the special tokens.
pub mod special {
    use super::TokenId;

    /// Padding token id (`[PAD]`), appended to align head labels.
    pub const PAD: TokenId = 0;
    /// Beginning-of-sequence token id (`[BOS]`).
    pub const BOS: TokenId = 1;
    /// End-of-sequence token id (`[EOS]`).
    pub const EOS: TokenId = 2;
    /// Fragment boundary token id (`[FRAG]`, paper §III-C).
    pub const FRAG: TokenId = 3;
    /// Loss-masking sentinel id (`[IGNORE]`); never generated, only used
    /// in training labels (paper Fig. 4 `IGNORE_TOKEN_ID`).
    pub const IGNORE: TokenId = 4;

    /// Number of special tokens preceding the byte vocabulary.
    pub const COUNT: usize = 5;

    /// Spellings, indexed by id.
    pub const TEXTS: [&str; COUNT] = ["[PAD]", "[BOS]", "[EOS]", "[FRAG]", "[IGNORE]"];
}

/// First id of the 256 byte-level tokens.
pub const BYTE_BASE: TokenId = special::COUNT as TokenId;
/// First id available for learned merges.
pub const MERGE_BASE: TokenId = BYTE_BASE + 256;

/// A trained byte-level BPE tokenizer.
///
/// Construct via [`BpeTrainer::train`] or [`BpeTokenizer::byte_level`]
/// (no merges). Serializable with serde for on-disk caching.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BpeTokenizer {
    /// Merge rules in application order: merging `pair.0, pair.1` yields
    /// id `MERGE_BASE + index`.
    merges: Vec<(TokenId, TokenId)>,
    /// Bytes of every token id (specials map to their spelling bytes).
    vocab_bytes: Vec<Vec<u8>>,
    /// Fast merge lookup.
    #[serde(skip)]
    merge_map: HashMap<(TokenId, TokenId), TokenId>,
}

impl PartialEq for BpeTokenizer {
    fn eq(&self, other: &Self) -> bool {
        self.merges == other.merges && self.vocab_bytes == other.vocab_bytes
    }
}

impl BpeTokenizer {
    /// A tokenizer with no learned merges: specials + raw bytes only.
    pub fn byte_level() -> Self {
        Self::from_merges(Vec::new())
    }

    /// Reconstructs a tokenizer from its merge list.
    pub fn from_merges(merges: Vec<(TokenId, TokenId)>) -> Self {
        let mut vocab_bytes: Vec<Vec<u8>> = special::TEXTS
            .iter()
            .map(|t| t.as_bytes().to_vec())
            .collect();
        for b in 0..=255u8 {
            vocab_bytes.push(vec![b]);
        }
        let mut merge_map = HashMap::with_capacity(merges.len());
        for (i, &(a, b)) in merges.iter().enumerate() {
            let id = MERGE_BASE + i as TokenId;
            let mut bytes = vocab_bytes[a as usize].clone();
            bytes.extend_from_slice(&vocab_bytes[b as usize]);
            vocab_bytes.push(bytes);
            merge_map.insert((a, b), id);
        }
        Self {
            merges,
            vocab_bytes,
            merge_map,
        }
    }

    /// Rebuilds the transient merge map after deserialization.
    pub fn rebuild_cache(&mut self) {
        self.merge_map = self
            .merges
            .iter()
            .enumerate()
            .map(|(i, &pair)| (pair, MERGE_BASE + i as TokenId))
            .collect();
    }

    /// Total vocabulary size (specials + bytes + merges).
    pub fn vocab_size(&self) -> usize {
        self.vocab_bytes.len()
    }

    /// Number of learned merges.
    pub fn merge_count(&self) -> usize {
        self.merges.len()
    }

    /// Whether `id` is one of the special tokens.
    pub fn is_special(&self, id: TokenId) -> bool {
        (id as usize) < special::COUNT
    }

    /// The UTF-8 (lossy) text of a single token, for debugging.
    pub fn token_text(&self, id: TokenId) -> String {
        String::from_utf8_lossy(&self.vocab_bytes[id as usize]).into_owned()
    }

    /// The exact bytes a token contributes to decoded text, or `None`
    /// for ids outside the vocabulary. Special tokens report their
    /// bracketed spelling (`[FRAG]`, …) — callers that care about the
    /// *plain-text* byte stream (e.g. incremental grammar viability)
    /// should treat [`Self::is_special`] ids as contributing nothing,
    /// mirroring [`Self::strip_specials`].
    pub fn token_bytes(&self, id: TokenId) -> Option<&[u8]> {
        self.vocab_bytes.get(id as usize).map(Vec::as_slice)
    }

    /// Encodes text into token ids. Occurrences of special-token spellings
    /// (e.g. `[FRAG]`) are mapped atomically to their ids.
    pub fn encode(&self, text: &str) -> Vec<TokenId> {
        let mut out = Vec::with_capacity(text.len() / 2);
        for piece in split_specials(text) {
            match piece {
                Piece::Special(id) => out.push(id),
                Piece::Text(t) => self.encode_plain(t, &mut out),
            }
        }
        out
    }

    /// Encodes text that contains no special-token spellings.
    fn encode_plain(&self, text: &str, out: &mut Vec<TokenId>) {
        for word in pre_tokenize(text) {
            let mut ids: Vec<TokenId> = word.bytes().map(|b| BYTE_BASE + b as TokenId).collect();
            // Greedy lowest-rank merge loop (standard BPE application).
            loop {
                let mut best: Option<(usize, TokenId)> = None;
                for i in 0..ids.len().saturating_sub(1) {
                    if let Some(&id) = self.merge_map.get(&(ids[i], ids[i + 1])) {
                        if best.is_none_or(|(_, b)| id < b) {
                            best = Some((i, id));
                        }
                    }
                }
                let Some((i, id)) = best else { break };
                ids[i] = id;
                ids.remove(i + 1);
            }
            out.extend_from_slice(&ids);
        }
    }

    /// Decodes token ids back to text. Special tokens render as their
    /// spelling; pass the ids through [`Self::strip_specials`] first to
    /// drop them instead.
    pub fn decode(&self, ids: &[TokenId]) -> String {
        let mut bytes = Vec::new();
        for &id in ids {
            if let Some(b) = self.vocab_bytes.get(id as usize) {
                bytes.extend_from_slice(b);
            }
        }
        String::from_utf8_lossy(&bytes).into_owned()
    }

    /// Returns `ids` with all special tokens removed.
    pub fn strip_specials<'a>(&self, ids: impl IntoIterator<Item = &'a TokenId>) -> Vec<TokenId> {
        ids.into_iter()
            .copied()
            .filter(|&id| !self.is_special(id))
            .collect()
    }
}

/// A piece of input: plain text or a special token occurrence.
enum Piece<'a> {
    Text(&'a str),
    Special(TokenId),
}

/// Splits `text` around special-token spellings.
fn split_specials(text: &str) -> Vec<Piece<'_>> {
    let mut pieces = Vec::new();
    let mut rest = text;
    'outer: while !rest.is_empty() {
        // Find the earliest special occurrence.
        let mut earliest: Option<(usize, usize, TokenId)> = None; // (pos, len, id)
        for (id, spelling) in special::TEXTS.iter().enumerate() {
            if let Some(pos) = rest.find(spelling) {
                let better = match earliest {
                    None => true,
                    Some((p, l, _)) => pos < p || (pos == p && spelling.len() > l),
                };
                if better {
                    earliest = Some((pos, spelling.len(), id as TokenId));
                }
            }
        }
        match earliest {
            None => {
                pieces.push(Piece::Text(rest));
                break 'outer;
            }
            Some((pos, len, id)) => {
                if pos > 0 {
                    pieces.push(Piece::Text(&rest[..pos]));
                }
                pieces.push(Piece::Special(id));
                rest = &rest[pos + len..];
            }
        }
    }
    pieces
}

/// GPT-2-style pre-tokenization: words are a run of non-whitespace with an
/// optional single leading space; remaining whitespace forms *runs* that
/// are words of their own (so indentation like `"\n    "` can merge into
/// a single BPE token). Merges never cross word boundaries, which keeps
/// training tractable.
fn pre_tokenize(text: &str) -> Vec<&str> {
    let bytes = text.as_bytes();
    let mut words = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let start = i;
        if bytes[i] == b' ' && i + 1 < bytes.len() && !bytes[i + 1].is_ascii_whitespace() {
            // Single space glued to the following word.
            i += 1;
            while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            words.push(&text[start..i]);
            continue;
        }
        if bytes[i].is_ascii_whitespace() {
            // Whitespace run; if it ends in a space directly before a
            // word, leave that space to glue onto the word.
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i < bytes.len() && bytes[i - 1] == b' ' && i - start >= 2 {
                i -= 1;
            }
            words.push(&text[start..i]);
            continue;
        }
        while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        words.push(&text[start..i]);
    }
    words
}

/// Trains a [`BpeTokenizer`] by greedy most-frequent pair merging.
///
/// # Examples
///
/// ```
/// use verispec_tokenizer::BpeTrainer;
/// let tok = BpeTrainer::new(280).train(["assign y = a & b;"].into_iter());
/// assert!(tok.vocab_size() <= 280);
/// ```
#[derive(Debug, Clone)]
pub struct BpeTrainer {
    target_vocab: usize,
    min_pair_count: usize,
}

impl BpeTrainer {
    /// A trainer that stops at `target_vocab` total vocabulary entries.
    pub fn new(target_vocab: usize) -> Self {
        Self {
            target_vocab: target_vocab.max(MERGE_BASE as usize),
            min_pair_count: 2,
        }
    }

    /// Sets the minimum pair frequency required to create a merge
    /// (default 2; rarer pairs stop training early).
    pub fn min_pair_count(mut self, n: usize) -> Self {
        self.min_pair_count = n.max(1);
        self
    }

    /// Learns merges from the corpus and returns the tokenizer.
    pub fn train<'a>(&self, corpus: impl Iterator<Item = &'a str>) -> BpeTokenizer {
        // Unique words with counts; BPE state per unique word.
        let mut word_counts: HashMap<&str, u64> = HashMap::new();
        for doc in corpus {
            for piece in split_specials(doc) {
                if let Piece::Text(t) = piece {
                    for w in pre_tokenize(t) {
                        *word_counts.entry(w).or_insert(0) += 1;
                    }
                }
            }
        }
        let mut words: Vec<(Vec<TokenId>, u64)> = word_counts
            .into_iter()
            .map(|(w, c)| (w.bytes().map(|b| BYTE_BASE + b as TokenId).collect(), c))
            .collect();
        // Deterministic order regardless of hash seed.
        words.sort_unstable();

        let mut merges: Vec<(TokenId, TokenId)> = Vec::new();
        let n_merges = self.target_vocab - MERGE_BASE as usize;

        for _ in 0..n_merges {
            // Count all adjacent pairs.
            let mut pair_counts: HashMap<(TokenId, TokenId), u64> = HashMap::new();
            for (ids, c) in &words {
                for win in ids.windows(2) {
                    *pair_counts.entry((win[0], win[1])).or_insert(0) += c;
                }
            }
            // Most frequent pair; ties break toward the smaller pair for
            // determinism.
            let Some((&pair, &count)) = pair_counts
                .iter()
                .max_by(|(pa, ca), (pb, cb)| ca.cmp(cb).then_with(|| pb.cmp(pa)))
            else {
                break;
            };
            if (count as usize) < self.min_pair_count {
                break;
            }
            let new_id = MERGE_BASE + merges.len() as TokenId;
            merges.push(pair);
            // Apply the merge to every word.
            for (ids, _) in &mut words {
                let mut i = 0;
                while i + 1 < ids.len() {
                    if ids[i] == pair.0 && ids[i + 1] == pair.1 {
                        ids[i] = new_id;
                        ids.remove(i + 1);
                    } else {
                        i += 1;
                    }
                }
            }
        }
        BpeTokenizer::from_merges(merges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_tok() -> BpeTokenizer {
        let corpus = [
            "module counter(input clk, input rst_n, output reg [3:0] q);",
            "always @(posedge clk or negedge rst_n) begin",
            "if (!rst_n) q <= 4'b0000; else q <= q + 1;",
            "end endmodule",
            "module adder(input [7:0] a, b, output [7:0] s); assign s = a + b; endmodule",
        ];
        BpeTrainer::new(320).train(corpus.iter().copied())
    }

    #[test]
    fn byte_level_round_trips_everything() {
        let tok = BpeTokenizer::byte_level();
        for s in [
            "",
            "hello",
            "module m;\n  assign y = ~a;\nendmodule",
            "ünïcode ✓",
        ] {
            assert_eq!(tok.decode(&tok.encode(s)), s);
        }
    }

    #[test]
    fn trained_round_trips() {
        let tok = small_tok();
        for s in [
            "module counter(input clk);",
            "assign s = a + b;",
            "something never seen 123!@#",
        ] {
            assert_eq!(tok.decode(&tok.encode(s)), s);
        }
    }

    #[test]
    fn merges_shorten_encodings() {
        let tok = small_tok();
        let byte = BpeTokenizer::byte_level();
        let s = "always @(posedge clk or negedge rst_n) begin";
        assert!(tok.encode(s).len() < byte.encode(s).len());
    }

    #[test]
    fn specials_are_atomic() {
        let tok = small_tok();
        let ids = tok.encode("[FRAG]module[FRAG] [FRAG]m[FRAG]");
        assert_eq!(ids[0], special::FRAG);
        assert_eq!(ids[ids.len() - 1], special::FRAG);
        assert_eq!(ids.iter().filter(|&&i| i == special::FRAG).count(), 4);
        assert_eq!(tok.decode(&ids), "[FRAG]module[FRAG] [FRAG]m[FRAG]");
    }

    #[test]
    fn all_special_spellings_map_to_ids() {
        let tok = BpeTokenizer::byte_level();
        for (i, s) in special::TEXTS.iter().enumerate() {
            let ids = tok.encode(s);
            assert_eq!(ids, vec![i as TokenId], "{s}");
        }
    }

    #[test]
    fn strip_specials_removes_markers() {
        let tok = small_tok();
        let ids = tok.encode("[FRAG]module[FRAG] x");
        let stripped = tok.strip_specials(&ids);
        assert!(!stripped.iter().any(|&i| tok.is_special(i)));
        assert_eq!(tok.decode(&stripped), "module x");
    }

    #[test]
    fn vocab_size_respects_target() {
        let tok = small_tok();
        assert!(tok.vocab_size() <= 320);
        assert!(
            tok.merge_count() > 0,
            "corpus has repeats, merges must form"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = [
            "assign y = a & b;",
            "assign z = a | b;",
            "assign y = a ^ b;",
        ];
        let t1 = BpeTrainer::new(300).train(corpus.iter().copied());
        let t2 = BpeTrainer::new(300).train(corpus.iter().copied());
        assert_eq!(t1, t2);
    }

    #[test]
    fn serde_round_trip_preserves_behavior() {
        let tok = small_tok();
        let json = serde_json::to_string(&tok).expect("serialize");
        let mut back: BpeTokenizer = serde_json::from_str(&json).expect("deserialize");
        back.rebuild_cache();
        let s = "always @(posedge clk) q <= q + 1;";
        assert_eq!(back.encode(s), tok.encode(s));
        assert_eq!(back, tok);
    }

    #[test]
    fn pre_tokenize_attaches_single_leading_space() {
        let words = pre_tokenize("assign y = a;");
        assert_eq!(words, vec!["assign", " y", " =", " a;"]);
        let words = pre_tokenize("a  b");
        assert_eq!(words, vec!["a", " ", " b"]);
        let words = pre_tokenize("a\n\tb");
        assert_eq!(words, vec!["a", "\n\t", "b"]);
    }

    #[test]
    fn pre_tokenize_keeps_indentation_runs_whole() {
        // Newline + 4-space indent: the run stays one word (minus the
        // space glued to the following token), so BPE can merge it.
        let words = pre_tokenize("x;\n    input y");
        assert_eq!(words, vec!["x;", "\n   ", " input", " y"]);
        // Pure trailing whitespace keeps the full run.
        assert_eq!(pre_tokenize("a\n    "), vec!["a", "\n    "]);
    }

    #[test]
    fn pre_tokenize_handles_trailing_space() {
        assert_eq!(pre_tokenize("a "), vec!["a", " "]);
        assert_eq!(pre_tokenize(" "), vec![" "]);
        assert_eq!(pre_tokenize(""), Vec::<&str>::new());
    }

    #[test]
    fn token_text_for_debugging() {
        let tok = BpeTokenizer::byte_level();
        assert_eq!(tok.token_text(special::FRAG), "[FRAG]");
        assert_eq!(tok.token_text(BYTE_BASE + b'a' as TokenId), "a");
    }

    #[test]
    fn token_bytes_exposes_exact_decode_bytes() {
        let tok = small_tok();
        for id in 0..tok.vocab_size() as TokenId {
            let bytes = tok.token_bytes(id).expect("in vocab");
            // Raw high bytes decode lossily; compare only exact UTF-8.
            if let Ok(s) = std::str::from_utf8(bytes) {
                assert_eq!(tok.decode(&[id]), s, "token {id}");
            }
        }
        assert_eq!(tok.token_bytes(tok.vocab_size() as TokenId), None);
        let byte = BpeTokenizer::byte_level();
        assert_eq!(
            byte.token_bytes(BYTE_BASE + b'a' as TokenId),
            Some(&b"a"[..])
        );
    }

    #[test]
    fn min_pair_count_stops_training() {
        // Every pair occurs once, so with the default threshold of 2 no
        // merge is learned.
        let tok = BpeTrainer::new(400).train(["abcdefg"].into_iter());
        assert_eq!(tok.merge_count(), 0);
    }
}
