//! Property tests: `parse(print(ast)) == ast` on randomly generated ASTs,
//! and fragmentize/defragmentize inverse on the printed text.

use proptest::prelude::*;
use verispec_verilog::ast::*;
use verispec_verilog::fragment::{defragmentize, fragmentize};
use verispec_verilog::printer::print_source_file;
use verispec_verilog::significant::SignificantTokens;
use verispec_verilog::{lex, parse};

/// Identifiers drawn from a fixed pool so expressions reference declared
/// names often enough to be realistic.
fn ident_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("sel".to_string()),
        Just("clk".to_string()),
        Just("rst_n".to_string()),
        Just("data_in".to_string()),
        Just("data_out".to_string()),
        Just("count".to_string()),
        Just("state".to_string()),
        "[a-z][a-z0-9_]{0,6}".prop_map(|s| s),
    ]
}

fn literal_strategy() -> impl Strategy<Value = Literal> {
    prop_oneof![
        (0u64..1_000_000).prop_map(Literal::unsized_dec),
        (1u32..=16, any::<u64>()).prop_map(|(w, v)| {
            let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
            Literal::sized(w, Base::Bin, v & mask)
        }),
        (1u32..=16, any::<u64>()).prop_map(|(w, v)| {
            let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
            Literal::sized(w, Base::Hex, v & mask)
        }),
        (1u32..=8, any::<u64>(), any::<u64>()).prop_map(|(w, v, z)| {
            let mask = (1u64 << w) - 1;
            let z_mask = z & mask;
            Literal {
                width: Some(w),
                signed: false,
                base: Base::Bin,
                value: v & mask & !z_mask,
                x_mask: 0,
                z_mask,
            }
        }),
    ]
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        literal_strategy().prop_map(Expr::Number),
        ident_strategy().prop_map(Expr::Ident),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (any::<u8>(), inner.clone()).prop_map(|(op, e)| {
                let ops = [
                    UnaryOp::Minus,
                    UnaryOp::Not,
                    UnaryOp::BitNot,
                    UnaryOp::RedAnd,
                    UnaryOp::RedOr,
                    UnaryOp::RedXor,
                ];
                Expr::Unary(ops[op as usize % ops.len()], Box::new(e))
            }),
            (any::<u8>(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| {
                let ops = [
                    BinaryOp::Add,
                    BinaryOp::Sub,
                    BinaryOp::Mul,
                    BinaryOp::BitAnd,
                    BinaryOp::BitOr,
                    BinaryOp::BitXor,
                    BinaryOp::Shl,
                    BinaryOp::Shr,
                    BinaryOp::Eq,
                    BinaryOp::Lt,
                    BinaryOp::LogAnd,
                    BinaryOp::LogOr,
                ];
                Expr::Binary(ops[op as usize % ops.len()], Box::new(a), Box::new(b))
            }),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, f)| Expr::Ternary(
                Box::new(c),
                Box::new(t),
                Box::new(f)
            )),
            (ident_strategy(), inner.clone()).prop_map(|(n, i)| Expr::Bit(n, Box::new(i))),
            (ident_strategy(), 0u64..16, 0u64..16).prop_map(|(n, msb, lsb)| {
                Expr::Part(
                    n,
                    Box::new(Range {
                        msb: Expr::unsized_dec(msb),
                        lsb: Expr::unsized_dec(lsb),
                    }),
                )
            }),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Expr::Concat),
            (1u64..5, prop::collection::vec(inner, 1..3))
                .prop_map(|(n, es)| Expr::Repeat(Box::new(Expr::unsized_dec(n)), es)),
        ]
    })
}

fn lvalue_strategy() -> impl Strategy<Value = LValue> {
    prop_oneof![
        ident_strategy().prop_map(LValue::Ident),
        (ident_strategy(), expr_strategy()).prop_map(|(n, i)| LValue::Bit(n, Box::new(i))),
        (ident_strategy(), 0u64..16, 0u64..16).prop_map(|(n, m, l)| {
            LValue::Part(
                n,
                Box::new(Range {
                    msb: Expr::unsized_dec(m),
                    lsb: Expr::unsized_dec(l),
                }),
            )
        }),
    ]
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let assign = prop_oneof![
        (lvalue_strategy(), expr_strategy()).prop_map(|(lhs, rhs)| Stmt::Blocking { lhs, rhs }),
        (lvalue_strategy(), expr_strategy()).prop_map(|(lhs, rhs)| Stmt::NonBlocking { lhs, rhs }),
    ];
    assign.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4)
                .prop_map(|stmts| Stmt::Block { label: None, stmts }),
            (
                expr_strategy(),
                inner.clone(),
                prop::option::of(inner.clone())
            )
                .prop_map(|(cond, t, e)| Stmt::If {
                    cond,
                    then_branch: Box::new(t),
                    else_branch: e.map(Box::new),
                }),
            (
                expr_strategy(),
                prop::collection::vec((expr_strategy(), inner.clone()), 1..3)
            )
                .prop_map(|(scrutinee, arms)| Stmt::Case {
                    kind: CaseKind::Case,
                    scrutinee,
                    arms: arms
                        .into_iter()
                        .map(|(l, body)| CaseArm {
                            labels: vec![l],
                            body
                        })
                        .collect(),
                    default: None,
                }),
        ]
    })
}

fn module_strategy() -> impl Strategy<Value = Module> {
    (
        ident_strategy(),
        prop::collection::vec((ident_strategy(), prop::option::of(0u64..32)), 1..5),
        prop::collection::vec(stmt_strategy(), 0..3),
        prop::collection::vec((lvalue_strategy(), expr_strategy()), 0..3),
    )
        .prop_map(|(name, ports, stmts, assigns)| {
            let mut m = Module::new(format!("m_{name}"));
            let n_ports = ports.len();
            for (i, (pname, width)) in ports.into_iter().enumerate() {
                let dir = if i + 1 == n_ports {
                    Direction::Output
                } else {
                    Direction::Input
                };
                let range = width.map(|w| Range::constant(w, 0));
                // Deduplicate port names by position suffix.
                m.ports.push(Port::ansi(dir, range, format!("{pname}_{i}")));
            }
            for (i, stmt) in stmts.into_iter().enumerate() {
                m.items.push(Item::Always(AlwaysBlock {
                    sensitivity: if i % 2 == 0 {
                        Sensitivity::Star
                    } else {
                        Sensitivity::List(vec![EventExpr {
                            edge: Some(Edge::Pos),
                            signal: "clk".into(),
                        }])
                    },
                    body: stmt,
                }));
            }
            if !assigns.is_empty() {
                m.items.push(Item::Assign(assigns));
            }
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_parse_round_trip(m in module_strategy()) {
        let file = SourceFile { modules: vec![m] };
        let printed = print_source_file(&file);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        // Compared modulo single-statement block insertion: the printer may
        // add `begin`/`end` to defuse the dangling-else ambiguity.
        prop_assert_eq!(reparsed.normalized(), file.normalized(), "printed:\n{}", printed);
    }

    #[test]
    fn fragment_round_trip(m in module_strategy()) {
        let file = SourceFile { modules: vec![m] };
        let printed = print_source_file(&file);
        let sig = SignificantTokens::from_source_file(&file);
        let tagged = fragmentize(&printed, &sig).expect("fragmentize");
        prop_assert_eq!(defragmentize(&tagged), printed);
    }

    #[test]
    fn expr_round_trip(e in expr_strategy()) {
        let s = verispec_verilog::printer::expr_str(&e);
        let reparsed = verispec_verilog::parser::parse_expr(&s)
            .unwrap_or_else(|err| panic!("reparse failed: {err}\n{s}"));
        prop_assert_eq!(reparsed, e, "printed: {}", s);
    }

    #[test]
    fn lexer_never_panics_on_ascii(s in "[ -~\n\t]{0,200}") {
        let _ = lex(&s);
    }

    #[test]
    fn parser_never_panics_on_ascii(s in "[ -~\n\t]{0,200}") {
        let _ = parse(&s);
    }

    #[test]
    fn literal_source_round_trip(l in literal_strategy()) {
        let s = l.to_source();
        let reparsed = Literal::parse(&s, verispec_verilog::Span::point(0))
            .unwrap_or_else(|e| panic!("reparse failed: {e} for `{s}`"));
        prop_assert_eq!(reparsed, l, "printed: {}", s);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_never_panics_on_unicode(s in "\\PC{0,160}") {
        let _ = lex(&s);
    }

    #[test]
    fn parser_never_panics_on_unicode(s in "\\PC{0,160}") {
        let _ = parse(&s);
    }
}

#[test]
fn lexer_rejects_multibyte_gracefully() {
    // The exact failure mode seen in generated text: a replacement char
    // mid-module. Must error, not panic.
    let src = "module m(input a);\n assign y = i[\u{FFFD}D other];\nendmodule";
    let err = lex(src).expect_err("must reject");
    assert!(err.message.contains("unexpected character"));
}
