//! Parser + printer acceptance tests on realistic RTL in the styles of
//! the paper's benchmarks (RTLLM/VGen): FSMs with localparam state
//! encodings, generate-free parameterized datapaths, memories, and the
//! common formatting quirks of scraped code.

use verispec_verilog::{parse, print_source_file, structure_ok};

fn accepts(src: &str) {
    let file = parse(src).unwrap_or_else(|e| panic!("parse failed: {e}\n{src}"));
    let printed = print_source_file(&file);
    let re = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
    assert_eq!(re.normalized(), file.normalized());
}

#[test]
fn traffic_light_fsm() {
    accepts(
        "module traffic_light(input clk, input rst_n, output reg [1:0] light);
           localparam [1:0] RED = 2'd0, GREEN = 2'd1, YELLOW = 2'd2;
           reg [3:0] timer;
           always @(posedge clk or negedge rst_n) begin
             if (!rst_n) begin
               light <= RED;
               timer <= 4'd0;
             end else begin
               timer <= timer + 1;
               case (light)
                 RED:    if (timer == 4'd9) begin light <= GREEN; timer <= 0; end
                 GREEN:  if (timer == 4'd7) begin light <= YELLOW; timer <= 0; end
                 YELLOW: if (timer == 4'd2) begin light <= RED; timer <= 0; end
                 default: light <= RED;
               endcase
             end
           end
         endmodule",
    );
}

#[test]
fn booth_multiplier_style_datapath() {
    accepts(
        "module multi_pipe #(parameter SIZE = 8)(
           input clk, rst_n,
           input [SIZE-1:0] mul_a, mul_b,
           output reg [2*SIZE-1:0] mul_out
         );
           reg [2*SIZE-1:0] stage0, stage1;
           always @(posedge clk or negedge rst_n) begin
             if (!rst_n) begin
               stage0 <= 0;
               stage1 <= 0;
               mul_out <= 0;
             end else begin
               stage0 <= mul_a * mul_b;
               stage1 <= stage0;
               mul_out <= stage1;
             end
           end
         endmodule",
    );
}

#[test]
fn right_shifter_with_concat_feedback() {
    accepts(
        "module right_shifter(input clk, input d, output reg [7:0] q);
           always @(posedge clk) begin
             q <= {d, q[7:1]};
           end
         endmodule",
    );
}

#[test]
fn width_8_16_adder_with_carry_chain() {
    accepts(
        "module adder_16bit(
           input [15:0] a, b,
           input cin,
           output [15:0] sum,
           output cout
         );
           wire [16:0] t;
           assign t = {1'b0, a} + {1'b0, b} + {16'b0, cin};
           assign sum = t[15:0];
           assign cout = t[16];
         endmodule",
    );
}

#[test]
fn asynchronous_fifo_style_flags() {
    accepts(
        "module flag_logic(
           input [4:0] wptr, rptr,
           output full, empty
         );
           assign empty = (wptr == rptr);
           assign full  = (wptr[4] != rptr[4]) && (wptr[3:0] == rptr[3:0]);
         endmodule",
    );
}

#[test]
fn scraped_formatting_quirks() {
    // Tabs, CRLF-free dense style, no spaces around operators, compact
    // port list, comments in odd places.
    accepts("module m(input a,b,output y);//inline comment\n\tassign y=a&b;/*block*/endmodule");
    assert!(structure_ok(
        "module m(input a,b,output y);\tassign y=a&b; endmodule // trailing"
    ));
}

#[test]
fn signed_arithmetic_and_system_functions() {
    accepts(
        "module signed_ops(input signed [7:0] a, b, output signed [7:0] y, output neg);
           assign y = $signed(a) >>> 2;
           assign neg = ($signed(a) < $signed(b));
         endmodule",
    );
}

#[test]
fn multiple_always_blocks_and_mixed_decls() {
    accepts(
        "module mixed(input clk, input [3:0] d, output reg [3:0] q1, q2);
           wire [3:0] inv;
           assign inv = ~d;
           always @(posedge clk) q1 <= d;
           always @(posedge clk) q2 <= inv;
         endmodule",
    );
}

#[test]
fn deeply_nested_conditionals() {
    accepts(
        "module nest(input [3:0] a, output reg [1:0] y);
           always @(*) begin
             if (a[3])
               if (a[2])
                 y = 2'd3;
               else if (a[1])
                 y = 2'd2;
               else
                 y = 2'd1;
             else
               y = 2'd0;
           end
         endmodule",
    );
}

#[test]
fn rejects_common_llm_mistakes() {
    // Missing semicolon.
    assert!(parse("module m(input a, output y) assign y = a; endmodule").is_err());
    // Unbalanced begin/end.
    assert!(parse("module m(input a, output reg y); always @(*) begin y = a; endmodule").is_err());
    // `endcase` without `case`.
    assert!(parse("module m(); endcase endmodule").is_err());
    // Expression garbage mid-statement (the NTP failure mode in Fig. 5).
    assert!(parse("module m(input a, output reg y); always @(*) y <= <= a; endmodule").is_err());
    // Truncated generation mid-identifier.
    assert!(parse("module m(input a, output y); assign y = ").is_err());
}

#[test]
fn param_dependent_ranges_parse() {
    accepts(
        "module pr #(parameter W = 8, D = 4)(
           input [W-1:0] din,
           output [W*1-1:0] dout
         );
           reg [W-1:0] mem [0:D-1];
           assign dout = mem[0];
           always @(din) mem[0] <= din;
         endmodule",
    );
}
