//! Recursive-descent parser for the Verilog subset.
//!
//! Expressions use precedence climbing driven by
//! [`BinaryOp::precedence`]; statements and module items are parsed with
//! straightforward one-token lookahead.

use crate::ast::*;
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Keyword, Token, TokenKind};
use crate::{Error, Result};

/// Parses a complete source file (one or more modules).
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
///
/// # Examples
///
/// ```
/// let file = verispec_verilog::parse(
///     "module top(input a, b, output y); assign y = a & b; endmodule",
/// )?;
/// assert_eq!(file.modules[0].ports.len(), 3);
/// # Ok::<(), verispec_verilog::Error>(())
/// ```
pub fn parse(src: &str) -> Result<SourceFile> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let file = p.source_file()?;
    Ok(file)
}

/// Parses a single expression, for tests and constant folding helpers.
///
/// # Errors
///
/// Returns an error if the text is not exactly one expression.
pub fn parse_expr(src: &str) -> Result<Expr> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Self { tokens, pos: 0 }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        &self.peek().kind == kind
    }

    fn at_keyword(&self, kw: Keyword) -> bool {
        matches!(&self.peek().kind, TokenKind::Keyword(k) if *k == kw)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            let t = self.peek();
            Err(Error::new(
                t.span,
                format!("expected `{}`, found `{}`", kind.text(), t.kind.text()),
            ))
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<Token> {
        if self.at_keyword(kw) {
            Ok(self.bump())
        } else {
            let t = self.peek();
            Err(Error::new(
                t.span,
                format!(
                    "expected keyword `{}`, found `{}`",
                    kw.as_str(),
                    t.kind.text()
                ),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.bump();
                Ok(name)
            }
            other => {
                let span = self.peek().span;
                Err(Error::new(
                    span,
                    format!("expected identifier, found `{}`", other.text()),
                ))
            }
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.at(&TokenKind::Eof) {
            Ok(())
        } else {
            let t = self.peek();
            Err(Error::new(
                t.span,
                format!("expected end of input, found `{}`", t.kind.text()),
            ))
        }
    }

    // ------------------------------------------------------------------
    // Top level
    // ------------------------------------------------------------------

    fn source_file(&mut self) -> Result<SourceFile> {
        let mut modules = Vec::new();
        while !self.at(&TokenKind::Eof) {
            modules.push(self.module()?);
        }
        if modules.is_empty() {
            return Err(Error::new(Span::point(0), "no modules in input"));
        }
        Ok(SourceFile { modules })
    }

    fn module(&mut self) -> Result<Module> {
        self.expect_keyword(Keyword::Module)?;
        let name = self.expect_ident()?;
        let mut module = Module::new(name);

        if self.eat(&TokenKind::Hash) {
            self.expect(&TokenKind::LParen)?;
            loop {
                // `parameter` keyword is optional after the first entry.
                self.eat_keyword(Keyword::Parameter);
                let range = self.optional_range()?;
                let pname = self.expect_ident()?;
                self.expect(&TokenKind::Assign)?;
                let value = self.expr()?;
                module.params.push(ParamDecl {
                    range,
                    name: pname,
                    value,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }

        if self.eat(&TokenKind::LParen) {
            if !self.at(&TokenKind::RParen) {
                // Port entries carry the last-seen direction/range forward:
                // `input a, b, output y` declares two inputs and one output.
                let mut last_dir: Option<Direction> = None;
                let mut last_net: Option<NetKind> = None;
                let mut last_signed = false;
                let mut last_range: Option<Range> = None;
                loop {
                    let dir = self.optional_direction();
                    let explicit = dir.is_some();
                    if explicit {
                        last_dir = dir;
                        last_net = None;
                        last_signed = false;
                        last_range = None;
                    }
                    if explicit || last_dir.is_some() {
                        let net = self.optional_net_kind();
                        if net.is_some() {
                            last_net = net;
                        }
                        if self.eat_keyword(Keyword::Signed) {
                            last_signed = true;
                        }
                        if let Some(r) = self.optional_range()? {
                            last_range = Some(r);
                        }
                    }
                    let pname = self.expect_ident()?;
                    module.ports.push(Port {
                        dir: last_dir,
                        net: last_net,
                        signed: last_signed,
                        range: last_range.clone(),
                        name: pname,
                    });
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        self.expect(&TokenKind::Semi)?;

        while !self.at_keyword(Keyword::Endmodule) {
            if self.at(&TokenKind::Eof) {
                let span = self.peek().span;
                return Err(Error::new(span, "missing `endmodule`"));
            }
            module.items.push(self.module_item()?);
        }
        self.expect_keyword(Keyword::Endmodule)?;
        Ok(module)
    }

    fn optional_direction(&mut self) -> Option<Direction> {
        let dir = match &self.peek().kind {
            TokenKind::Keyword(Keyword::Input) => Direction::Input,
            TokenKind::Keyword(Keyword::Output) => Direction::Output,
            TokenKind::Keyword(Keyword::Inout) => Direction::Inout,
            _ => return None,
        };
        self.bump();
        Some(dir)
    }

    fn optional_net_kind(&mut self) -> Option<NetKind> {
        let net = match &self.peek().kind {
            TokenKind::Keyword(Keyword::Wire) => NetKind::Wire,
            TokenKind::Keyword(Keyword::Reg) => NetKind::Reg,
            _ => return None,
        };
        self.bump();
        Some(net)
    }

    fn optional_range(&mut self) -> Result<Option<Range>> {
        if !self.eat(&TokenKind::LBracket) {
            return Ok(None);
        }
        let msb = self.expr()?;
        self.expect(&TokenKind::Colon)?;
        let lsb = self.expr()?;
        self.expect(&TokenKind::RBracket)?;
        Ok(Some(Range { msb, lsb }))
    }

    // ------------------------------------------------------------------
    // Module items
    // ------------------------------------------------------------------

    fn module_item(&mut self) -> Result<Item> {
        let t = self.peek().clone();
        match &t.kind {
            TokenKind::Keyword(Keyword::Input)
            | TokenKind::Keyword(Keyword::Output)
            | TokenKind::Keyword(Keyword::Inout) => self.port_decl_item(),
            TokenKind::Keyword(Keyword::Wire) => self.net_decl_item(),
            TokenKind::Keyword(Keyword::Reg) => self.reg_decl_item(),
            TokenKind::Keyword(Keyword::Integer) => {
                self.bump();
                let names = self.ident_list()?;
                self.expect(&TokenKind::Semi)?;
                Ok(Item::Integer(names))
            }
            TokenKind::Keyword(Keyword::Genvar) => {
                self.bump();
                let names = self.ident_list()?;
                self.expect(&TokenKind::Semi)?;
                Ok(Item::Genvar(names))
            }
            TokenKind::Keyword(Keyword::Parameter) => {
                self.bump();
                let decls = self.param_decl_list()?;
                self.expect(&TokenKind::Semi)?;
                Ok(Item::Param(decls))
            }
            TokenKind::Keyword(Keyword::Localparam) => {
                self.bump();
                let decls = self.param_decl_list()?;
                self.expect(&TokenKind::Semi)?;
                Ok(Item::Localparam(decls))
            }
            TokenKind::Keyword(Keyword::Assign) => {
                self.bump();
                let mut assigns = Vec::new();
                loop {
                    let lhs = self.lvalue()?;
                    self.expect(&TokenKind::Assign)?;
                    let rhs = self.expr()?;
                    assigns.push((lhs, rhs));
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::Semi)?;
                Ok(Item::Assign(assigns))
            }
            TokenKind::Keyword(Keyword::Always) => {
                self.bump();
                let sensitivity = self.sensitivity()?;
                let body = self.stmt()?;
                Ok(Item::Always(AlwaysBlock { sensitivity, body }))
            }
            TokenKind::Keyword(Keyword::Initial) => {
                self.bump();
                let body = self.stmt()?;
                Ok(Item::Initial(body))
            }
            TokenKind::Ident(_) => self.instance_item(),
            other => Err(Error::new(
                t.span,
                format!("expected module item, found `{}`", other.text()),
            )),
        }
    }

    fn port_decl_item(&mut self) -> Result<Item> {
        let dir = self
            .optional_direction()
            .expect("caller checked direction keyword");
        let net = self.optional_net_kind();
        let signed = self.eat_keyword(Keyword::Signed);
        let range = self.optional_range()?;
        let names = self.ident_list()?;
        self.expect(&TokenKind::Semi)?;
        Ok(Item::PortDecl(PortDecl {
            dir,
            net,
            signed,
            range,
            names,
        }))
    }

    fn net_decl_item(&mut self) -> Result<Item> {
        self.expect_keyword(Keyword::Wire)?;
        let signed = self.eat_keyword(Keyword::Signed);
        let range = self.optional_range()?;
        let mut nets = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let init = if self.eat(&TokenKind::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            nets.push((name, init));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::Semi)?;
        Ok(Item::Net(NetDecl {
            signed,
            range,
            nets,
        }))
    }

    fn reg_decl_item(&mut self) -> Result<Item> {
        self.expect_keyword(Keyword::Reg)?;
        let signed = self.eat_keyword(Keyword::Signed);
        let range = self.optional_range()?;
        let mut regs = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let mem = self.optional_range()?;
            let init = if self.eat(&TokenKind::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            regs.push(RegVar { name, mem, init });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::Semi)?;
        Ok(Item::Reg(RegDecl {
            signed,
            range,
            regs,
        }))
    }

    fn param_decl_list(&mut self) -> Result<Vec<ParamDecl>> {
        let shared_range = self.optional_range()?;
        let mut decls = Vec::new();
        loop {
            let name = self.expect_ident()?;
            self.expect(&TokenKind::Assign)?;
            let value = self.expr()?;
            decls.push(ParamDecl {
                range: shared_range.clone(),
                name,
                value,
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(decls)
    }

    fn ident_list(&mut self) -> Result<Vec<String>> {
        let mut names = vec![self.expect_ident()?];
        while self.eat(&TokenKind::Comma) {
            names.push(self.expect_ident()?);
        }
        Ok(names)
    }

    fn instance_item(&mut self) -> Result<Item> {
        let module = self.expect_ident()?;
        let mut params = Vec::new();
        if self.eat(&TokenKind::Hash) {
            self.expect(&TokenKind::LParen)?;
            params = self.connection_list()?;
            self.expect(&TokenKind::RParen)?;
        }
        let name = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let conns = if self.at(&TokenKind::RParen) {
            Vec::new()
        } else {
            self.connection_list()?
        };
        self.expect(&TokenKind::RParen)?;
        self.expect(&TokenKind::Semi)?;
        Ok(Item::Instance(Instance {
            module,
            params,
            name,
            conns,
        }))
    }

    fn connection_list(&mut self) -> Result<Vec<Connection>> {
        let mut conns = Vec::new();
        loop {
            if self.eat(&TokenKind::Dot) {
                let port = self.expect_ident()?;
                self.expect(&TokenKind::LParen)?;
                let expr = if self.at(&TokenKind::RParen) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::RParen)?;
                conns.push(Connection::Named(port, expr));
            } else {
                conns.push(Connection::Ordered(self.expr()?));
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(conns)
    }

    fn sensitivity(&mut self) -> Result<Sensitivity> {
        self.expect(&TokenKind::At)?;
        if self.eat(&TokenKind::Star) {
            return Ok(Sensitivity::Star);
        }
        self.expect(&TokenKind::LParen)?;
        if self.eat(&TokenKind::Star) {
            self.expect(&TokenKind::RParen)?;
            return Ok(Sensitivity::Star);
        }
        let mut events = Vec::new();
        loop {
            let edge = if self.eat_keyword(Keyword::Posedge) {
                Some(Edge::Pos)
            } else if self.eat_keyword(Keyword::Negedge) {
                Some(Edge::Neg)
            } else {
                None
            };
            let signal = self.expect_ident()?;
            events.push(EventExpr { edge, signal });
            if self.eat_keyword(Keyword::Or) || self.eat(&TokenKind::Comma) {
                continue;
            }
            break;
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Sensitivity::List(events))
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt> {
        let t = self.peek().clone();
        match &t.kind {
            TokenKind::Keyword(Keyword::Begin) => {
                self.bump();
                let label = if self.eat(&TokenKind::Colon) {
                    Some(self.expect_ident()?)
                } else {
                    None
                };
                let mut stmts = Vec::new();
                while !self.at_keyword(Keyword::End) {
                    if self.at(&TokenKind::Eof) {
                        return Err(Error::new(self.peek().span, "missing `end`"));
                    }
                    stmts.push(self.stmt()?);
                }
                self.expect_keyword(Keyword::End)?;
                Ok(Stmt::Block { label, stmts })
            }
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let then_branch = Box::new(self.stmt()?);
                let else_branch = if self.eat_keyword(Keyword::Else) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                })
            }
            TokenKind::Keyword(kw @ (Keyword::Case | Keyword::Casez | Keyword::Casex)) => {
                let kind = match kw {
                    Keyword::Case => CaseKind::Case,
                    Keyword::Casez => CaseKind::Casez,
                    _ => CaseKind::Casex,
                };
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let scrutinee = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let mut arms = Vec::new();
                let mut default = None;
                while !self.at_keyword(Keyword::Endcase) {
                    if self.at(&TokenKind::Eof) {
                        return Err(Error::new(self.peek().span, "missing `endcase`"));
                    }
                    if self.eat_keyword(Keyword::Default) {
                        self.eat(&TokenKind::Colon);
                        if default.is_some() {
                            return Err(Error::new(t.span, "duplicate `default` arm"));
                        }
                        default = Some(Box::new(self.stmt()?));
                        continue;
                    }
                    let mut labels = vec![self.expr()?];
                    while self.eat(&TokenKind::Comma) {
                        labels.push(self.expr()?);
                    }
                    self.expect(&TokenKind::Colon)?;
                    let body = self.stmt()?;
                    arms.push(CaseArm { labels, body });
                }
                self.expect_keyword(Keyword::Endcase)?;
                Ok(Stmt::Case {
                    kind,
                    scrutinee,
                    arms,
                    default,
                })
            }
            TokenKind::Keyword(Keyword::For) => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let init = Box::new(self.assign_stmt_no_semi()?);
                self.expect(&TokenKind::Semi)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::Semi)?;
                let step = Box::new(self.assign_stmt_no_semi()?);
                self.expect(&TokenKind::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::While { cond, body })
            }
            TokenKind::Keyword(Keyword::Repeat) => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let count = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::Repeat { count, body })
            }
            TokenKind::Semi => {
                self.bump();
                Ok(Stmt::Null)
            }
            TokenKind::Ident(_) | TokenKind::LBrace => {
                let stmt = self.assign_stmt_no_semi()?;
                self.expect(&TokenKind::Semi)?;
                Ok(stmt)
            }
            other => Err(Error::new(
                t.span,
                format!("expected statement, found `{}`", other.text()),
            )),
        }
    }

    /// Parses `lvalue = expr` or `lvalue <= expr` without the trailing `;`,
    /// shared by ordinary assignments and `for` headers.
    fn assign_stmt_no_semi(&mut self) -> Result<Stmt> {
        let lhs = self.lvalue()?;
        if self.eat(&TokenKind::Assign) {
            let rhs = self.expr()?;
            Ok(Stmt::Blocking { lhs, rhs })
        } else if self.eat(&TokenKind::Le) {
            let rhs = self.expr()?;
            Ok(Stmt::NonBlocking { lhs, rhs })
        } else {
            let t = self.peek();
            Err(Error::new(
                t.span,
                format!("expected `=` or `<=`, found `{}`", t.kind.text()),
            ))
        }
    }

    fn lvalue(&mut self) -> Result<LValue> {
        if self.eat(&TokenKind::LBrace) {
            let mut parts = vec![self.lvalue()?];
            while self.eat(&TokenKind::Comma) {
                parts.push(self.lvalue()?);
            }
            self.expect(&TokenKind::RBrace)?;
            return Ok(LValue::Concat(parts));
        }
        let name = self.expect_ident()?;
        if !self.eat(&TokenKind::LBracket) {
            return Ok(LValue::Ident(name));
        }
        let first = self.expr()?;
        if self.eat(&TokenKind::Colon) {
            let lsb = self.expr()?;
            self.expect(&TokenKind::RBracket)?;
            return Ok(LValue::Part(name, Box::new(Range { msb: first, lsb })));
        }
        if self.eat(&TokenKind::PlusColon) {
            let width = self.expr()?;
            self.expect(&TokenKind::RBracket)?;
            return Ok(LValue::IndexedPart {
                name,
                base: Box::new(first),
                width: Box::new(width),
                ascending: true,
            });
        }
        if self.eat(&TokenKind::MinusColon) {
            let width = self.expr()?;
            self.expect(&TokenKind::RBracket)?;
            return Ok(LValue::IndexedPart {
                name,
                base: Box::new(first),
                width: Box::new(width),
                ascending: false,
            });
        }
        self.expect(&TokenKind::RBracket)?;
        Ok(LValue::Bit(name, Box::new(first)))
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    /// Full expression: ternary has the lowest precedence and is
    /// right-associative.
    pub(crate) fn expr(&mut self) -> Result<Expr> {
        let cond = self.binary_expr(0)?;
        if self.eat(&TokenKind::Question) {
            let then_e = self.expr()?;
            self.expect(&TokenKind::Colon)?;
            let else_e = self.expr()?;
            Ok(Expr::Ternary(
                Box::new(cond),
                Box::new(then_e),
                Box::new(else_e),
            ))
        } else {
            Ok(cond)
        }
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        while let Some(op) = self.peek_binary_op() {
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.bump();
            // All Verilog binary operators are left-associative except `**`.
            let next_min = if op == BinaryOp::Pow { prec } else { prec + 1 };
            let rhs = self.binary_expr(next_min)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn peek_binary_op(&self) -> Option<BinaryOp> {
        use TokenKind::*;
        Some(match &self.peek().kind {
            Plus => BinaryOp::Add,
            Minus => BinaryOp::Sub,
            Star => BinaryOp::Mul,
            Slash => BinaryOp::Div,
            Percent => BinaryOp::Mod,
            Power => BinaryOp::Pow,
            Shl => BinaryOp::Shl,
            Shr => BinaryOp::Shr,
            AShl => BinaryOp::AShl,
            AShr => BinaryOp::AShr,
            Lt => BinaryOp::Lt,
            Le => BinaryOp::Le,
            Gt => BinaryOp::Gt,
            Ge => BinaryOp::Ge,
            EqEq => BinaryOp::Eq,
            BangEq => BinaryOp::Ne,
            EqEqEq => BinaryOp::CaseEq,
            BangEqEq => BinaryOp::CaseNe,
            Amp => BinaryOp::BitAnd,
            Pipe => BinaryOp::BitOr,
            Caret => BinaryOp::BitXor,
            TildeCaret => BinaryOp::BitXnor,
            AmpAmp => BinaryOp::LogAnd,
            PipePipe => BinaryOp::LogOr,
            _ => return None,
        })
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        use TokenKind::*;
        let op = match &self.peek().kind {
            Plus => Some(UnaryOp::Plus),
            Minus => Some(UnaryOp::Minus),
            Bang => Some(UnaryOp::Not),
            Tilde => Some(UnaryOp::BitNot),
            Amp => Some(UnaryOp::RedAnd),
            Pipe => Some(UnaryOp::RedOr),
            Caret => Some(UnaryOp::RedXor),
            TildeAmp => Some(UnaryOp::RedNand),
            TildePipe => Some(UnaryOp::RedNor),
            TildeCaret => Some(UnaryOp::RedXnor),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary_expr()?;
            return Ok(Expr::Unary(op, Box::new(operand)));
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        let t = self.peek().clone();
        match &t.kind {
            TokenKind::Number(raw) => {
                let lit = Literal::parse(raw, t.span)?;
                self.bump();
                Ok(Expr::Number(lit))
            }
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.bump();
                if !self.eat(&TokenKind::LBracket) {
                    return Ok(Expr::Ident(name));
                }
                let first = self.expr()?;
                if self.eat(&TokenKind::Colon) {
                    let lsb = self.expr()?;
                    self.expect(&TokenKind::RBracket)?;
                    return Ok(Expr::Part(name, Box::new(Range { msb: first, lsb })));
                }
                if self.eat(&TokenKind::PlusColon) {
                    let width = self.expr()?;
                    self.expect(&TokenKind::RBracket)?;
                    return Ok(Expr::IndexedPart {
                        name,
                        base: Box::new(first),
                        width: Box::new(width),
                        ascending: true,
                    });
                }
                if self.eat(&TokenKind::MinusColon) {
                    let width = self.expr()?;
                    self.expect(&TokenKind::RBracket)?;
                    return Ok(Expr::IndexedPart {
                        name,
                        base: Box::new(first),
                        width: Box::new(width),
                        ascending: false,
                    });
                }
                self.expect(&TokenKind::RBracket)?;
                Ok(Expr::Bit(name, Box::new(first)))
            }
            TokenKind::SysIdent(name) => {
                let name = name.clone();
                self.bump();
                let mut args = Vec::new();
                if self.eat(&TokenKind::LParen) {
                    if !self.at(&TokenKind::RParen) {
                        args.push(self.expr()?);
                        while self.eat(&TokenKind::Comma) {
                            args.push(self.expr()?);
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                }
                Ok(Expr::SysCall(name, args))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::LBrace => {
                self.bump();
                let first = self.expr()?;
                // `{n{a, b}}` replication: first expr followed by `{`.
                if self.at(&TokenKind::LBrace) {
                    self.bump();
                    let mut items = vec![self.expr()?];
                    while self.eat(&TokenKind::Comma) {
                        items.push(self.expr()?);
                    }
                    self.expect(&TokenKind::RBrace)?;
                    self.expect(&TokenKind::RBrace)?;
                    return Ok(Expr::Repeat(Box::new(first), items));
                }
                let mut items = vec![first];
                while self.eat(&TokenKind::Comma) {
                    items.push(self.expr()?);
                }
                self.expect(&TokenKind::RBrace)?;
                Ok(Expr::Concat(items))
            }
            other => Err(Error::new(
                t.span,
                format!("expected expression, found `{}`", other.text()),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(src: &str) -> Module {
        let f = parse(src).unwrap_or_else(|e| panic!("parse failed: {e}\nsource: {src}"));
        assert_eq!(f.modules.len(), 1);
        f.modules.into_iter().next().expect("one module")
    }

    #[test]
    fn parses_ansi_module() {
        let m = parse_one(
            "module mux2to1(input wire [3:0] a, b, input sel, output [3:0] y);
               assign y = sel ? b : a;
             endmodule",
        );
        assert_eq!(m.name, "mux2to1");
        assert_eq!(m.ports.len(), 4);
        assert_eq!(m.ports[0].dir, Some(Direction::Input));
        assert_eq!(m.ports[1].name, "b");
        assert!(m.ports[1].range.is_some(), "range carries over to `b`");
        assert!(
            m.ports[2].range.is_none(),
            "explicit `input sel` resets range"
        );
        assert_eq!(m.ports[3].dir, Some(Direction::Output));
        assert!(matches!(m.items[0], Item::Assign(_)));
    }

    #[test]
    fn parses_non_ansi_module() {
        let m = parse_one(
            "module f(a, y);
               input a;
               output reg y;
               always @(a) y = ~a;
             endmodule",
        );
        assert_eq!(m.ports.len(), 2);
        assert_eq!(m.ports[0].dir, None);
        assert!(matches!(m.items[0], Item::PortDecl(_)));
        assert!(matches!(
            m.items[1],
            Item::PortDecl(PortDecl {
                net: Some(NetKind::Reg),
                ..
            })
        ));
    }

    #[test]
    fn parses_parameter_header() {
        let m = parse_one(
            "module adder #(parameter W = 8, N = 2)(input [W-1:0] a, output [W-1:0] s);
               assign s = a + N;
             endmodule",
        );
        assert_eq!(m.params.len(), 2);
        assert_eq!(m.params[0].name, "W");
        assert_eq!(m.params[1].name, "N");
    }

    #[test]
    fn parses_always_posedge_with_nonblocking() {
        let m = parse_one(
            "module r(input clk, d, output reg q);
               always @(posedge clk) q <= d;
             endmodule",
        );
        let Item::Always(ab) = &m.items[0] else {
            panic!("expected always")
        };
        let Sensitivity::List(evs) = &ab.sensitivity else {
            panic!("expected list")
        };
        assert_eq!(evs[0].edge, Some(Edge::Pos));
        assert!(matches!(ab.body, Stmt::NonBlocking { .. }));
    }

    #[test]
    fn parses_async_reset_style_sensitivity() {
        let m = parse_one(
            "module r(input clk, rst_n, d, output reg q);
               always @(posedge clk or negedge rst_n)
                 if (!rst_n) q <= 1'b0; else q <= d;
             endmodule",
        );
        let Item::Always(ab) = &m.items[0] else {
            panic!("expected always")
        };
        let Sensitivity::List(evs) = &ab.sensitivity else {
            panic!("expected list")
        };
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[1].edge, Some(Edge::Neg));
    }

    #[test]
    fn parses_star_sensitivity_both_spellings() {
        for src in [
            "module c(input a, output reg y); always @* y = a; endmodule",
            "module c(input a, output reg y); always @(*) y = a; endmodule",
        ] {
            let m = parse_one(src);
            let Item::Always(ab) = &m.items[0] else {
                panic!("expected always")
            };
            assert_eq!(ab.sensitivity, Sensitivity::Star);
        }
    }

    #[test]
    fn parses_case_with_default() {
        let m = parse_one(
            "module alu(input [1:0] op, input [3:0] a, b, output reg [3:0] y);
               always @(*) begin
                 case (op)
                   2'b00: y = a + b;
                   2'b01: y = a - b;
                   2'b10, 2'b11: y = a & b;
                   default: y = 4'b0;
                 endcase
               end
             endmodule",
        );
        let Item::Always(ab) = &m.items[0] else {
            panic!("expected always")
        };
        let Stmt::Block { stmts, .. } = &ab.body else {
            panic!("expected block")
        };
        let Stmt::Case { arms, default, .. } = &stmts[0] else {
            panic!("expected case")
        };
        assert_eq!(arms.len(), 3);
        assert_eq!(arms[2].labels.len(), 2);
        assert!(default.is_some());
    }

    #[test]
    fn parses_for_loop() {
        let m = parse_one(
            "module p(input [7:0] a, output reg [7:0] y);
               integer i;
               always @(*) begin
                 for (i = 0; i < 8; i = i + 1)
                   y[i] = a[7 - i];
               end
             endmodule",
        );
        let Item::Always(ab) = &m.items[1] else {
            panic!("expected always")
        };
        let Stmt::Block { stmts, .. } = &ab.body else {
            panic!("expected block")
        };
        assert!(matches!(stmts[0], Stmt::For { .. }));
    }

    #[test]
    fn parses_memory_declaration() {
        let m = parse_one(
            "module ram(input clk); reg [7:0] mem [0:15]; always @(posedge clk) mem[0] <= 8'h00; endmodule",
        );
        let Item::Reg(rd) = &m.items[0] else {
            panic!("expected reg decl")
        };
        assert!(rd.regs[0].mem.is_some());
    }

    #[test]
    fn parses_instance_with_named_connections() {
        let m = parse_one(
            "module top(input a, b, output y);
               and_gate #(.W(1)) u0 (.x(a), .y(b), .z(y));
             endmodule",
        );
        let Item::Instance(inst) = &m.items[0] else {
            panic!("expected instance")
        };
        assert_eq!(inst.module, "and_gate");
        assert_eq!(inst.name, "u0");
        assert_eq!(inst.params.len(), 1);
        assert_eq!(inst.conns.len(), 3);
    }

    #[test]
    fn parses_instance_with_ordered_connections() {
        let m = parse_one("module top(input a, output y); inv u1 (a, y); endmodule");
        let Item::Instance(inst) = &m.items[0] else {
            panic!("expected instance")
        };
        assert!(matches!(inst.conns[0], Connection::Ordered(_)));
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expr("a + b * c").expect("parse");
        let Expr::Binary(BinaryOp::Add, _, rhs) = e else {
            panic!("expected add at top")
        };
        assert!(matches!(*rhs, Expr::Binary(BinaryOp::Mul, _, _)));
    }

    #[test]
    fn ternary_is_right_associative() {
        let e = parse_expr("a ? b : c ? d : e").expect("parse");
        let Expr::Ternary(_, _, else_e) = e else {
            panic!("expected ternary")
        };
        assert!(matches!(*else_e, Expr::Ternary(_, _, _)));
    }

    #[test]
    fn power_is_right_associative() {
        let e = parse_expr("a ** b ** c").expect("parse");
        let Expr::Binary(BinaryOp::Pow, _, rhs) = e else {
            panic!("expected pow")
        };
        assert!(matches!(*rhs, Expr::Binary(BinaryOp::Pow, _, _)));
    }

    #[test]
    fn reduction_vs_binary_ampersand() {
        let e = parse_expr("a & &b").expect("parse");
        let Expr::Binary(BinaryOp::BitAnd, _, rhs) = e else {
            panic!("expected bitand")
        };
        assert!(matches!(*rhs, Expr::Unary(UnaryOp::RedAnd, _)));
    }

    #[test]
    fn parses_concat_and_repeat() {
        let e = parse_expr("{a, b[0], 2'b01}").expect("parse");
        assert!(matches!(e, Expr::Concat(ref v) if v.len() == 3));
        let e = parse_expr("{4{1'b0}}").expect("parse");
        assert!(matches!(e, Expr::Repeat(_, ref v) if v.len() == 1));
        let e = parse_expr("{2{a, b}}").expect("parse");
        assert!(matches!(e, Expr::Repeat(_, ref v) if v.len() == 2));
    }

    #[test]
    fn parses_part_selects() {
        assert!(matches!(
            parse_expr("a[7:4]").expect("parse"),
            Expr::Part(_, _)
        ));
        assert!(matches!(
            parse_expr("a[i +: 4]").expect("parse"),
            Expr::IndexedPart {
                ascending: true,
                ..
            }
        ));
        assert!(matches!(
            parse_expr("a[i -: 4]").expect("parse"),
            Expr::IndexedPart {
                ascending: false,
                ..
            }
        ));
    }

    #[test]
    fn parses_syscall() {
        let e = parse_expr("$signed(a) >>> 1").expect("parse");
        let Expr::Binary(BinaryOp::AShr, lhs, _) = e else {
            panic!("expected >>>")
        };
        assert!(matches!(*lhs, Expr::SysCall(ref n, _) if n == "$signed"));
    }

    #[test]
    fn concat_lvalue_assignment() {
        let m = parse_one(
            "module s(input [3:0] a, output [1:0] hi, lo);
               assign {hi, lo} = a;
             endmodule",
        );
        let Item::Assign(assigns) = &m.items[0] else {
            panic!("expected assign")
        };
        assert!(matches!(assigns[0].0, LValue::Concat(_)));
    }

    #[test]
    fn error_on_missing_endmodule() {
        assert!(parse("module m(input a);").is_err());
    }

    #[test]
    fn error_on_garbage_item() {
        assert!(parse("module m(); 42; endmodule").is_err());
    }

    #[test]
    fn error_on_empty_input() {
        assert!(parse("").is_err());
        assert!(parse("   // just a comment\n").is_err());
    }

    #[test]
    fn multiple_modules_in_one_file() {
        let f = parse(
            "module a(input x, output y); assign y = x; endmodule
             module b(input x, output y); assign y = ~x; endmodule",
        )
        .expect("parse");
        assert_eq!(f.modules.len(), 2);
    }

    #[test]
    fn initial_block_with_repeat_and_while() {
        let m = parse_one(
            "module t();
               reg [3:0] i;
               initial begin
                 i = 0;
                 repeat (3) i = i + 1;
                 while (i > 0) i = i - 1;
               end
             endmodule",
        );
        assert!(matches!(m.items[1], Item::Initial(_)));
    }

    #[test]
    fn wire_with_initializer() {
        let m = parse_one("module w(input a); wire b = ~a, c; endmodule");
        let Item::Net(nd) = &m.items[0] else {
            panic!("expected net decl")
        };
        assert!(nd.nets[0].1.is_some());
        assert!(nd.nets[1].1.is_none());
    }

    #[test]
    fn localparam_and_parameter_items() {
        let m = parse_one(
            "module p();
               parameter W = 4;
               localparam [1:0] S0 = 2'b00, S1 = 2'b01;
             endmodule",
        );
        assert!(matches!(&m.items[0], Item::Param(ps) if ps.len() == 1));
        assert!(matches!(&m.items[1], Item::Localparam(ps) if ps.len() == 2));
    }

    #[test]
    fn named_begin_block() {
        let m = parse_one("module n(input a); always @(*) begin : blk ; end endmodule");
        let Item::Always(ab) = &m.items[0] else {
            panic!("expected always")
        };
        assert!(matches!(&ab.body, Stmt::Block { label: Some(l), .. } if l == "blk"));
    }
}
